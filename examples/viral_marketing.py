"""Viral marketing: influence maximisation on learned influence models.

The paper's introduction motivates influence learning with viral
marketing [1]: choose the k seed users whose word-of-mouth cascade
reaches the most people.  This example closes that loop:

1. generate a social dataset with *planted* ground-truth influence
   (boosted base probability so cascades spread visibly),
2. learn influence parameters two ways — Inf2vec embeddings and the
   ST (Goyal MLE) edge model,
3. select seeds with each model via CELF greedy (the Inf2vec scores
   are calibrated into IC probabilities first) plus the fast
   simulation-free embedding heuristic,
4. judge every seed set by simulating cascades under the *planted*
   probabilities — the ground truth no real-world experiment has.

Run:  python examples/viral_marketing.py
"""

import numpy as np

from repro import Inf2vecConfig, Inf2vecModel, SyntheticSocialDataset
from repro.apps.influence_max import (
    embedding_edge_probabilities,
    embedding_seed_selection,
    greedy_influence_maximization,
)
from repro.baselines import StaticModel
from repro.core.context import ContextConfig
from repro.diffusion.montecarlo import expected_spread

SEED = 13
NUM_SEEDS = 5
JUDGE_RUNS = 400


def main() -> None:
    # Boost the planted influence so seed quality matters visibly.
    data = SyntheticSocialDataset.digg_like(
        num_users=300, num_items=120, seed=SEED, base_probability=0.02
    )
    train, _tune, _test = data.log.split((0.8, 0.1, 0.1), seed=SEED)
    print(f"dataset: {data}")

    # --- Learn influence parameters from the action log ---------------
    inf2vec = Inf2vecModel(
        Inf2vecConfig(
            dim=16, epochs=15, learning_rate=0.02,
            context=ContextConfig(length=20, alpha=0.5),
        ),
        seed=SEED,
    ).fit(data.graph, train)
    st = StaticModel().fit(data.graph, train)

    # --- Select seeds ---------------------------------------------------
    # Calibrate the embedding scores into IC probabilities (anchor the
    # mean to ST's learned activity level) and run CELF on them.
    inf2vec_probs = embedding_edge_probabilities(
        inf2vec.embedding, data.graph, mean_probability=0.02
    )
    inf2vec_celf = greedy_influence_maximization(
        inf2vec_probs, NUM_SEEDS, num_runs=200, seed=SEED
    )
    st_celf = greedy_influence_maximization(
        st.edge_probabilities(), NUM_SEEDS, num_runs=200, seed=SEED
    )
    heuristic = embedding_seed_selection(inf2vec.embedding, NUM_SEEDS)

    print(f"Inf2vec + CELF seeds:   {inf2vec_celf.seeds}")
    print(f"ST + CELF seeds:        {st_celf.seeds}")
    print(f"Inf2vec heuristic seeds: {heuristic.seeds} (no simulation)")

    # --- Judge against the planted ground truth ------------------------
    truth = data.planted.edge_probabilities
    random_seeds = tuple(
        int(u)
        for u in np.random.default_rng(99).choice(
            data.graph.num_nodes, NUM_SEEDS, replace=False
        )
    )
    contenders = [
        ("Inf2vec+CELF", inf2vec_celf.seeds),
        ("ST+CELF", st_celf.seeds),
        ("Inf2vec-fast", heuristic.seeds),
        ("random", random_seeds),
    ]
    for name, seeds in contenders:
        spread = expected_spread(truth, list(seeds), num_runs=JUDGE_RUNS, seed=SEED)
        print(f"{name:14s} true expected spread: {spread:.1f} users")

    oracle = greedy_influence_maximization(truth, NUM_SEEDS, num_runs=100, seed=SEED)
    oracle_spread = expected_spread(
        truth, list(oracle.seeds), num_runs=JUDGE_RUNS, seed=SEED
    )
    print(f"{'oracle':14s} true expected spread: {oracle_spread:.1f} users")


if __name__ == "__main__":
    main()
