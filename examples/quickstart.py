"""Quickstart: train Inf2vec and predict who gets influenced.

Generates a Digg-like synthetic dataset, learns social-influence
embeddings with Inf2vec (Algorithm 2 of the paper), and then uses the
learned representations for the paper's two prediction tasks.

Run:  python examples/quickstart.py
"""

from repro import (
    EmbeddingPredictor,
    Inf2vecConfig,
    Inf2vecModel,
    SyntheticSocialDataset,
)
from repro.core.context import ContextConfig
from repro.eval import evaluate_activation, evaluate_diffusion

SEED = 7


def main() -> None:
    # 1. Data: a social graph + an action log of diffusion episodes.
    #    (Swap in repro.data.loaders.load_dataset for a real crawl.)
    data = SyntheticSocialDataset.digg_like(num_users=400, num_items=150, seed=SEED)
    print(f"dataset: {data}")

    # 2. The paper's split: 80% train / 10% tune / 10% test episodes.
    train, tune, test = data.log.split((0.8, 0.1, 0.1), seed=SEED)
    print(f"episodes: {len(train)} train / {len(tune)} tune / {len(test)} test")

    # 3. Train Inf2vec.  K, L, alpha, gamma are the paper's knobs.
    config = Inf2vecConfig(
        dim=32,
        epochs=15,
        learning_rate=0.01,
        context=ContextConfig(length=20, alpha=0.2),
    )
    model = Inf2vecModel(config, seed=SEED).fit(data.graph, train)
    print(f"trained: {model}; final loss {model.loss_history[-1]:.4f}")

    # 4. Score pairwise influence: x(u, v) = S_u . T_v + b_u + b~_v.
    emb = model.embedding
    most_influential = max(range(emb.num_users), key=lambda u: emb.source_bias[u])
    print(f"highest influence-ability bias: user {most_influential}")

    # 5. Predict: will user v activate given its active friends?
    predictor = EmbeddingPredictor(emb, aggregator="ave")
    activation = evaluate_activation(predictor, data.graph, test)
    print(f"activation prediction: {activation}")

    # 6. Predict: who will a seed set reach (high-order diffusion)?
    diffusion = evaluate_diffusion(predictor, data.graph.num_nodes, test)
    print(f"diffusion prediction:  {diffusion}")

    # 7. Persist the embedding for downstream use.
    emb.save("/tmp/inf2vec_quickstart.npz")
    print("embedding saved to /tmp/inf2vec_quickstart.npz")


if __name__ == "__main__":
    main()
