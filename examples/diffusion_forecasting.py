"""Diffusion forecasting: who will a breaking story reach?

The paper's diffusion-prediction task (Section V-B2) as a downstream
application: given the first few adopters of a new item, forecast which
users the cascade will eventually reach, comparing

* Inf2vec representations scored with Eq. 7 (milliseconds), and
* an IC-model baseline that needs thousands of Monte-Carlo
  simulations per query — the cost gap the paper highlights
  ("Inf2vec uses 41 seconds and Emb-IC uses 9,246 seconds").

Run:  python examples/diffusion_forecasting.py
"""

import time

import numpy as np

from repro import Inf2vecConfig, Inf2vecModel, SyntheticSocialDataset
from repro.baselines import EMModel
from repro.core.context import ContextConfig
from repro.core.prediction import EmbeddingPredictor
from repro.eval.diffusion import make_query

SEED = 21
TOP_K = 15


def main() -> None:
    data = SyntheticSocialDataset.flickr_like(num_users=400, num_items=150, seed=SEED)
    train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=SEED)
    print(f"dataset: {data}")

    inf2vec = Inf2vecModel(
        Inf2vecConfig(
            dim=32, epochs=15, learning_rate=0.01,
            context=ContextConfig(length=20, alpha=0.2),
        ),
        seed=SEED,
    ).fit(data.graph, train)
    em = EMModel().fit(data.graph, train)

    fast = EmbeddingPredictor(inf2vec.embedding, aggregator="ave")
    slow = em.predictor(num_runs=1000, seed=SEED)

    # Forecast every test episode from its first 5% adopters.
    queries = [q for q in (make_query(ep) for ep in test) if q is not None]
    print(f"\nforecasting {len(queries)} held-out cascades")

    for name, predictor in (("Inf2vec", fast), ("EM + MonteCarlo", slow)):
        total_hits = 0
        elapsed = 0.0
        for query in queries:
            start = time.perf_counter()
            scores = predictor.diffusion_scores(list(query.seeds))
            elapsed += time.perf_counter() - start
            ranked = [
                int(u)
                for u in np.argsort(-scores)
                if int(u) not in query.seeds
            ][:TOP_K]
            total_hits += sum(1 for u in ranked if u in query.ground_truth)
        mean_hits = total_hits / len(queries)
        print(
            f"{name:16s} mean top-{TOP_K} forecast hits: {mean_hits:.1f}"
            f"  ({elapsed * 1000 / len(queries):.1f} ms per cascade)"
        )


if __name__ == "__main__":
    main()
