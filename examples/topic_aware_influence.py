"""Topic-aware influence: the paper's future-work direction, running.

Section VI of the paper proposes modelling topic-aware influence
propagation.  This example builds a world where topics matter — two
item families spreading through different parts of the network — and
shows the topic-aware extension recovering the structure:

1. generate two interleaved synthetic datasets (different planted
   processes) and merge them into one log with disjoint item ranges,
2. train plain Inf2vec and the topic-aware variant,
3. compare activation prediction, and inspect which topics the item
   clustering discovered.

Run:  python examples/topic_aware_influence.py
"""

from repro import Inf2vecConfig, SyntheticSocialDataset
from repro.baselines import Inf2vecMethod
from repro.core.context import ContextConfig
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.eval import evaluate_activation
from repro.extensions import TopicConfig, TopicInf2vec

SEED = 17


def merged_two_topic_world():
    """Two communities, each with its own item family.

    Users 0-149 form community A with item family 0-79; users 150-299
    form community B with family 80-159.  A handful of bridge edges
    connect the communities, so a single global model must average two
    unrelated influence processes while the topic-aware model can
    specialise.
    """
    community_a = SyntheticSocialDataset.digg_like(
        num_users=150, num_items=80, seed=SEED
    )
    community_b = SyntheticSocialDataset.digg_like(
        num_users=150, num_items=80, seed=SEED + 1
    )
    offset_user, offset_item = 150, 80

    from repro.data.graph import SocialGraph

    edges = [tuple(e) for e in community_a.graph.edge_array()]
    edges += [
        (int(u) + offset_user, int(v) + offset_user)
        for u, v in community_b.graph.edge_array()
    ]
    edges += [(0, offset_user), (offset_user + 1, 1)]  # bridges
    graph = SocialGraph(300, edges)

    episodes = list(community_a.log)
    for episode in community_b.log:
        episodes.append(
            DiffusionEpisode(
                episode.item + offset_item,
                [
                    (int(u) + offset_user, float(t))
                    for u, t in zip(episode.users, episode.times)
                ],
            )
        )
    return graph, ActionLog(episodes, num_users=300)


def main() -> None:
    graph, log = merged_two_topic_world()
    train, _tune, test = log.split((0.8, 0.1, 0.1), seed=SEED)
    print(f"merged world: {log}")

    config = Inf2vecConfig(
        dim=16, epochs=10, learning_rate=0.02,
        context=ContextConfig(length=15, alpha=0.2),
    )

    plain = Inf2vecMethod(config, seed=SEED).fit(graph, train)
    plain_result = evaluate_activation(plain.predictor(), graph, test)
    print(f"plain Inf2vec:       {plain_result}")

    topical = TopicInf2vec(
        config, TopicConfig(num_topics=2, min_episodes_per_topic=10), seed=SEED
    ).fit(graph, train)
    topical_result = topical.evaluate_activation(graph, test)
    print(f"topic-aware Inf2vec: {topical_result}")
    print(f"specialised topic models trained: {topical.num_topic_models}")

    # Did the clustering recover the two item families?
    first_family = [topical.topic_of(item) for item in train.items() if item < 80]
    second_family = [topical.topic_of(item) for item in train.items() if item >= 80]
    from collections import Counter

    print(f"family-1 topic assignments: {Counter(first_family)}")
    print(f"family-2 topic assignments: {Counter(second_family)}")


if __name__ == "__main__":
    main()
