"""Citation case study: embedding model vs conventional influence model.

Reproduces Section V-D / Table VI of the paper on a synthetic citation
corpus (the DBLP dump is not redistributable): authors of a cited paper
influence authors of the citing paper; each model predicts a test
author's top-10 future citers.

The paper reports average precision@10 of 0.1863 for the embedding
model vs 0.0616 for the conventional (ST + Monte-Carlo) model; the
reproduction target is the embedding model's clear advantage, driven
by the sparsity of per-pair observations.

Run:  python examples/citation_case_study.py
"""

from repro.apps.citation_study import run_case_study
from repro.data.citation import CitationConfig, CitationDataset

SEED = 5


def main() -> None:
    dataset = CitationDataset.generate(CitationConfig(), seed=SEED)
    stats = dataset.statistics()
    print(
        f"citation corpus: {stats['num_papers']} papers, "
        f"{stats['num_authors']} authors, "
        f"{stats['num_pairs']} author influence pairs "
        f"({stats['num_distinct_pairs']} distinct)"
    )

    result = run_case_study(dataset, mc_runs=200, seed=SEED)
    print(f"\ntest authors: {result.num_test_authors}")
    print(f"embedding    model precision@10: {result.embedding_precision:.4f}")
    print(f"conventional model precision@10: {result.conventional_precision:.4f}")
    print(f"ratio: {result.precision_ratio:.2f}x  (paper: 0.1863 / 0.0616 ~ 3x)")

    print("\nTop-10 follower predictions for the most prolific test authors")
    print("(the paper's Table VI showcases Stonebraker/Garcia-Molina/Agrawal):")
    for row in result.showcase:
        print(
            f"  author {row.author:>4}: "
            f"embedding {row.embedding_hits}/10 correct, "
            f"conventional {row.conventional_hits}/10 correct"
        )
        print(f"    embedding top-10:    {list(row.embedding_top10)}")
        print(f"    conventional top-10: {list(row.conventional_top10)}")


if __name__ == "__main__":
    main()
