"""Exact t-SNE (van der Maaten & Hinton [31]) in pure numpy.

The paper projects learned representations to 2-D with t-SNE for the
Figure 6 visualisation.  scikit-learn is unavailable offline, so this
is a from-scratch implementation of the exact algorithm — suitable for
the few-hundred-point inputs the visualisation uses:

* Gaussian input affinities with per-point bandwidths calibrated to a
  target perplexity by binary search,
* symmetrised joint distribution ``P`` with early exaggeration,
* Student-t output affinities ``Q``,
* KL(P‖Q) gradient descent with momentum switching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int

_EPSILON = 1e-12


def pairwise_squared_distances(points: np.ndarray) -> np.ndarray:
    """Dense ``(n, n)`` matrix of squared Euclidean distances."""
    points = np.asarray(points, dtype=np.float64)
    norms = np.einsum("ij,ij->i", points, points)
    distances = norms[:, None] + norms[None, :] - 2.0 * (points @ points.T)
    np.maximum(distances, 0.0, out=distances)
    np.fill_diagonal(distances, 0.0)
    return distances


def _conditional_probabilities(
    squared_distances: np.ndarray, perplexity: float, tolerance: float = 1e-5
) -> np.ndarray:
    """Row-wise Gaussian affinities at the target perplexity."""
    n = squared_distances.shape[0]
    target_entropy = np.log(perplexity)
    conditional = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        row = np.delete(squared_distances[i], i)
        beta_low, beta_high = 0.0, np.inf
        beta = 1.0
        for _ in range(64):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                entropy = 0.0
                probabilities = np.zeros_like(row)
            else:
                probabilities = weights / total
                entropy = -np.sum(
                    probabilities * np.log(np.maximum(probabilities, _EPSILON))
                )
            error = entropy - target_entropy
            if abs(error) < tolerance:
                break
            if error > 0:  # entropy too high -> sharpen
                beta_low = beta
                beta = beta * 2.0 if beta_high == np.inf else (beta + beta_high) / 2.0
            else:
                beta_high = beta
                beta = (beta + beta_low) / 2.0
        conditional[i, np.arange(n) != i] = probabilities
    return conditional


@dataclass(frozen=True)
class TSNEConfig:
    """t-SNE hyper-parameters (defaults follow the original paper).

    ``learning_rate=None`` (the default) resolves to the standard
    size-adaptive heuristic ``max(50, n / early_exaggeration)`` — a
    fixed large step size overshoots badly on few-hundred-point inputs.
    """

    perplexity: float = 30.0
    num_iterations: int = 500
    learning_rate: float | None = None
    early_exaggeration: float = 12.0
    exaggeration_iterations: int = 100
    initial_momentum: float = 0.5
    final_momentum: float = 0.8
    momentum_switch_iteration: int = 250

    def __post_init__(self) -> None:
        check_positive("perplexity", self.perplexity)
        check_positive_int("num_iterations", self.num_iterations)
        if self.learning_rate is not None:
            check_positive("learning_rate", self.learning_rate)
        check_positive("early_exaggeration", self.early_exaggeration)

    def resolve_learning_rate(self, num_points: int) -> float:
        """The effective step size for an ``num_points``-row input."""
        if self.learning_rate is not None:
            return self.learning_rate
        return max(50.0, num_points / self.early_exaggeration)


def tsne(
    points: np.ndarray,
    config: TSNEConfig | None = None,
    seed: SeedLike = None,
    num_components: int = 2,
) -> np.ndarray:
    """Embed ``points`` into ``num_components`` dimensions with t-SNE.

    Parameters
    ----------
    points:
        ``(n, d)`` input matrix; ``n`` must exceed ``3 * perplexity``
        for the perplexity calibration to be meaningful (a clear error
        is raised otherwise).
    config:
        Optimiser settings.
    seed:
        RNG seed for the Gaussian initialisation.
    num_components:
        Output dimensionality (2 for the Fig 6 use case).

    Returns
    -------
    numpy.ndarray
        ``(n, num_components)`` embedding.
    """
    config = config if config is not None else TSNEConfig()
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise EvaluationError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if n < 4:
        raise EvaluationError(f"t-SNE needs at least 4 points, got {n}")
    perplexity = min(config.perplexity, (n - 1) / 3.0)
    rng = ensure_rng(seed)

    conditional = _conditional_probabilities(
        pairwise_squared_distances(points), perplexity
    )
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, _EPSILON)

    embedding = rng.normal(scale=1e-4, size=(n, num_components))
    velocity = np.zeros_like(embedding)
    gains = np.ones_like(embedding)
    learning_rate = config.resolve_learning_rate(n)

    exaggerated = joint * config.early_exaggeration
    for iteration in range(config.num_iterations):
        p_matrix = (
            exaggerated
            if iteration < config.exaggeration_iterations
            else joint
        )
        distances = pairwise_squared_distances(embedding)
        student = 1.0 / (1.0 + distances)
        np.fill_diagonal(student, 0.0)
        q_matrix = np.maximum(student / student.sum(), _EPSILON)

        # KL gradient: 4 * sum_j (p_ij - q_ij) (y_i - y_j) (1+|y|^2)^-1
        coefficient = (p_matrix - q_matrix) * student
        gradient = 4.0 * (
            np.diag(coefficient.sum(axis=1)) - coefficient
        ) @ embedding

        momentum = (
            config.initial_momentum
            if iteration < config.momentum_switch_iteration
            else config.final_momentum
        )
        same_direction = np.sign(gradient) == np.sign(velocity)
        gains = np.where(same_direction, gains * 0.8, gains + 0.2)
        np.maximum(gains, 0.01, out=gains)
        velocity = momentum * velocity - learning_rate * gains * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)

    return embedding


def kl_divergence(points: np.ndarray, embedding: np.ndarray, perplexity: float = 30.0) -> float:
    """KL(P‖Q) of a finished embedding — the t-SNE objective value."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    perplexity = min(perplexity, (n - 1) / 3.0)
    conditional = _conditional_probabilities(
        pairwise_squared_distances(points), perplexity
    )
    joint = np.maximum((conditional + conditional.T) / (2.0 * n), _EPSILON)
    distances = pairwise_squared_distances(np.asarray(embedding, dtype=np.float64))
    student = 1.0 / (1.0 + distances)
    np.fill_diagonal(student, 0.0)
    q_matrix = np.maximum(student / student.sum(), _EPSILON)
    return float(np.sum(joint * np.log(joint / q_matrix)))
