"""Quantified reproduction of the Figure 6 visualisation.

The paper maps the nodes of the 10,000 most frequent influence pairs
to 2-D with t-SNE and argues visually that Inf2vec places the two
members of each top pair close together while the other models scatter
them.  A repository cannot assert "looks close", so this module
quantifies the claim:

* :func:`pair_proximity` — for each highlighted pair, the *percentile*
  of its 2-D distance within the all-pairs distance distribution
  (lower = closer = better);
* :func:`visualization_report` — the full Fig 6 pipeline for one
  model: select nodes from top pairs, project with t-SNE, and report
  mean pair-distance percentile plus the raw layout for plotting.

The experiment then compares the mean percentile across models, which
is the measurable statement behind "each pair of symbols are always
close to each other" (Fig 6(d)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import EvaluationError
from repro.utils.rng import SeedLike
from repro.viz.tsne import TSNEConfig, pairwise_squared_distances, tsne


def pair_proximity(
    layout: np.ndarray,
    node_index: dict[int, int],
    pairs: Sequence[tuple[int, int]],
) -> np.ndarray:
    """Distance percentile of each pair in the 2-D layout.

    Parameters
    ----------
    layout:
        ``(n, 2)`` coordinates.
    node_index:
        Mapping from original node ID to layout row.
    pairs:
        ``(u, v)`` pairs to measure, in original node IDs.

    Returns
    -------
    numpy.ndarray
        Percentile in ``[0, 1]`` per pair: fraction of *all* node pairs
        that are closer than this pair.  0 means the pair is the
        closest pair in the layout.
    """
    if not pairs:
        raise EvaluationError("need at least one pair to measure")
    distances = np.sqrt(pairwise_squared_distances(layout))
    n = layout.shape[0]
    upper = distances[np.triu_indices(n, k=1)]
    if upper.size == 0:
        raise EvaluationError("layout must contain at least 2 points")
    sorted_distances = np.sort(upper)
    percentiles = np.empty(len(pairs), dtype=np.float64)
    for k, (u, v) in enumerate(pairs):
        try:
            row_u, row_v = node_index[int(u)], node_index[int(v)]
        except KeyError as exc:
            raise EvaluationError(f"pair node {exc} missing from layout") from None
        d = distances[row_u, row_v]
        percentiles[k] = np.searchsorted(sorted_distances, d) / sorted_distances.size
    return percentiles


@dataclass(frozen=True)
class VisualizationReport:
    """Output of the Fig 6 pipeline for one model.

    Attributes
    ----------
    layout:
        ``(n, 2)`` t-SNE coordinates.
    node_ids:
        Original node ID per layout row.
    highlighted_pairs:
        The top influence pairs measured.
    pair_percentiles:
        Distance percentile per highlighted pair (lower = better).
    """

    layout: np.ndarray
    node_ids: np.ndarray
    highlighted_pairs: tuple[tuple[int, int], ...]
    pair_percentiles: np.ndarray

    @property
    def mean_pair_percentile(self) -> float:
        """Mean distance percentile of the highlighted pairs."""
        return float(self.pair_percentiles.mean())


def visualization_report(
    vectors: np.ndarray,
    top_pairs: Sequence[tuple[int, int]],
    highlight: int = 5,
    tsne_config: TSNEConfig | None = None,
    seed: SeedLike = None,
) -> VisualizationReport:
    """Run the full Fig 6 pipeline for one model's representations.

    Parameters
    ----------
    vectors:
        ``(num_users, d)`` representation matrix (for Inf2vec the
        concatenated ``[S ; T]``).
    top_pairs:
        Most frequent influence pairs, most frequent first; their
        member nodes define the point set (the paper uses the nodes of
        the top-10,000 pairs).
    highlight:
        How many of the very top pairs to measure (the paper highlights
        the top 5).
    tsne_config, seed:
        Projection settings.
    """
    if highlight < 1:
        raise EvaluationError(f"highlight must be >= 1, got {highlight}")
    if not top_pairs:
        raise EvaluationError("top_pairs must be non-empty")
    node_ids: list[int] = []
    seen: set[int] = set()
    for u, v in top_pairs:
        for node in (int(u), int(v)):
            if node not in seen:
                seen.add(node)
                node_ids.append(node)
    node_array = np.asarray(node_ids, dtype=np.int64)
    node_index = {node: row for row, node in enumerate(node_ids)}
    layout = tsne(
        np.asarray(vectors, dtype=np.float64)[node_array],
        config=tsne_config,
        seed=seed,
    )
    highlighted = tuple(
        (int(u), int(v)) for u, v in top_pairs[: min(highlight, len(top_pairs))]
    )
    percentiles = pair_proximity(layout, node_index, highlighted)
    return VisualizationReport(
        layout=layout,
        node_ids=node_array,
        highlighted_pairs=highlighted,
        pair_percentiles=percentiles,
    )


def layout_to_text(report: VisualizationReport, width: int = 60, height: int = 24) -> str:
    """Render a layout as ASCII art (terminal-friendly Fig 6 stand-in).

    Highlighted pair members are drawn with matching digits
    (pair 0 -> '0', pair 1 -> '1', ...); other nodes are dots.
    """
    layout = report.layout
    lo = layout.min(axis=0)
    hi = layout.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    grid = [[" "] * width for _ in range(height)]
    node_index = {int(n): i for i, n in enumerate(report.node_ids)}

    def cell(row: int) -> tuple[int, int]:
        x = int((layout[row, 0] - lo[0]) / span[0] * (width - 1))
        y = int((layout[row, 1] - lo[1]) / span[1] * (height - 1))
        return y, x

    for row in range(layout.shape[0]):
        y, x = cell(row)
        if grid[y][x] == " ":
            grid[y][x] = "."
    for pair_id, (u, v) in enumerate(report.highlighted_pairs):
        symbol = str(pair_id % 10)
        for node in (u, v):
            y, x = cell(node_index[node])
            grid[y][x] = symbol
    return "\n".join("".join(line) for line in grid)
