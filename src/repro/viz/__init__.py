"""Visualisation: exact t-SNE, quantified Fig 6, ASCII charts."""

from repro.viz.ascii import line_chart_text, loglog_scatter_text, sorted_series
from repro.viz.embedding_plot import (
    VisualizationReport,
    layout_to_text,
    pair_proximity,
    visualization_report,
)
from repro.viz.tsne import TSNEConfig, kl_divergence, pairwise_squared_distances, tsne

__all__ = [
    "line_chart_text",
    "loglog_scatter_text",
    "sorted_series",
    "VisualizationReport",
    "layout_to_text",
    "pair_proximity",
    "visualization_report",
    "TSNEConfig",
    "kl_divergence",
    "pairwise_squared_distances",
    "tsne",
]
