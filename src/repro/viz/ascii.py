"""ASCII chart rendering for terminal-only environments.

The paper's figures are scatter/line plots; with no plotting stack
available offline, the experiment ``main()``s render them as text:

* :func:`loglog_scatter_text` — the log–log frequency scatters of
  Figures 1–2,
* :func:`line_chart_text` — the CDF / sweep curves of Figures 3, 7, 8
  and the timing lines of Figure 9,
* :func:`span_flame_text` — the indented flame summary of a
  :mod:`repro.obs.tracing` span tree.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import EvaluationError


def _blank(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _render(grid: list[list[str]]) -> str:
    return "\n".join("".join(row) for row in grid)


def loglog_scatter_text(
    histogram: Mapping[int, int], width: int = 56, height: int = 16
) -> str:
    """Render a ``{frequency: count}`` histogram on log–log axes.

    Reproduces the visual layout of Figures 1–2: X is the frequency a
    user acts as source/target, Y the number of such users, both on
    log10 scales; a power law shows as a descending straight line.
    """
    points = [(x, y) for x, y in histogram.items() if x > 0 and y > 0]
    if len(points) < 2:
        raise EvaluationError("need at least 2 positive histogram points")
    log_points = [(math.log10(x), math.log10(y)) for x, y in points]
    x_lo = min(p[0] for p in log_points)
    x_hi = max(p[0] for p in log_points)
    y_lo = min(p[1] for p in log_points)
    y_hi = max(p[1] for p in log_points)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    plot_width = width - 8  # leave room for the Y-axis labels
    grid = _blank(width, height)
    for log_x, log_y in log_points:
        col = 8 + int((log_x - x_lo) / x_span * (plot_width - 1))
        row = (height - 2) - int((log_y - y_lo) / y_span * (height - 3))
        grid[row][col] = "*"
    # Axes.
    for row in range(height - 1):
        grid[row][7] = "|"
    for col in range(7, width):
        grid[height - 1][col] = "-"
    top_label = f"{10 ** y_hi:>6.0f}"
    bottom_label = f"{10 ** y_lo:>6.0f}"
    grid[0][:6] = list(top_label[:6])
    grid[height - 2][:6] = list(bottom_label[:6])
    rendered = _render(grid)
    x_axis = (
        " " * 8
        + f"{10 ** x_lo:<10.0f}"
        + "log frequency".center(max(0, plot_width - 20))
        + f"{10 ** x_hi:>10.0f}"
    )
    return rendered + "\n" + x_axis


def line_chart_text(
    series: Mapping[str, Mapping[float, float]],
    width: int = 56,
    height: int = 14,
) -> str:
    """Render one or more named (x -> y) series as an ASCII line chart.

    Each series gets a distinct mark (its name's first character);
    shared axes span the union of all points.
    """
    all_points = [
        (float(x), float(y))
        for points in series.values()
        for x, y in points.items()
    ]
    if len(all_points) < 2:
        raise EvaluationError("need at least 2 points across all series")
    x_lo = min(p[0] for p in all_points)
    x_hi = max(p[0] for p in all_points)
    y_lo = min(p[1] for p in all_points)
    y_hi = max(p[1] for p in all_points)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    plot_width = width - 9
    grid = _blank(width, height)
    for name, points in series.items():
        mark = name.strip()[0] if name.strip() else "*"
        for x, y in sorted(points.items()):
            col = 9 + int((float(x) - x_lo) / x_span * (plot_width - 1))
            row = (height - 2) - int((float(y) - y_lo) / y_span * (height - 3))
            grid[row][col] = mark
    for row in range(height - 1):
        grid[row][8] = "|"
    for col in range(8, width):
        grid[height - 1][col] = "-"
    grid[0][:7] = list(f"{y_hi:>7.3f}"[:7])
    grid[height - 2][:7] = list(f"{y_lo:>7.3f}"[:7])
    legend = "  ".join(f"{name.strip()[0]}={name}" for name in series)
    x_axis = " " * 9 + f"{x_lo:<8.3g}" + " " * max(0, plot_width - 16) + f"{x_hi:>8.3g}"
    return _render(grid) + "\n" + x_axis + "\nlegend: " + legend


def sorted_series(values: Mapping[int, float]) -> dict[float, float]:
    """Coerce an int-keyed series into the chart's float mapping."""
    return {float(k): float(v) for k, v in sorted(values.items())}


def span_flame_text(
    spans: Sequence[Mapping[str, object]], width: int = 72
) -> str:
    """Render a span forest as an indented ASCII flame summary.

    ``spans`` is the nested-dict form produced by
    ``Tracer.to_dicts()``/``Span.to_dict()`` — each node carries
    ``name``, ``duration_s``, optional ``status`` and ``children``.
    Bars are proportional to each span's share of the total root
    duration; error spans are flagged with ``!``.

    ::

        fit                         1.234s 100.0%  ##############
          contexts                  0.301s  24.4%  ###
          epoch                     0.450s  36.5%  #####
            sgd                     0.445s  36.1%  #####
    """
    if not spans:
        raise EvaluationError("need at least one span to render")
    total = sum(float(s.get("duration_s", 0.0)) for s in spans) or 1.0
    name_width = 30
    bar_width = max(8, width - name_width - 18)
    lines: list[str] = []

    def emit(span: Mapping[str, object], depth: int) -> None:
        duration = float(span.get("duration_s", 0.0))
        share = duration / total
        bar = "#" * max(1 if duration > 0 else 0, round(share * bar_width))
        flag = "!" if span.get("status") == "error" else " "
        label = ("  " * depth + str(span.get("name", "?")))[:name_width]
        lines.append(
            f"{label:<{name_width}}{duration:>9.3f}s {share:>6.1%}{flag} {bar}"
        )
        for child in span.get("children", ()):  # type: ignore[union-attr]
            emit(child, depth + 1)

    for root in spans:
        emit(root, 0)
    return "\n".join(lines)
