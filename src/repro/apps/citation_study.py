"""The citation-network case study (Section V-D, Table VI).

Pipeline, mirroring the paper:

1. take a citation corpus's author-level influence pairs (authors of a
   cited paper influence authors of the citing paper),
2. randomly split pairs 80/20 into train/test,
3. train two models on the training pairs only —

   * **embedding model**: Eq. 4 skip-gram over *first-order pairs only*
     (the paper deliberately disables Algorithm 1's walks here to make
     the comparison about representations vs edge parameters),
   * **conventional model**: the ST estimator
     ``P_uv = A_{u2v} / A_u`` on the influence graph induced by the
     training pairs, scored at prediction time by Monte-Carlo
     simulation (5,000 runs in the paper);

4. for each test author, predict the top-10 researchers who will cite
   them, and measure precision against the held-out pairs.

The paper reports average precision@10 of 0.1863 (embedding) vs 0.0616
(conventional); the reproduction target is the ≈3× gap, not the
absolute values.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.context import InfluenceContext
from repro.core.embeddings import InfluenceEmbedding
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.citation import CitationDataset, CitationPair
from repro.data.graph import SocialGraph
from repro.diffusion.montecarlo import activation_frequencies
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import EvaluationError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


def pairs_to_contexts(pairs: Sequence[CitationPair]) -> list[InfluenceContext]:
    """One single-member context per influence-pair observation.

    This is the "only exploit first-order social influence pairs"
    setting of the case study: no random walks, no global samples.
    """
    return [
        InfluenceContext(user=p.source, item=p.time, local=(p.target,), global_=())
        for p in pairs
    ]


def train_embedding_model(
    pairs: Sequence[CitationPair],
    num_authors: int,
    dim: int = 32,
    epochs: int = 10,
    learning_rate: float = 0.02,
    seed: SeedLike = None,
) -> InfluenceEmbedding:
    """Learn author representations from first-order pairs via Eq. 4."""
    config = Inf2vecConfig(dim=dim, epochs=epochs, learning_rate=learning_rate)
    model = Inf2vecModel(config, seed=seed)
    model.fit_contexts(pairs_to_contexts(pairs), num_users=num_authors)
    return model.embedding


def train_conventional_model(
    pairs: Sequence[CitationPair], num_authors: int
) -> EdgeProbabilities:
    """ST estimator on the influence graph induced by the training pairs.

    ``A_{u2v}`` counts observations of the pair; ``A_u`` counts all
    observations with ``u`` as source (``u``'s influence trials).
    """
    pair_counts: Counter = Counter((p.source, p.target) for p in pairs)
    source_totals: Counter = Counter(p.source for p in pairs)
    graph = SocialGraph(num_authors, sorted(pair_counts))
    table = {
        (u, v): count / source_totals[u] for (u, v), count in pair_counts.items()
    }
    return EdgeProbabilities.from_dict(graph, table)


@dataclass(frozen=True)
class AuthorPrediction:
    """Top-10 follower prediction for one showcased author."""

    author: int
    embedding_top10: tuple[int, ...]
    conventional_top10: tuple[int, ...]
    embedding_hits: int
    conventional_hits: int


@dataclass(frozen=True)
class CaseStudyResult:
    """Table VI outcome.

    Attributes
    ----------
    embedding_precision:
        Mean precision@10 of the embedding model over all test authors.
    conventional_precision:
        Same for the conventional (ST + Monte-Carlo) model.
    num_test_authors:
        Authors with at least one held-out follower.
    showcase:
        Per-author predictions for the most prolific test authors (the
        paper showcases Stonebraker / Garcia-Molina / Agrawal).
    """

    embedding_precision: float
    conventional_precision: float
    num_test_authors: int
    showcase: tuple[AuthorPrediction, ...]

    @property
    def precision_ratio(self) -> float:
        """Embedding / conventional precision (≈3 in the paper)."""
        if self.conventional_precision == 0:
            return float("inf")
        return self.embedding_precision / self.conventional_precision


def _top_k(scores: np.ndarray, exclude: set[int], k: int) -> tuple[int, ...]:
    order = np.argsort(-scores, kind="stable")
    picked: list[int] = []
    for candidate in order:
        candidate = int(candidate)
        if candidate in exclude:
            continue
        picked.append(candidate)
        if len(picked) == k:
            break
    return tuple(picked)


def run_case_study(
    dataset: CitationDataset,
    train_fraction: float = 0.8,
    top_k: int = 10,
    num_showcase: int = 3,
    mc_runs: int = 500,
    embedding_dim: int = 32,
    embedding_epochs: int = 20,
    seed: SeedLike = None,
) -> CaseStudyResult:
    """Run the full Table VI pipeline on a citation dataset.

    Parameters
    ----------
    dataset:
        The citation corpus.
    train_fraction:
        Pair-level split fraction (0.8 in the paper).
    top_k:
        Prediction list length (10 in the paper).
    num_showcase:
        How many most-prolific test authors to detail.
    mc_runs:
        Monte-Carlo simulations per conventional-model query (5,000 in
        the paper; the default trades a little estimator variance for
        CI runtime).
    embedding_dim, embedding_epochs:
        Embedding-model settings.
    seed:
        Controls the split, training, and simulations.
    """
    check_positive_int("top_k", top_k)
    rng = ensure_rng(seed)
    train, test = dataset.split(train_fraction, seed=rng)
    if not test:
        raise EvaluationError("test split is empty; increase the dataset size")

    embedding = train_embedding_model(
        train,
        dataset.num_authors,
        dim=embedding_dim,
        epochs=embedding_epochs,
        seed=rng,
    )
    probabilities = train_conventional_model(train, dataset.num_authors)

    followers_by_author: dict[int, set[int]] = defaultdict(set)
    for pair in test:
        followers_by_author[pair.source].add(pair.target)

    embedding_precisions: list[float] = []
    conventional_precisions: list[float] = []
    per_author: dict[int, AuthorPrediction] = {}
    for author, truth in followers_by_author.items():
        emb_scores = embedding.scores_from(author)
        emb_top = _top_k(emb_scores, {author}, top_k)
        mc_scores = activation_frequencies(
            probabilities, [author], num_runs=mc_runs, seed=rng
        )
        conv_top = _top_k(mc_scores, {author}, top_k)

        emb_hits = sum(1 for candidate in emb_top if candidate in truth)
        conv_hits = sum(1 for candidate in conv_top if candidate in truth)
        embedding_precisions.append(emb_hits / top_k)
        conventional_precisions.append(conv_hits / top_k)
        per_author[author] = AuthorPrediction(
            author=author,
            embedding_top10=emb_top,
            conventional_top10=conv_top,
            embedding_hits=emb_hits,
            conventional_hits=conv_hits,
        )

    productivity = dataset.papers_per_author()
    showcase_authors = sorted(
        per_author, key=lambda a: (-productivity[a], a)
    )[:num_showcase]
    return CaseStudyResult(
        embedding_precision=float(np.mean(embedding_precisions)),
        conventional_precision=float(np.mean(conventional_precisions)),
        num_test_authors=len(followers_by_author),
        showcase=tuple(per_author[a] for a in showcase_authors),
    )
