"""Applications built on the learned influence embeddings."""

from repro.apps.citation_study import (
    AuthorPrediction,
    CaseStudyResult,
    pairs_to_contexts,
    run_case_study,
    train_conventional_model,
    train_embedding_model,
)
from repro.apps.influence_max import (
    SeedSelection,
    embedding_edge_probabilities,
    embedding_pruned_candidates,
    embedding_seed_selection,
    greedy_influence_maximization,
    ris_influence_maximization,
    ris_pruned_influence_maximization,
)

__all__ = [
    "AuthorPrediction",
    "CaseStudyResult",
    "pairs_to_contexts",
    "run_case_study",
    "train_conventional_model",
    "train_embedding_model",
    "SeedSelection",
    "embedding_edge_probabilities",
    "embedding_pruned_candidates",
    "embedding_seed_selection",
    "greedy_influence_maximization",
    "ris_influence_maximization",
    "ris_pruned_influence_maximization",
]
