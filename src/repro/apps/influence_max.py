"""Influence maximisation on learned influence parameters.

Viral marketing — pick the ``k`` seed users that maximise expected
spread — is the application motivating the paper's introduction
(Kempe et al. [1]).  This module closes that loop on top of the
library's learned models:

* :func:`greedy_influence_maximization` — the classic greedy algorithm
  with CELF lazy evaluation (Leskovec et al.), using Monte-Carlo
  spread estimates over an :class:`EdgeProbabilities` table (works
  with any IC-based model: DE, ST, EM, Emb-IC, or planted ground
  truth).
* :func:`embedding_seed_selection` — a representation shortcut: rank
  users by their aggregate outgoing influence score
  ``mean_v x(u, v)`` plus marginal-coverage re-ranking, avoiding
  simulation entirely (the speed advantage Section V-B2 highlights).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.embeddings import InfluenceEmbedding
from repro.data.graph import SocialGraph
from repro.diffusion.montecarlo import expected_spread
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import EvaluationError
from repro.serve.scoring import DEFAULT_BLOCK_SIZE, iter_source_rows
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """``1 / (1 + e^-x)`` without overflow for strongly negative ``x``.

    The naive form computes ``np.exp(-x)``, which overflows to ``inf``
    (with a RuntimeWarning) once ``x < ~-709``; ``logaddexp`` evaluates
    ``log(1 + e^-x)`` in the stable regime for either sign, so
    ``exp(-logaddexp(0, -x))`` is exact-to-rounding everywhere.
    """
    return np.exp(-np.logaddexp(0.0, -np.asarray(x, dtype=np.float64)))


@dataclass(frozen=True)
class SeedSelection:
    """Result of a seed-selection run.

    Attributes
    ----------
    seeds:
        Chosen seed users, in selection order.
    marginal_gains:
        Estimated marginal spread gain of each selection.
    expected_spread:
        Estimated total spread of the final seed set (MC methods only;
        ``nan`` for the embedding heuristic).
    """

    seeds: tuple[int, ...]
    marginal_gains: tuple[float, ...]
    expected_spread: float


def embedding_edge_probabilities(
    embedding: InfluenceEmbedding,
    graph: SocialGraph,
    mean_probability: float = 0.05,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> EdgeProbabilities:
    """Calibrated IC probabilities from learned influence scores.

    Lets an embedding drive the full Monte-Carlo / CELF machinery:
    each social edge gets ``P_uv = sigmoid(x'(u, v) - shift)`` where
    ``x'`` is the influence score *centred per source* (each source's
    median score over all users subtracted — raw SGNS scores carry an
    arbitrary per-source offset, see :func:`embedding_seed_selection`)
    and the global ``shift`` is binary-searched so the mean edge
    probability equals ``mean_probability``.  Anchoring the mean to an
    externally chosen (or ST-estimated) activity level preserves the
    learned ordering while giving IC simulation the absolute scale it
    needs.

    Score rows are streamed through the blocked serving kernels
    (``block_size`` rows of scratch at a time), so calibration works at
    ``num_users`` far beyond what a dense score matrix would allow.
    """
    check_probability("mean_probability", mean_probability)
    if mean_probability in (0.0, 1.0):
        return EdgeProbabilities.constant(graph, mean_probability)
    edge_array = graph.edge_array()
    if edge_array.shape[0] == 0:
        return EdgeProbabilities(graph, np.empty(0))
    raw = embedding.score_pairs(edge_array[:, 0], edge_array[:, 1])
    # Per-source medians over all users, streamed in bounded row chunks
    # for just the sources that actually carry edges — the old code
    # materialised the full (num_users, num_users) score matrix here.
    sources = np.unique(edge_array[:, 0])
    median_by_source = np.empty(sources.shape[0], dtype=np.float64)
    offset = 0
    for users, rows in iter_source_rows(embedding, sources, block_size):
        median_by_source[offset : offset + users.shape[0]] = np.median(rows, axis=1)
        offset += users.shape[0]
    scores = raw - median_by_source[np.searchsorted(sources, edge_array[:, 0])]

    def mean_sigmoid(shift: float) -> float:
        return float(np.mean(_stable_sigmoid(scores - shift)))

    low, high = scores.min() - 30.0, scores.max() + 30.0
    for _ in range(100):
        mid = (low + high) / 2.0
        if mean_sigmoid(mid) > mean_probability:
            low = mid
        else:
            high = mid
    shift = (low + high) / 2.0
    values = _stable_sigmoid(scores - shift)
    return EdgeProbabilities(graph, np.clip(values, 0.0, 1.0))


def greedy_influence_maximization(
    probabilities: EdgeProbabilities,
    num_seeds: int,
    num_runs: int = 200,
    seed: SeedLike = None,
    candidates: Sequence[int] | None = None,
) -> SeedSelection:
    """CELF-accelerated greedy seed selection under the IC model.

    Parameters
    ----------
    probabilities:
        Edge probabilities (learned or planted).
    num_seeds:
        Size ``k`` of the seed set.
    num_runs:
        Monte-Carlo simulations per spread estimate.
    seed:
        RNG seed for the simulations.
    candidates:
        Optional candidate pool (defaults to every node); restricting
        it to high-out-degree nodes is the standard scalability trick.

    Notes
    -----
    CELF exploits submodularity of the spread function: a node's
    marginal gain can only shrink as the seed set grows, so stale
    upper bounds are re-evaluated lazily from a max-heap.
    """
    graph = probabilities.graph
    num_seeds = check_positive_int("num_seeds", num_seeds)
    if num_seeds > graph.num_nodes:
        raise EvaluationError(
            f"num_seeds={num_seeds} exceeds the number of nodes {graph.num_nodes}"
        )
    rng = ensure_rng(seed)
    pool = (
        list(range(graph.num_nodes))
        if candidates is None
        else [int(c) for c in candidates]
    )
    if len(pool) < num_seeds:
        raise EvaluationError("candidate pool smaller than num_seeds")

    chosen: list[int] = []
    gains: list[float] = []
    current_spread = 0.0

    # Max-heap of (-gain, node, round_evaluated).
    heap: list[tuple[float, int, int]] = []
    for node in pool:
        gain = expected_spread(probabilities, [node], num_runs, rng)
        heapq.heappush(heap, (-gain, node, 0))

    while len(chosen) < num_seeds and heap:
        neg_gain, node, evaluated_round = heapq.heappop(heap)
        if evaluated_round == len(chosen):
            chosen.append(node)
            gains.append(-neg_gain)
            current_spread += -neg_gain
        else:
            fresh = (
                expected_spread(probabilities, chosen + [node], num_runs, rng)
                - current_spread
            )
            heapq.heappush(heap, (-fresh, node, len(chosen)))

    return SeedSelection(
        seeds=tuple(chosen),
        marginal_gains=tuple(gains),
        expected_spread=current_spread,
    )


def embedding_seed_selection(
    embedding: InfluenceEmbedding,
    num_seeds: int,
    coverage_penalty: float = 0.5,
    top_k: int = 50,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> SeedSelection:
    """Simulation-free seed selection from learned representations.

    The score ``x(u, v)`` carries a per-source offset (``b_u`` plus the
    scale SGNS chose for ``S_u``), so raw scores are only
    rank-meaningful *within* one source — comparing ``mean_v x(u, v)``
    across users rewards untrained users whose scores sit at the
    initialisation baseline.  The influence potential used here removes
    that calibration: each user's score row is centred on its own
    median and the potential is the mass of the ``top_k`` centred
    scores — "how far above their own baseline can this user push
    their most susceptible targets".

    Greedy selection with a diversity re-rank: after picking ``u``,
    every remaining candidate's potential is discounted by
    ``coverage_penalty * cosine(S_candidate, S_u)_+``, discouraging
    seeds that influence the same audience.

    Potentials are computed from streamed score rows
    (:func:`repro.serve.scoring.iter_source_rows`, ``block_size``
    bounding scratch memory) — no dense score matrix is built.
    """
    num_seeds = check_positive_int("num_seeds", num_seeds)
    top_k = check_positive_int("top_k", top_k)
    if num_seeds > embedding.num_users:
        raise EvaluationError(
            f"num_seeds={num_seeds} exceeds num_users={embedding.num_users}"
        )
    if coverage_penalty < 0:
        raise EvaluationError(
            f"coverage_penalty must be >= 0, got {coverage_penalty}"
        )
    # Influence potentials streamed per source row: each user's row is
    # centred on its own median and the top_k centred mass summed, one
    # bounded chunk of rows at a time — the dense
    # (num_users, num_users) matrix the old code built never exists.
    k = min(top_k, embedding.num_users)
    base_scores = np.empty(embedding.num_users, dtype=np.float64)
    for users, rows in iter_source_rows(embedding, block_size=block_size):
        centered = np.maximum(
            rows - np.median(rows, axis=1, keepdims=True), 0.0
        )
        base_scores[users] = np.sort(centered, axis=1)[:, -k:].sum(axis=1)
    norms = np.linalg.norm(embedding.source, axis=1)
    norms = np.where(norms > 0, norms, 1.0)
    directions = embedding.source / norms[:, None]

    adjusted = base_scores.astype(np.float64).copy()
    chosen: list[int] = []
    gains: list[float] = []
    for _ in range(num_seeds):
        adjusted[chosen] = -np.inf
        pick = int(np.argmax(adjusted))
        chosen.append(pick)
        gains.append(float(adjusted[pick]))
        similarity = np.maximum(directions @ directions[pick], 0.0)
        adjusted -= coverage_penalty * similarity * np.abs(base_scores)
    return SeedSelection(
        seeds=tuple(chosen),
        marginal_gains=tuple(gains),
        expected_spread=float("nan"),
    )
