"""Influence maximisation on learned influence parameters.

Viral marketing — pick the ``k`` seed users that maximise expected
spread — is the application motivating the paper's introduction
(Kempe et al. [1]).  This module closes that loop on top of the
library's learned models:

* :func:`greedy_influence_maximization` — the classic greedy algorithm
  with CELF lazy evaluation (Leskovec et al.), using Monte-Carlo
  spread estimates over an :class:`EdgeProbabilities` table (works
  with any IC-based model: DE, ST, EM, Emb-IC, or planted ground
  truth).
* :func:`ris_influence_maximization` — sketch-based selection: an
  adaptively sized pool of reverse-reachable sets
  (:mod:`repro.sketch`) replaces the per-candidate Monte-Carlo
  estimates, making seed selection near-linear in the pool size
  instead of O(k · |V| · runs · cascade).
* :func:`ris_pruned_influence_maximization` — the embedding-driven
  variant: the serving layer's :class:`~repro.serve.TopKIndex`
  aggregate-influence ranking prunes the candidate pool first, exact
  sketch coverage verifies within it.
* :func:`embedding_seed_selection` — a representation shortcut: rank
  users by their aggregate outgoing influence score
  ``mean_v x(u, v)`` plus marginal-coverage re-ranking, avoiding
  simulation entirely (the speed advantage Section V-B2 highlights).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.embeddings import InfluenceEmbedding
from repro.data.graph import SocialGraph
from repro.diffusion.montecarlo import expected_spread
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import EvaluationError
from repro.serve.index import TopKIndex
from repro.serve.scoring import DEFAULT_BLOCK_SIZE, iter_source_rows
from repro.serve.topk import TopKEngine
from repro.sketch.rrsets import DEFAULT_BATCH_SIZE
from repro.sketch.schedule import (
    DEFAULT_ELL,
    DEFAULT_EPSILON,
    DEFAULT_MAX_SKETCHES,
    adaptive_rr_pool,
)
from repro.sketch.select import max_coverage_seeds
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """``1 / (1 + e^-x)`` without overflow for strongly negative ``x``.

    The naive form computes ``np.exp(-x)``, which overflows to ``inf``
    (with a RuntimeWarning) once ``x < ~-709``; ``logaddexp`` evaluates
    ``log(1 + e^-x)`` in the stable regime for either sign, so
    ``exp(-logaddexp(0, -x))`` is exact-to-rounding everywhere.
    """
    return np.exp(-np.logaddexp(0.0, -np.asarray(x, dtype=np.float64)))


@dataclass(frozen=True)
class SeedSelection:
    """Result of a seed-selection run.

    Attributes
    ----------
    seeds:
        Chosen seed users, in selection order.
    marginal_gains:
        Estimated marginal spread gain of each selection.
    expected_spread:
        Estimated total spread of the final seed set (MC methods only;
        ``nan`` for the embedding heuristic).
    """

    seeds: tuple[int, ...]
    marginal_gains: tuple[float, ...]
    expected_spread: float


def embedding_edge_probabilities(
    embedding: InfluenceEmbedding,
    graph: SocialGraph,
    mean_probability: float = 0.05,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> EdgeProbabilities:
    """Calibrated IC probabilities from learned influence scores.

    Lets an embedding drive the full Monte-Carlo / CELF machinery:
    each social edge gets ``P_uv = sigmoid(x'(u, v) - shift)`` where
    ``x'`` is the influence score *centred per source* (each source's
    median score over all users subtracted — raw SGNS scores carry an
    arbitrary per-source offset, see :func:`embedding_seed_selection`)
    and the global ``shift`` is binary-searched so the mean edge
    probability equals ``mean_probability``.  Anchoring the mean to an
    externally chosen (or ST-estimated) activity level preserves the
    learned ordering while giving IC simulation the absolute scale it
    needs.

    Score rows are streamed through the blocked serving kernels
    (``block_size`` rows of scratch at a time), so calibration works at
    ``num_users`` far beyond what a dense score matrix would allow.
    """
    check_probability("mean_probability", mean_probability)
    if mean_probability in (0.0, 1.0):
        return EdgeProbabilities.constant(graph, mean_probability)
    edge_array = graph.edge_array()
    if edge_array.shape[0] == 0:
        return EdgeProbabilities(graph, np.empty(0))
    raw = embedding.score_pairs(edge_array[:, 0], edge_array[:, 1])
    # Per-source medians over all users, streamed in bounded row chunks
    # for just the sources that actually carry edges — the old code
    # materialised the full (num_users, num_users) score matrix here.
    sources = np.unique(edge_array[:, 0])
    median_by_source = np.empty(sources.shape[0], dtype=np.float64)
    offset = 0
    for users, rows in iter_source_rows(embedding, sources, block_size):
        median_by_source[offset : offset + users.shape[0]] = np.median(rows, axis=1)
        offset += users.shape[0]
    scores = raw - median_by_source[np.searchsorted(sources, edge_array[:, 0])]

    def mean_sigmoid(shift: float) -> float:
        return float(np.mean(_stable_sigmoid(scores - shift)))

    low, high = scores.min() - 30.0, scores.max() + 30.0
    for _ in range(100):
        mid = (low + high) / 2.0
        if mean_sigmoid(mid) > mean_probability:
            low = mid
        else:
            high = mid
    shift = (low + high) / 2.0
    values = _stable_sigmoid(scores - shift)
    return EdgeProbabilities(graph, np.clip(values, 0.0, 1.0))


def greedy_influence_maximization(
    probabilities: EdgeProbabilities,
    num_seeds: int,
    num_runs: int = 200,
    seed: SeedLike = None,
    candidates: Sequence[int] | None = None,
) -> SeedSelection:
    """CELF-accelerated greedy seed selection under the IC model.

    Parameters
    ----------
    probabilities:
        Edge probabilities (learned or planted).
    num_seeds:
        Size ``k`` of the seed set.
    num_runs:
        Monte-Carlo simulations per spread estimate.
    seed:
        RNG seed for the simulations.
    candidates:
        Optional candidate pool (defaults to every node); restricting
        it to high-out-degree nodes is the standard scalability trick.

    Notes
    -----
    CELF exploits submodularity of the spread function: a node's
    marginal gain can only shrink as the seed set grows, so stale
    upper bounds are re-evaluated lazily from a max-heap.
    """
    graph = probabilities.graph
    num_seeds = check_positive_int("num_seeds", num_seeds)
    if num_seeds > graph.num_nodes:
        raise EvaluationError(
            f"num_seeds={num_seeds} exceeds the number of nodes {graph.num_nodes}"
        )
    rng = ensure_rng(seed)
    pool = (
        list(range(graph.num_nodes))
        if candidates is None
        else [int(c) for c in candidates]
    )
    if len(pool) < num_seeds:
        raise EvaluationError("candidate pool smaller than num_seeds")

    chosen: list[int] = []
    gains: list[float] = []
    current_spread = 0.0

    # Max-heap of (-gain, node, round_evaluated).
    heap: list[tuple[float, int, int]] = []
    for node in pool:
        gain = expected_spread(probabilities, [node], num_runs, rng)
        heapq.heappush(heap, (-gain, node, 0))

    while len(chosen) < num_seeds and heap:
        neg_gain, node, evaluated_round = heapq.heappop(heap)
        if evaluated_round == len(chosen):
            chosen.append(node)
            gains.append(-neg_gain)
            current_spread += -neg_gain
        else:
            fresh = (
                expected_spread(probabilities, chosen + [node], num_runs, rng)
                - current_spread
            )
            heapq.heappush(heap, (-fresh, node, len(chosen)))

    return SeedSelection(
        seeds=tuple(chosen),
        marginal_gains=tuple(gains),
        expected_spread=current_spread,
    )


def ris_influence_maximization(
    probabilities: EdgeProbabilities,
    num_seeds: int,
    epsilon: float = DEFAULT_EPSILON,
    ell: float = DEFAULT_ELL,
    seed: SeedLike = None,
    candidates: Sequence[int] | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_sketches: int = DEFAULT_MAX_SKETCHES,
) -> SeedSelection:
    """Sketch-based (RIS/IMM) seed selection under the IC model.

    Replaces the Monte-Carlo spread estimates of
    :func:`greedy_influence_maximization` with an adaptively sized pool
    of reverse-reachable sets (:func:`repro.sketch.adaptive_rr_pool`)
    followed by CELF-style lazy max-coverage
    (:func:`repro.sketch.max_coverage_seeds`) — same
    :class:`SeedSelection` result, near-linear selection cost.

    Parameters
    ----------
    probabilities:
        Edge probabilities (learned or planted).
    num_seeds:
        Size ``k`` of the seed set.
    epsilon / ell:
        IMM schedule knobs: the selection is a ``(1 - 1/e - epsilon)``
        approximation with probability ``1 - n^-ell`` (pool-cap
        permitting).
    seed:
        RNG seed/Generator for root sampling and reverse-cascade coins
        (seeded Generators only; the same seed reproduces the same
        seed set bit-for-bit).
    candidates:
        Optional candidate pool (defaults to every node).
    batch_size:
        Roots per lockstep reverse-cascade batch.
    max_sketches:
        Hard cap on the pool size.

    Notes
    -----
    ``expected_spread`` is the RIS coverage estimate of the selected
    set.  It is upward-biased by the selection itself (bounded by
    ``epsilon`` under the IMM guarantee); for an unbiased figure,
    re-estimate the returned seeds with
    :func:`repro.diffusion.montecarlo.spread_with_standard_error` or
    :meth:`repro.sketch.RRSketchPool.spread_estimate` on a fresh pool.
    """
    graph = probabilities.graph
    num_seeds = check_positive_int("num_seeds", num_seeds)
    if num_seeds > graph.num_nodes:
        raise EvaluationError(
            f"num_seeds={num_seeds} exceeds the number of nodes {graph.num_nodes}"
        )
    if candidates is not None and len(set(int(c) for c in candidates)) < num_seeds:
        raise EvaluationError("candidate pool smaller than num_seeds")
    pool, _schedule = adaptive_rr_pool(
        probabilities,
        num_seeds,
        epsilon=epsilon,
        ell=ell,
        seed=seed,
        candidates=candidates,
        batch_size=batch_size,
        max_sketches=max_sketches,
    )
    result = max_coverage_seeds(pool, num_seeds, candidates)
    scale = pool.spread_scale()
    return SeedSelection(
        seeds=result.seeds,
        marginal_gains=tuple(scale * count for count in result.marginal_counts),
        expected_spread=graph.num_nodes * result.coverage_fraction,
    )


def embedding_pruned_candidates(
    embedding: InfluenceEmbedding,
    num_candidates: int,
    probe_k: int = 10,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Top candidate users by serving-layer aggregate influence.

    Builds a :class:`~repro.serve.TopKIndex` over the embedding (the
    same blocked engine the serving layer queries) and ranks each user
    by the mass of their ``probe_k`` strongest outgoing scores with the
    per-source bias removed — ``sum_top_k x(u, ·) - probe_k · b_u`` —
    since the raw SGNS score carries a per-source offset that would
    reward untrained users (see :func:`embedding_seed_selection`).
    Returns the ``num_candidates`` highest-ranked user ids.
    """
    num_candidates = check_positive_int("num_candidates", num_candidates)
    if num_candidates > embedding.num_users:
        raise EvaluationError(
            f"num_candidates={num_candidates} exceeds "
            f"num_users={embedding.num_users}"
        )
    probe_k = min(check_positive_int("probe_k", probe_k), embedding.num_users)
    engine = TopKEngine(embedding, block_size=block_size)
    index = TopKIndex.build(engine, probe_k, direction="influenced")
    mass = index.scores.sum(axis=1) - index.k * np.asarray(
        embedding.source_bias, dtype=np.float64
    )
    # Deterministic order: by descending mass, user id breaking ties.
    ranking = np.lexsort((np.arange(mass.shape[0]), -mass))
    return np.sort(ranking[:num_candidates])


def ris_pruned_influence_maximization(
    probabilities: EdgeProbabilities,
    embedding: InfluenceEmbedding,
    num_seeds: int,
    num_candidates: int | None = None,
    probe_k: int = 10,
    epsilon: float = DEFAULT_EPSILON,
    ell: float = DEFAULT_ELL,
    seed: SeedLike = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_sketches: int = DEFAULT_MAX_SKETCHES,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> SeedSelection:
    """RIS selection over an embedding-pruned candidate pool.

    The serving layer's aggregate-influence ranking
    (:func:`embedding_pruned_candidates`) keeps only the most promising
    ``num_candidates`` users (default ``max(64, 16 · num_seeds)``,
    clipped to the universe); exact sketch coverage then verifies and
    orders seeds *within* that pool.  Shrinking the candidate pool
    shrinks both the max-coverage heap and the phase-1 greedy runs of
    the sampling schedule, at the price of the pruning heuristic's
    recall — the benchmark records the spread cost empirically.
    """
    graph = probabilities.graph
    num_seeds = check_positive_int("num_seeds", num_seeds)
    if embedding.num_users != graph.num_nodes:
        raise EvaluationError(
            f"embedding covers {embedding.num_users} users but the graph "
            f"has {graph.num_nodes} nodes"
        )
    if num_candidates is None:
        num_candidates = min(graph.num_nodes, max(64, 16 * num_seeds))
    if num_candidates < num_seeds:
        raise EvaluationError(
            f"num_candidates={num_candidates} is smaller than "
            f"num_seeds={num_seeds}"
        )
    candidates = embedding_pruned_candidates(
        embedding, num_candidates, probe_k=probe_k, block_size=block_size
    )
    return ris_influence_maximization(
        probabilities,
        num_seeds,
        epsilon=epsilon,
        ell=ell,
        seed=seed,
        candidates=candidates,
        batch_size=batch_size,
        max_sketches=max_sketches,
    )


def embedding_seed_selection(
    embedding: InfluenceEmbedding,
    num_seeds: int,
    coverage_penalty: float = 0.5,
    top_k: int = 50,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> SeedSelection:
    """Simulation-free seed selection from learned representations.

    The score ``x(u, v)`` carries a per-source offset (``b_u`` plus the
    scale SGNS chose for ``S_u``), so raw scores are only
    rank-meaningful *within* one source — comparing ``mean_v x(u, v)``
    across users rewards untrained users whose scores sit at the
    initialisation baseline.  The influence potential used here removes
    that calibration: each user's score row is centred on its own
    median and the potential is the mass of the ``top_k`` centred
    scores — "how far above their own baseline can this user push
    their most susceptible targets".

    Greedy selection with a diversity re-rank: after picking ``u``,
    every remaining candidate's potential is discounted by
    ``coverage_penalty * cosine(S_candidate, S_u)_+``, discouraging
    seeds that influence the same audience.

    Potentials are computed from streamed score rows
    (:func:`repro.serve.scoring.iter_source_rows`, ``block_size``
    bounding scratch memory) — no dense score matrix is built.
    """
    num_seeds = check_positive_int("num_seeds", num_seeds)
    top_k = check_positive_int("top_k", top_k)
    if num_seeds > embedding.num_users:
        raise EvaluationError(
            f"num_seeds={num_seeds} exceeds num_users={embedding.num_users}"
        )
    if coverage_penalty < 0:
        raise EvaluationError(
            f"coverage_penalty must be >= 0, got {coverage_penalty}"
        )
    # Influence potentials streamed per source row: each user's row is
    # centred on its own median and the top_k centred mass summed, one
    # bounded chunk of rows at a time — the dense
    # (num_users, num_users) matrix the old code built never exists.
    k = min(top_k, embedding.num_users)
    base_scores = np.empty(embedding.num_users, dtype=np.float64)
    for users, rows in iter_source_rows(embedding, block_size=block_size):
        centered = np.maximum(
            rows - np.median(rows, axis=1, keepdims=True), 0.0
        )
        base_scores[users] = np.sort(centered, axis=1)[:, -k:].sum(axis=1)
    norms = np.linalg.norm(embedding.source, axis=1)
    norms = np.where(norms > 0, norms, 1.0)
    directions = embedding.source / norms[:, None]

    adjusted = base_scores.astype(np.float64).copy()
    chosen: list[int] = []
    gains: list[float] = []
    for _ in range(num_seeds):
        adjusted[chosen] = -np.inf
        pick = int(np.argmax(adjusted))
        chosen.append(pick)
        gains.append(float(adjusted[pick]))
        similarity = np.maximum(directions @ directions[pick], 0.0)
        adjusted -= coverage_penalty * similarity * np.abs(base_scores)
    return SeedSelection(
        seeds=tuple(chosen),
        marginal_gains=tuple(gains),
        expected_spread=float("nan"),
    )
