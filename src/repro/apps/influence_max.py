"""Influence maximisation on learned influence parameters.

Viral marketing — pick the ``k`` seed users that maximise expected
spread — is the application motivating the paper's introduction
(Kempe et al. [1]).  This module closes that loop on top of the
library's learned models:

* :func:`greedy_influence_maximization` — the classic greedy algorithm
  with CELF lazy evaluation (Leskovec et al.), using Monte-Carlo
  spread estimates over an :class:`EdgeProbabilities` table (works
  with any IC-based model: DE, ST, EM, Emb-IC, or planted ground
  truth).
* :func:`embedding_seed_selection` — a representation shortcut: rank
  users by their aggregate outgoing influence score
  ``mean_v x(u, v)`` plus marginal-coverage re-ranking, avoiding
  simulation entirely (the speed advantage Section V-B2 highlights).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.embeddings import InfluenceEmbedding
from repro.data.graph import SocialGraph
from repro.diffusion.montecarlo import expected_spread
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import EvaluationError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class SeedSelection:
    """Result of a seed-selection run.

    Attributes
    ----------
    seeds:
        Chosen seed users, in selection order.
    marginal_gains:
        Estimated marginal spread gain of each selection.
    expected_spread:
        Estimated total spread of the final seed set (MC methods only;
        ``nan`` for the embedding heuristic).
    """

    seeds: tuple[int, ...]
    marginal_gains: tuple[float, ...]
    expected_spread: float


def embedding_edge_probabilities(
    embedding: InfluenceEmbedding,
    graph: SocialGraph,
    mean_probability: float = 0.05,
) -> EdgeProbabilities:
    """Calibrated IC probabilities from learned influence scores.

    Lets an embedding drive the full Monte-Carlo / CELF machinery:
    each social edge gets ``P_uv = sigmoid(x'(u, v) - shift)`` where
    ``x'`` is the influence score *centred per source* (each source's
    median score over all users subtracted — raw SGNS scores carry an
    arbitrary per-source offset, see :func:`embedding_seed_selection`)
    and the global ``shift`` is binary-searched so the mean edge
    probability equals ``mean_probability``.  Anchoring the mean to an
    externally chosen (or ST-estimated) activity level preserves the
    learned ordering while giving IC simulation the absolute scale it
    needs.
    """
    check_probability("mean_probability", mean_probability)
    if mean_probability in (0.0, 1.0):
        return EdgeProbabilities.constant(graph, mean_probability)
    edge_array = graph.edge_array()
    if edge_array.shape[0] == 0:
        return EdgeProbabilities(graph, np.empty(0))
    raw = embedding.score_pairs(edge_array[:, 0], edge_array[:, 1])
    pairwise = (
        embedding.source @ embedding.target.T
        + embedding.source_bias[:, None]
        + embedding.target_bias[None, :]
    )
    source_median = np.median(pairwise, axis=1)
    scores = raw - source_median[edge_array[:, 0]]

    def mean_sigmoid(shift: float) -> float:
        return float(np.mean(1.0 / (1.0 + np.exp(-(scores - shift)))))

    low, high = scores.min() - 30.0, scores.max() + 30.0
    for _ in range(100):
        mid = (low + high) / 2.0
        if mean_sigmoid(mid) > mean_probability:
            low = mid
        else:
            high = mid
    shift = (low + high) / 2.0
    values = 1.0 / (1.0 + np.exp(-(scores - shift)))
    return EdgeProbabilities(graph, np.clip(values, 0.0, 1.0))


def greedy_influence_maximization(
    probabilities: EdgeProbabilities,
    num_seeds: int,
    num_runs: int = 200,
    seed: SeedLike = None,
    candidates: Sequence[int] | None = None,
) -> SeedSelection:
    """CELF-accelerated greedy seed selection under the IC model.

    Parameters
    ----------
    probabilities:
        Edge probabilities (learned or planted).
    num_seeds:
        Size ``k`` of the seed set.
    num_runs:
        Monte-Carlo simulations per spread estimate.
    seed:
        RNG seed for the simulations.
    candidates:
        Optional candidate pool (defaults to every node); restricting
        it to high-out-degree nodes is the standard scalability trick.

    Notes
    -----
    CELF exploits submodularity of the spread function: a node's
    marginal gain can only shrink as the seed set grows, so stale
    upper bounds are re-evaluated lazily from a max-heap.
    """
    graph = probabilities.graph
    num_seeds = check_positive_int("num_seeds", num_seeds)
    if num_seeds > graph.num_nodes:
        raise EvaluationError(
            f"num_seeds={num_seeds} exceeds the number of nodes {graph.num_nodes}"
        )
    rng = ensure_rng(seed)
    pool = (
        list(range(graph.num_nodes))
        if candidates is None
        else [int(c) for c in candidates]
    )
    if len(pool) < num_seeds:
        raise EvaluationError("candidate pool smaller than num_seeds")

    chosen: list[int] = []
    gains: list[float] = []
    current_spread = 0.0

    # Max-heap of (-gain, node, round_evaluated).
    heap: list[tuple[float, int, int]] = []
    for node in pool:
        gain = expected_spread(probabilities, [node], num_runs, rng)
        heapq.heappush(heap, (-gain, node, 0))

    while len(chosen) < num_seeds and heap:
        neg_gain, node, evaluated_round = heapq.heappop(heap)
        if evaluated_round == len(chosen):
            chosen.append(node)
            gains.append(-neg_gain)
            current_spread += -neg_gain
        else:
            fresh = (
                expected_spread(probabilities, chosen + [node], num_runs, rng)
                - current_spread
            )
            heapq.heappush(heap, (-fresh, node, len(chosen)))

    return SeedSelection(
        seeds=tuple(chosen),
        marginal_gains=tuple(gains),
        expected_spread=current_spread,
    )


def embedding_seed_selection(
    embedding: InfluenceEmbedding,
    num_seeds: int,
    coverage_penalty: float = 0.5,
    top_k: int = 50,
) -> SeedSelection:
    """Simulation-free seed selection from learned representations.

    The score ``x(u, v)`` carries a per-source offset (``b_u`` plus the
    scale SGNS chose for ``S_u``), so raw scores are only
    rank-meaningful *within* one source — comparing ``mean_v x(u, v)``
    across users rewards untrained users whose scores sit at the
    initialisation baseline.  The influence potential used here removes
    that calibration: each user's score row is centred on its own
    median and the potential is the mass of the ``top_k`` centred
    scores — "how far above their own baseline can this user push
    their most susceptible targets".

    Greedy selection with a diversity re-rank: after picking ``u``,
    every remaining candidate's potential is discounted by
    ``coverage_penalty * cosine(S_candidate, S_u)_+``, discouraging
    seeds that influence the same audience.
    """
    num_seeds = check_positive_int("num_seeds", num_seeds)
    top_k = check_positive_int("top_k", top_k)
    if num_seeds > embedding.num_users:
        raise EvaluationError(
            f"num_seeds={num_seeds} exceeds num_users={embedding.num_users}"
        )
    if coverage_penalty < 0:
        raise EvaluationError(
            f"coverage_penalty must be >= 0, got {coverage_penalty}"
        )
    pairwise = (
        embedding.source @ embedding.target.T
        + embedding.source_bias[:, None]
        + embedding.target_bias[None, :]
    )
    centered = np.maximum(
        pairwise - np.median(pairwise, axis=1, keepdims=True), 0.0
    )
    k = min(top_k, embedding.num_users)
    base_scores = np.sort(centered, axis=1)[:, -k:].sum(axis=1)
    norms = np.linalg.norm(embedding.source, axis=1)
    norms = np.where(norms > 0, norms, 1.0)
    directions = embedding.source / norms[:, None]

    adjusted = base_scores.astype(np.float64).copy()
    chosen: list[int] = []
    gains: list[float] = []
    for _ in range(num_seeds):
        adjusted[chosen] = -np.inf
        pick = int(np.argmax(adjusted))
        chosen.append(pick)
        gains.append(float(adjusted[pick]))
        similarity = np.maximum(directions @ directions[pick], 0.0)
        adjusted -= coverage_penalty * similarity * np.abs(base_scores)
    return SeedSelection(
        seeds=tuple(chosen),
        marginal_gains=tuple(gains),
        expected_spread=float("nan"),
    )
