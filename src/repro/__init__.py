"""repro — a full reproduction of Inf2vec (ICDE 2018).

Feng et al., *Inf2vec: Latent Representation Model for Social Influence
Embedding*, ICDE 2018.

The package learns per-user influence embeddings from a social network
and an action log, together with every baseline, diffusion substrate,
and evaluation protocol the paper compares against.

Quickstart
----------
>>> from repro import SyntheticSocialDataset, Inf2vecModel, Inf2vecConfig
>>> data = SyntheticSocialDataset.digg_like(num_users=200, num_items=40, seed=7)
>>> train, tune, test = data.log.split((0.8, 0.1, 0.1), seed=7)
>>> model = Inf2vecModel(Inf2vecConfig(dim=16, epochs=3), seed=7)
>>> model = model.fit(data.graph, train)
>>> model.embedding.score(0, 1)  # x(0 -> 1)  # doctest: +SKIP
"""

from repro.ckpt import CheckpointManager, TrainingState
from repro.core.context import ContextConfig
from repro.core.embeddings import InfluenceEmbedding
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.core.prediction import EmbeddingPredictor, ICPredictor
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.data.synthetic import SyntheticSocialDataset
from repro.errors import CheckpointError, ReproError
from repro.obs import RunRecorder, recording

__version__ = "1.0.0"

__all__ = [
    "CheckpointManager",
    "TrainingState",
    "CheckpointError",
    "ContextConfig",
    "InfluenceEmbedding",
    "Inf2vecConfig",
    "Inf2vecModel",
    "EmbeddingPredictor",
    "ICPredictor",
    "ActionLog",
    "DiffusionEpisode",
    "SocialGraph",
    "SyntheticSocialDataset",
    "ReproError",
    "RunRecorder",
    "recording",
    "__version__",
]
