"""Checked-in baseline: grandfathered findings the runner ignores.

A baseline lets a new rule land while its pre-existing violations are
paid down incrementally: the runner filters out any finding whose
:func:`baseline_key` appears in the file, so only *new* violations
fail the build.  Keys deliberately omit the line number — code above a
grandfathered site moving it around must not resurrect the finding —
but include the message, so a *different* violation in the same file
still fails.

The file is JSON (sorted, newline-terminated, written atomically via
:func:`repro.ckpt.atomic.atomic_write_text`) so diffs stay reviewable::

    {
      "version": 1,
      "entries": [
        "atomic-write-only::data/loaders.py::open(..., 'w') outside ..."
      ]
    }

The repository ships an empty baseline at :data:`BASELINE_FILENAME`
in the repo root; the CLI discovers it by walking up from the scanned
directory.  Regenerate with ``python -m repro.analysis --write-baseline``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.analysis.core import Finding
from repro.ckpt.atomic import atomic_write_text
from repro.errors import ReproError

PathLike = Union[str, Path]

#: Name the CLI auto-discovers by walking up from the scanned root.
BASELINE_FILENAME = ".analysis-baseline.json"

_BASELINE_VERSION = 1


def baseline_key(finding: Finding) -> str:
    """Stable identity of a finding: rule, path, message — no line."""
    return f"{finding.rule_id}::{finding.path}::{finding.message}"


def load_baseline(path: PathLike) -> frozenset[str]:
    """Read a baseline file into the key set :func:`run_analysis` takes."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable baseline file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
        raise ReproError(
            f"baseline file {path} is not a version-{_BASELINE_VERSION} baseline"
        )
    entries = payload.get("entries", [])
    if not isinstance(entries, list) or not all(
        isinstance(entry, str) for entry in entries
    ):
        raise ReproError(f"baseline file {path}: 'entries' must be a string list")
    return frozenset(entries)


def save_baseline(path: PathLike, findings: Iterable[Finding]) -> Path:
    """Atomically write ``findings`` as a baseline; returns the path."""
    keys = sorted({baseline_key(finding) for finding in findings})
    payload = {"version": _BASELINE_VERSION, "entries": keys}
    return atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def discover_baseline(start: PathLike) -> Path | None:
    """Walk up from ``start`` looking for :data:`BASELINE_FILENAME`."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / BASELINE_FILENAME
        if candidate.is_file():
            return candidate
    return None
