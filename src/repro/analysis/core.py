"""Framework core: findings, parsed files, suppressions, the runner.

The pieces every rule builds on:

* :class:`Finding` — one violation, addressed by root-relative path,
  line, rule id, and message;
* :class:`ParsedFile` — a source file with its ``ast`` tree and the
  line-indexed ``# lint: disable=<rule>`` suppressions, parsed **once**
  and shared by every rule (the parse cache also persists across
  :func:`run_analysis` calls in the same process, keyed by
  ``(mtime_ns, size)`` so even a rewrite inside one mtime tick on a
  coarse-granularity filesystem is detected when the length changes,
  and the pytest guard and a subsequent CLI run never re-parse a file
  that has not changed);
* :class:`Rule` / :class:`AstRule` — the plugin protocol and the
  convenience base class rules derive from;
* :func:`run_analysis` / :func:`analyze_source` — run a rule suite
  over a directory tree or over an in-memory snippet (the fixture
  tests parse strings, never repo files).

A file that fails to parse is itself reported as a finding under the
reserved rule id ``parse-error`` rather than aborting the run.

Suppression comments apply to the whole *statement* containing the
comment's line: a disable anywhere on a multi-line call covers every
physical line of that statement (``lineno..end_lineno``), so findings
reported on the opening line are silenced by a comment on a wrapped
argument line and vice versa::

    self.start_unix = time.time()  # lint: disable=no-wallclock-timing

A bare ``# lint: disable`` (no ``=rule``) suppresses every rule on
that statement; use sparingly.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence, Union, runtime_checkable

PathLike = Union[str, Path]

#: Reserved rule id for files the parser rejects.
PARSE_ERROR_RULE = "parse-error"

_SUPPRESS_RE = re.compile(r"lint:\s*disable(?:=(?P<rules>[\w\-]+(?:\s*,\s*[\w\-]+)*))?")

#: Sentinel meaning "all rules suppressed on this line".
_ALL_RULES = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str  #: POSIX path relative to the scanned root.
    line: int  #: 1-indexed physical line.
    rule_id: str
    message: str

    def render(self, prefix: str = "") -> str:
        """``path:line: rule-id: message`` (optionally prefixed)."""
        location = f"{prefix}/{self.path}" if prefix else self.path
        return f"{location}:{self.line}: {self.rule_id}: {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (the CLI's ``--format json`` schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }


@dataclass
class ParsedFile:
    """A source file parsed once and shared by every rule."""

    path: Path  #: Path as handed to the runner (absolute or relative).
    relative: str  #: POSIX path relative to the scanned root.
    text: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``line`` carries a disable comment covering ``rule_id``."""
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return rules is _ALL_RULES or "*" in rules or rule_id in rules


@runtime_checkable
class Rule(Protocol):
    """The plugin protocol: a rule id, a description, and a check.

    Rules are stateless across files; :meth:`check` receives one
    :class:`ParsedFile` at a time and yields findings.  Suppression
    comments and the baseline are applied by the runner, never by the
    rule itself.
    """

    rule_id: str
    description: str

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        """Yield every violation of this rule in ``parsed``."""
        ...


class AstRule:
    """Convenience base class: shared ``finding`` constructor.

    Subclasses set ``rule_id`` / ``description`` class attributes and
    implement :meth:`check`.
    """

    rule_id = "abstract"
    description = "abstract base rule"

    def finding(self, parsed: ParsedFile, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` located at ``node``."""
        return Finding(
            path=parsed.relative,
            line=getattr(node, "lineno", 1),
            rule_id=self.rule_id,
            message=message,
        )

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        """Subclasses must override."""
        raise NotImplementedError


def _scan_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed rule ids from ``lint:`` comments."""
    suppressions: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for line, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            suppressions[line] = _ALL_RULES
        else:
            names = frozenset(name.strip() for name in listed.split(","))
            suppressions[line] = suppressions.get(line, frozenset()) | names
    return suppressions


def _expand_suppressions_to_statements(
    tree: ast.Module, suppressions: dict[int, frozenset[str]]
) -> dict[int, frozenset[str]]:
    """Widen each suppression to its whole statement's line range.

    A ``# lint: disable`` on any physical line of a multi-line
    statement must cover findings reported on *every* line of that
    statement (rules usually report on the statement's first line,
    while the comment often sits on a wrapped argument line).  For each
    suppression we find the smallest enclosing ``ast.stmt`` span and
    apply the suppressed rules to its full ``lineno..end_lineno``
    range; a comment outside any statement keeps exact-line scope.
    """
    if not suppressions:
        return suppressions
    spans = [
        (node.lineno, node.end_lineno or node.lineno)
        for node in ast.walk(tree)
        if isinstance(node, ast.stmt)
    ]
    expanded: dict[int, frozenset[str]] = {}

    def add(line: int, rules: frozenset[str]) -> None:
        existing = expanded.get(line)
        expanded[line] = rules if existing is None else existing | rules

    for line, rules in suppressions.items():
        add(line, rules)
        enclosing = [
            (start, end) for start, end in spans if start <= line <= end
        ]
        if not enclosing:
            continue
        start, end = min(enclosing, key=lambda span: span[1] - span[0])
        for covered in range(start, end + 1):
            add(covered, rules)
    return expanded


def parse_source(
    text: str, relative: str = "<memory>.py", path: PathLike | None = None
) -> ParsedFile:
    """Parse ``text`` into a :class:`ParsedFile` (raises ``SyntaxError``)."""
    tree = ast.parse(text, filename=relative)
    return ParsedFile(
        path=Path(path) if path is not None else Path(relative),
        relative=relative,
        text=text,
        tree=tree,
        suppressions=_expand_suppressions_to_statements(
            tree, _scan_suppressions(text)
        ),
    )


#: Process-wide parse cache: resolved path -> (mtime_ns, size, ParsedFile).
_PARSE_CACHE: dict[str, tuple[int, int, ParsedFile]] = {}


def _parse_path(path: Path, relative: str) -> ParsedFile:
    """Parse ``path`` through the mtime-validated process-wide cache."""
    key = str(path.resolve())
    stat = path.stat()
    cached = _PARSE_CACHE.get(key)
    if cached is not None:
        mtime_ns, size, parsed = cached
        if mtime_ns == stat.st_mtime_ns and size == stat.st_size:
            if parsed.relative == relative:
                return parsed
    parsed = parse_source(path.read_text(encoding="utf-8"), relative, path=path)
    _PARSE_CACHE[key] = (stat.st_mtime_ns, stat.st_size, parsed)
    return parsed


def iter_python_files(root: PathLike) -> Iterator[Path]:
    """All ``*.py`` files under ``root``, sorted, hidden dirs skipped."""
    root = Path(root)
    for path in sorted(root.rglob("*.py")):
        if any(part.startswith(".") for part in path.relative_to(root).parts):
            continue
        yield path


def _apply_rules(
    parsed: ParsedFile, rules: Sequence[Rule]
) -> Iterator[Finding]:
    for rule in rules:
        for finding in rule.check(parsed):
            if not parsed.is_suppressed(finding.rule_id, finding.line):
                yield finding


def analyze_source(
    text: str, rules: Sequence[Rule], relative: str = "<memory>.py"
) -> list[Finding]:
    """Run ``rules`` over an in-memory snippet (the fixture-test entry).

    Suppression comments are honoured; a syntax error comes back as a
    single ``parse-error`` finding instead of raising.
    """
    try:
        parsed = parse_source(text, relative)
    except SyntaxError as exc:
        return [
            Finding(
                path=relative,
                line=exc.lineno or 1,
                rule_id=PARSE_ERROR_RULE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    return sorted(_apply_rules(parsed, rules))


def run_analysis(
    root: PathLike,
    rules: Sequence[Rule],
    baseline: frozenset[str] | None = None,
    only: frozenset[str] | None = None,
) -> list[Finding]:
    """Run ``rules`` over every Python file under ``root``.

    Parameters
    ----------
    root:
        Directory to scan (typically ``src/repro``).
    rules:
        Rule instances to apply; each file is parsed once and shared.
    baseline:
        Optional set of :func:`repro.analysis.baseline.baseline_key`
        strings; matching findings are filtered out (grandfathered).
    only:
        Optional set of resolved absolute path strings; when given,
        files outside the set are skipped entirely (the CLI's
        ``--changed-only`` restriction).

    Returns the surviving findings sorted by path, line, rule.
    """
    root = Path(root)
    findings: list[Finding] = []
    for path in iter_python_files(root):
        if only is not None and str(path.resolve()) not in only:
            continue
        relative = path.relative_to(root).as_posix()
        try:
            parsed = _parse_path(path, relative)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    path=relative,
                    line=exc.lineno or 1,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        findings.extend(_apply_rules(parsed, rules))
    if baseline:
        from repro.analysis.baseline import baseline_key

        findings = [f for f in findings if baseline_key(f) not in baseline]
    return sorted(findings)
