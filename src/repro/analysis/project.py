"""Pass 2 of the analysis engine: the whole-project graph.

The per-file rules (:class:`repro.analysis.core.Rule`) see one
:class:`~repro.analysis.core.ParsedFile` at a time, which is exactly
wrong for the invariants this repository grew after PR 4: hogwild
write discipline spans ``parallel/`` and the worker entry point in
``core/inf2vec.py``, the telemetry contract spans every instrument
site plus ``obs/catalog.py`` plus the regress-gate policies, and a
dead ``__all__`` export is *defined* by what every other module (and
the test tree) does not import.  This module builds the shared
project-wide view those rules need:

* :class:`ModuleInfo` — one module: its dotted name, parsed AST,
  ``__all__`` exports, top-level definitions, every import edge (also
  the lazy function-level ones), and the module-alias attribute
  accesses it performs;
* :class:`ProjectGraph` — the symbol table over all modules, with
  re-export origin resolution (``repro.core`` re-exporting
  ``Inf2vecModel`` from ``repro.core.inf2vec`` aliases the same
  symbol) and usage queries; *reference* trees (tests, benchmarks,
  examples, scripts) contribute usage edges but are never checked;
* :class:`ProjectRule` — the pass-2 plugin protocol:
  ``check_project(graph)`` instead of ``check(parsed)``;
* :func:`build_project_graph` / :func:`build_project_graph_from_sources`
  — construct the graph from a directory tree (through the shared
  mtime/size-keyed parse cache) or from in-memory fixture sources;
* :func:`run_project_rules` — apply project rules with the same
  suppression-comment semantics as the per-file runner.

Graph construction is pass 1 (symbol table + import graph over the
already-cached :class:`ParsedFile`\\ s); the rules are pass 2 and see
resolved symbols instead of string matches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.analysis.core import (
    Finding,
    ParsedFile,
    PathLike,
    Rule,
    _parse_path,
    iter_python_files,
    parse_source,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.rules.common import ImportMap


@dataclass(frozen=True)
class ImportEdge:
    """One imported binding: ``from module import name`` or ``import module``.

    ``name`` is ``None`` for plain ``import module``; ``bound`` is the
    local alias the import creates.  Edges are collected from the whole
    tree, so lazy function-level imports (cycle guards) appear too.
    """

    module: str
    name: str | None
    bound: str
    lineno: int


def _module_name_for(relative: str, package: str | None) -> str:
    """Dotted module name of a root-relative POSIX path."""
    parts = relative.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = parts[-1][: -len(".py")]
    if package:
        parts = [package, *parts]
    return ".".join(parts) if parts else (package or "")


def _literal_exports(tree: ast.Module) -> tuple[str, ...] | None:
    """``__all__`` as a tuple of strings, or ``None`` if absent/non-literal."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
                    if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts
                    ):
                        return tuple(e.value for e in value.elts)
                    return None
    return None


@dataclass
class ModuleInfo:
    """One module of the project, with its resolved symbol information."""

    name: str  #: Dotted module name (``repro.core.inf2vec``).
    parsed: ParsedFile
    is_package: bool  #: Whether the file is a package ``__init__.py``.
    checked: bool  #: Rules emit findings here (False = reference-only).
    exports: tuple[str, ...] | None = None  #: Literal ``__all__``, if any.
    top_level_defs: frozenset[str] = frozenset()
    imports: tuple[ImportEdge, ...] = ()
    import_map: "ImportMap" = field(default=None, repr=False)  # type: ignore[assignment]
    #: ``(module, attr)`` pairs read as attributes of a module alias
    #: (``shared.SharedEmbedding`` after ``from repro.parallel import
    #: shared``), resolved against the project's module set.
    attribute_uses: frozenset[tuple[str, str]] = frozenset()

    def imports_symbol(self, canonical: str) -> bool:
        """Whether any local alias resolves to the canonical dotted path."""
        return any(
            resolved == canonical or resolved.startswith(canonical + ".")
            for resolved in self.import_map.aliases.values()
        ) or any(
            f"{edge.module}.{edge.name}" == canonical
            for edge in self.imports
            if edge.name is not None
        )


def _collect_imports(
    tree: ast.Module, package_parts: Sequence[str]
) -> tuple[ImportEdge, ...]:
    """Every import edge in the tree, with relative imports resolved."""
    edges: list[ImportEdge] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                edges.append(
                    ImportEdge(
                        module=alias.name,
                        name=None,
                        bound=alias.asname or alias.name.split(".")[0],
                        lineno=node.lineno,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = list(package_parts)
                drop = node.level - 1
                if drop:
                    base = base[:-drop] if drop <= len(base) else []
                module = ".".join(
                    [*base, node.module] if node.module else base
                )
            else:
                module = node.module or ""
            if not module:
                continue
            for alias in node.names:
                edges.append(
                    ImportEdge(
                        module=module,
                        name=alias.name,
                        bound=alias.asname or alias.name,
                        lineno=node.lineno,
                    )
                )
    return tuple(edges)


def _collect_attribute_uses(
    tree: ast.Module, edges: Sequence[ImportEdge], module_names: frozenset[str]
) -> frozenset[tuple[str, str]]:
    """Resolve ``alias.attr`` chains whose alias names a project module.

    For a chain like ``repro.analysis.baseline.baseline_key`` the
    *deepest* prefix that is a known module wins, recording
    ``("repro.analysis.baseline", "baseline_key")``.
    """
    aliases: dict[str, str] = {}
    for edge in edges:
        if edge.name is None:
            # ``import pkg.util`` binds only ``pkg``; the dotted tail is
            # reached through attribute access, which the chain walk
            # below resolves segment by segment.  An ``as`` alias binds
            # the full dotted module instead.
            head = edge.module.split(".")[0]
            aliases[edge.bound] = head if edge.bound == head else edge.module
        else:
            aliases[edge.bound] = f"{edge.module}.{edge.name}"
    uses: set[tuple[str, str]] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        chain: list[str] = []
        current: ast.expr = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            continue
        chain.append(current.id)
        chain.reverse()
        head = aliases.get(chain[0])
        if head is None:
            continue
        parts = [*head.split("."), *chain[1:]]
        for depth in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:depth])
            if prefix in module_names:
                uses.add((prefix, parts[depth]))
                break
    return frozenset(uses)


def _top_level_def_names(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return frozenset(names)


class ProjectGraph:
    """The whole-project symbol table and import graph (pass 1 output).

    ``modules`` maps dotted names to *checked* modules (rules may emit
    findings there); ``references`` holds reference-only trees — their
    imports and attribute accesses count as usage, but they are never
    the subject of a finding.
    """

    def __init__(
        self,
        modules: dict[str, ModuleInfo],
        references: dict[str, ModuleInfo],
        package: str | None = None,
    ):
        self.modules = modules
        self.references = references
        self.package = package
        self._module_names = frozenset(modules)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def module(self, name: str) -> ModuleInfo | None:
        """The checked module registered under ``name`` (or ``None``)."""
        return self.modules.get(name)

    def all_modules(self) -> Iterator[ModuleInfo]:
        """Checked modules first, then reference modules."""
        yield from self.modules.values()
        yield from self.references.values()

    def checked_modules(self) -> Iterator[ModuleInfo]:
        """Modules rules may report findings in, in sorted name order."""
        for name in sorted(self.modules):
            yield self.modules[name]

    def modules_importing(self, canonical: str) -> list[ModuleInfo]:
        """Checked modules with any alias resolving to ``canonical``."""
        return [
            info
            for info in self.checked_modules()
            if info.imports_symbol(canonical)
        ]

    def find_defining_module(self, top_level_name: str) -> ModuleInfo | None:
        """The unique checked module binding ``top_level_name`` at top level.

        Returns ``None`` when zero or several modules bind the name —
        callers that need an anchor symbol (a catalog constant, a
        policy table) treat ambiguity as absence.
        """
        owners = [
            info
            for info in self.modules.values()
            if top_level_name in info.top_level_defs
        ]
        return owners[0] if len(owners) == 1 else None

    # ------------------------------------------------------------------
    # Re-export origins and usage
    # ------------------------------------------------------------------

    def export_origin(self, module: str, name: str) -> tuple[str, str]:
        """Follow re-export ``from``-import chains to the defining module.

        ``repro.core`` binding ``Inf2vecModel`` via ``from
        repro.core.inf2vec import Inf2vecModel`` resolves to
        ``("repro.core.inf2vec", "Inf2vecModel")``; a binding that is a
        submodule object resolves to ``(submodule, "")``.  Chains stop
        at modules outside the graph.
        """
        seen: set[tuple[str, str]] = set()
        while (module, name) not in seen:
            seen.add((module, name))
            info = self.modules.get(module)
            if info is None:
                break
            hop = next(
                (
                    edge
                    for edge in info.imports
                    if edge.name is not None and edge.bound == name
                ),
                None,
            )
            if hop is None:
                break
            submodule = f"{hop.module}.{hop.name}"
            if submodule in self.modules:
                return (submodule, "")
            module, name = hop.module, hop.name
        return (module, name)

    def used_origins(self) -> frozenset[tuple[str, str]]:
        """Every symbol origin genuinely consumed somewhere in the project.

        A ``from``-import counts unless it is a re-export (the importer
        lists the bound name in its own ``__all__``); module-alias
        attribute accesses always count; reference modules (tests,
        benchmarks, ...) always count.  Origins are resolved through
        re-export chains, so importing ``repro.Inf2vecModel`` marks the
        ``repro.core.inf2vec`` definition as used.
        """
        used: set[tuple[str, str]] = set()
        for info in self.all_modules():
            reexports = frozenset(info.exports or ()) if info.checked else frozenset()
            for edge in info.imports:
                if edge.name is None or edge.module not in self.modules:
                    continue
                if edge.bound in reexports:
                    continue
                used.add(self.export_origin(edge.module, edge.name))
            for module, attr in info.attribute_uses:
                used.add(self.export_origin(module, attr))
        return frozenset(used)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-ready dump of the graph (the CLI's ``--graph`` output)."""

        def render(info: ModuleInfo) -> dict[str, object]:
            return {
                "path": info.parsed.relative,
                "package": info.is_package,
                "exports": list(info.exports) if info.exports is not None else None,
                "defs": sorted(info.top_level_defs),
                "imports": [
                    {
                        "module": edge.module,
                        "name": edge.name,
                        "bound": edge.bound,
                        "line": edge.lineno,
                    }
                    for edge in info.imports
                ],
            }

        return {
            "package": self.package,
            "modules": {
                name: render(info) for name, info in sorted(self.modules.items())
            },
            "references": sorted(self.references),
        }


@runtime_checkable
class ProjectRule(Protocol):
    """The pass-2 plugin protocol: one cross-file invariant check.

    Like :class:`~repro.analysis.core.Rule` but over the whole
    :class:`ProjectGraph`; suppression comments and the baseline are
    still applied by the runner.
    """

    rule_id: str
    description: str

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        """Yield every violation of this rule across the project."""
        ...


class ProjectAstRule:
    """Convenience base for project rules: shared ``finding`` constructor."""

    rule_id = "abstract-project"
    description = "abstract project rule"

    def finding(
        self, info: ModuleInfo, node: ast.AST | None, message: str
    ) -> Finding:
        """Build a :class:`Finding` in ``info`` located at ``node``."""
        return Finding(
            path=info.parsed.relative,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            rule_id=self.rule_id,
            message=message,
        )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        """Subclasses must override."""
        raise NotImplementedError


def is_project_rule(rule: object) -> bool:
    """Whether ``rule`` implements the pass-2 protocol."""
    return callable(getattr(rule, "check_project", None))


def _build_module(
    parsed: ParsedFile,
    name: str,
    checked: bool,
    module_names: frozenset[str] | None = None,
) -> ModuleInfo:
    # Imported lazily: rules.common lives under the rules package, whose
    # __init__ imports the project rules, which import this module.
    from repro.analysis.rules.common import ImportMap

    is_package = parsed.relative.endswith("__init__.py")
    package_parts = name.split(".") if is_package else name.split(".")[:-1]
    edges = _collect_imports(parsed.tree, package_parts)
    return ModuleInfo(
        name=name,
        parsed=parsed,
        is_package=is_package,
        checked=checked,
        exports=_literal_exports(parsed.tree),
        top_level_defs=_top_level_def_names(parsed.tree),
        imports=edges,
        import_map=ImportMap(parsed.tree),
        attribute_uses=frozenset(),
    )


def _finalize_attribute_uses(
    modules: dict[str, ModuleInfo], references: dict[str, ModuleInfo]
) -> None:
    names = frozenset(modules)
    for info in (*modules.values(), *references.values()):
        info.attribute_uses = _collect_attribute_uses(
            info.parsed.tree, info.imports, names
        )


def build_project_graph(
    root: PathLike,
    reference_roots: Sequence[PathLike] = (),
) -> ProjectGraph:
    """Build the graph for every parseable Python file under ``root``.

    When ``root`` itself is a package (contains ``__init__.py``) its
    directory name becomes the top-level package prefix, so scanning
    ``src/repro`` yields module names ``repro``, ``repro.core...``.
    Files under ``reference_roots`` join the graph as reference-only
    modules.  Unparseable files are skipped here — the per-file pass
    already reports them as ``parse-error`` findings.
    """
    root = Path(root)
    package = root.name if (root / "__init__.py").is_file() else None
    modules: dict[str, ModuleInfo] = {}
    for path in iter_python_files(root):
        relative = path.relative_to(root).as_posix()
        try:
            parsed = _parse_path(path, relative)
        except SyntaxError:
            continue
        name = _module_name_for(relative, package)
        modules[name] = _build_module(parsed, name, checked=True)
    references: dict[str, ModuleInfo] = {}
    for reference_root in reference_roots:
        reference_root = Path(reference_root)
        if not reference_root.is_dir():
            continue
        for path in iter_python_files(reference_root):
            relative = path.relative_to(reference_root).as_posix()
            pseudo = f"{reference_root.name}/{relative}"
            try:
                parsed = _parse_path(path, pseudo)
            except SyntaxError:
                continue
            references[pseudo] = _build_module(parsed, pseudo, checked=False)
    _finalize_attribute_uses(modules, references)
    return ProjectGraph(modules, references, package=package)


def build_project_graph_from_sources(
    sources: Mapping[str, str],
    reference_sources: Mapping[str, str] | None = None,
) -> ProjectGraph:
    """Fixture entry: build a graph from ``{relative path: source}``.

    Paths use POSIX separators and determine module names exactly like
    :func:`build_project_graph` with no package prefix — ``"pkg/a.py"``
    becomes module ``pkg.a``.  Syntax errors raise (fixtures should be
    valid).
    """
    modules: dict[str, ModuleInfo] = {}
    for relative, text in sources.items():
        parsed = parse_source(text, relative)
        name = _module_name_for(relative, package=None)
        modules[name] = _build_module(parsed, name, checked=True)
    references: dict[str, ModuleInfo] = {}
    for relative, text in (reference_sources or {}).items():
        parsed = parse_source(text, relative)
        references[relative] = _build_module(parsed, relative, checked=False)
    _finalize_attribute_uses(modules, references)
    return ProjectGraph(modules, references, package=None)


def run_project_rules(
    graph: ProjectGraph, rules: Sequence[ProjectRule]
) -> list[Finding]:
    """Apply project rules to ``graph`` with suppression filtering.

    Returns the surviving findings sorted by path, line, rule — the
    same contract as :func:`repro.analysis.core.run_analysis`.
    """
    by_path = {info.parsed.relative: info.parsed for info in graph.all_modules()}
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(graph):
            parsed = by_path.get(finding.path)
            if parsed is not None and parsed.is_suppressed(
                finding.rule_id, finding.line
            ):
                continue
            findings.append(finding)
    return sorted(findings)


def analyze_project(
    sources: Mapping[str, str],
    rules: Sequence[ProjectRule],
    reference_sources: Mapping[str, str] | None = None,
) -> list[Finding]:
    """Run project ``rules`` over in-memory fixture ``sources``."""
    graph = build_project_graph_from_sources(sources, reference_sources)
    return run_project_rules(graph, rules)
