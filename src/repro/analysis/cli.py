"""The runner CLI behind ``python -m repro.analysis``.

Exit codes: **0** — clean tree; **1** — findings (each printed as
``path:line: rule-id: message``); **2** — usage error (unknown rule,
bad root, unreadable baseline).

Both passes run by default: the per-file rules walk each file
independently, then the project rules run over the whole-project
graph (symbol table + import graph, see
:mod:`repro.analysis.project`) built from the same cached parses.
Reference trees (``tests``, ``benchmarks``, ``examples``,
``scripts`` next to the scanned root, or ``--reference-root``)
contribute usage edges to the graph but are never checked.

``--graph`` dumps the project graph as JSON instead of running rules.
``--changed-only`` restricts the per-file pass to files changed
against ``--base-ref`` (``git diff --name-only`` plus untracked) and
skips the project pass — cross-file rules need the whole graph, so
pre-commit runs stay sub-second at the cost of deferring project
rules to CI and the pytest guard.

By default the tree's checked-in baseline
(:data:`repro.analysis.baseline.BASELINE_FILENAME`, discovered by
walking up from the scanned root) filters grandfathered findings;
``--no-baseline`` shows everything, ``--write-baseline`` regenerates
the file from the current findings.

This module is one of the sanctioned ``print()`` rendering surfaces
(see the ``no-print`` rule): findings go to stdout, the summary to
stderr, so piped output stays machine-readable.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    baseline_key,
    discover_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.core import Finding, Rule, run_analysis
from repro.analysis.project import (
    ProjectRule,
    build_project_graph,
    is_project_rule,
    run_project_rules,
)
from repro.analysis.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    default_project_rules,
    default_rules,
    get_rule,
)
from repro.errors import ReproError

_JSON_SCHEMA_VERSION = 2

#: Sibling directories that feed usage edges into the project graph.
DEFAULT_REFERENCE_ROOTS = ("tests", "benchmarks", "examples", "scripts")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant checker: enforces the reproducibility, "
            "telemetry, and persistence contracts over the source tree, "
            "per file and across the whole project graph."
        ),
    )
    parser.add_argument(
        "roots",
        nargs="*",
        type=Path,
        help="directories to scan (default: src/repro under the cwd)",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids with descriptions and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--graph",
        action="store_true",
        help="dump the project graph as JSON instead of running rules",
    )
    parser.add_argument(
        "--reference-root",
        action="append",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "directory whose imports count as usage in the project "
            "graph but is never checked (repeatable; default: tests, "
            "benchmarks, examples, scripts next to the first root)"
        ),
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "check only files changed against --base-ref (per-file "
            "rules only; the project pass is skipped)"
        ),
    )
    parser.add_argument(
        "--base-ref",
        default="HEAD",
        metavar="REF",
        help="git ref --changed-only diffs against (default: HEAD)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file (default: nearest {BASELINE_FILENAME} above the root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    return parser


def _select_rules(
    spec: str | None, parser: argparse.ArgumentParser
) -> tuple[list[Rule], list[ProjectRule]]:
    """``(per-file rules, project rules)`` for a ``--rules`` spec."""
    if spec is None:
        return default_rules(), default_project_rules()
    file_rules: list[Rule] = []
    project_rules: list[ProjectRule] = []
    for rule_id in spec.split(","):
        try:
            rule = get_rule(rule_id.strip())
        except KeyError as exc:
            parser.error(str(exc.args[0]))
        if is_project_rule(rule):
            project_rules.append(rule)
        else:
            file_rules.append(rule)
    return file_rules, project_rules


def _default_roots() -> list[Path]:
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    return []


def _reference_roots(args: argparse.Namespace) -> list[Path]:
    if args.reference_root is not None:
        return [root for root in args.reference_root if root.is_dir()]
    return [
        Path(name) for name in DEFAULT_REFERENCE_ROOTS if Path(name).is_dir()
    ]


def _changed_files(base_ref: str) -> frozenset[str] | None:
    """Resolved paths of files changed vs ``base_ref`` plus untracked.

    Returns ``None`` when git is unavailable or the ref does not
    resolve (the caller turns that into a usage error).
    """
    changed: set[str] = set()
    for command in (
        ["git", "diff", "--name-only", base_ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError):
            return None
        changed.update(
            str(Path(line).resolve())
            for line in result.stdout.splitlines()
            if line.strip()
        )
    return frozenset(changed)


def _render_text(
    findings: list[tuple[Path, Finding]], suppressed_by_baseline: int
) -> None:
    for root, finding in findings:
        print(finding.render(prefix=root.as_posix()))
    summary = f"{len(findings)} finding(s)"
    if suppressed_by_baseline:
        summary += f" ({suppressed_by_baseline} baselined)"
    print(summary, file=sys.stderr)


def _render_json(
    findings: list[tuple[Path, Finding]],
    roots: list[Path],
    rules: list[Rule],
    project_rules: list[ProjectRule],
    suppressed_by_baseline: int,
    elapsed: float,
) -> None:
    payload = {
        "version": _JSON_SCHEMA_VERSION,
        "roots": [root.as_posix() for root in roots],
        "rules": [rule.rule_id for rule in rules],
        "project_rules": [rule.rule_id for rule in project_rules],
        "count": len(findings),
        "baselined": suppressed_by_baseline,
        "elapsed_s": round(elapsed, 3),
        "findings": [
            {"root": root.as_posix(), **finding.to_dict()}
            for root, finding in findings
        ],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in (*ALL_RULES, *ALL_PROJECT_RULES):
            print(f"{rule_class.rule_id}: {rule_class.description}")
        return 0

    file_rules, project_rules = _select_rules(args.rules, parser)
    roots = list(args.roots) or _default_roots()
    if not roots:
        parser.error("no roots given and ./src/repro does not exist")
    for root in roots:
        if not root.is_dir():
            parser.error(f"root {root} is not a directory")
    reference_roots = _reference_roots(args)

    if args.graph:
        graphs = {
            root.as_posix(): build_project_graph(
                root, reference_roots=reference_roots
            ).to_dict()
            for root in roots
        }
        print(json.dumps(graphs, indent=2, sort_keys=True))
        return 0

    only: frozenset[str] | None = None
    if args.changed_only:
        only = _changed_files(args.base_ref)
        if only is None:
            parser.error(
                f"--changed-only requires git and a resolvable ref "
                f"(got {args.base_ref!r})"
            )
        project_rules = []

    baseline: frozenset[str] = frozenset()
    baseline_path = args.baseline
    if not args.no_baseline:
        if baseline_path is None:
            baseline_path = discover_baseline(roots[0])
        if baseline_path is not None and not args.write_baseline:
            try:
                baseline = load_baseline(baseline_path)
            except ReproError as exc:
                parser.error(str(exc))

    start = time.perf_counter()
    collected: list[tuple[Path, Finding]] = []
    raw_count = 0
    for root in roots:
        raw = run_analysis(root, file_rules, only=only)
        if project_rules:
            graph = build_project_graph(root, reference_roots=reference_roots)
            raw = sorted([*raw, *run_project_rules(graph, project_rules)])
        raw_count += len(raw)
        collected.extend(
            (root, finding)
            for finding in raw
            if baseline_key(finding) not in baseline
        )
    elapsed = time.perf_counter() - start
    suppressed_by_baseline = raw_count - len(collected)

    if args.write_baseline:
        target = baseline_path or (Path.cwd() / BASELINE_FILENAME)
        save_baseline(target, (finding for _, finding in collected))
        print(
            f"wrote {len(collected)} entr(y/ies) to {target}", file=sys.stderr
        )
        return 0

    if args.format == "json":
        _render_json(
            collected,
            roots,
            file_rules,
            project_rules,
            suppressed_by_baseline,
            elapsed,
        )
    else:
        _render_text(collected, suppressed_by_baseline)
    return 1 if collected else 0
