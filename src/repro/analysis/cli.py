"""The runner CLI behind ``python -m repro.analysis``.

Exit codes: **0** — clean tree; **1** — findings (each printed as
``path:line: rule-id: message``); **2** — usage error (unknown rule,
bad root, unreadable baseline).

By default the tree's checked-in baseline
(:data:`repro.analysis.baseline.BASELINE_FILENAME`, discovered by
walking up from the scanned root) filters grandfathered findings;
``--no-baseline`` shows everything, ``--write-baseline`` regenerates
the file from the current findings.

This module is one of the sanctioned ``print()`` rendering surfaces
(see the ``no-print`` rule): findings go to stdout, the summary to
stderr, so piped output stays machine-readable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    baseline_key,
    discover_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.core import Finding, Rule, run_analysis
from repro.analysis.rules import ALL_RULES, default_rules, get_rule
from repro.errors import ReproError

_JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.analysis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "AST-based invariant checker: enforces the reproducibility, "
            "telemetry, and persistence contracts over the source tree."
        ),
    )
    parser.add_argument(
        "roots",
        nargs="*",
        type=Path,
        help="directories to scan (default: src/repro under the cwd)",
    )
    parser.add_argument(
        "--rules",
        metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list rule ids with descriptions and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file (default: nearest {BASELINE_FILENAME} above the root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    return parser


def _select_rules(spec: str | None, parser: argparse.ArgumentParser) -> list[Rule]:
    if spec is None:
        return default_rules()
    rules: list[Rule] = []
    for rule_id in spec.split(","):
        try:
            rules.append(get_rule(rule_id.strip()))
        except KeyError as exc:
            parser.error(str(exc.args[0]))
    return rules


def _default_roots() -> list[Path]:
    candidate = Path("src") / "repro"
    if candidate.is_dir():
        return [candidate]
    return []


def _render_text(
    findings: list[tuple[Path, Finding]], suppressed_by_baseline: int
) -> None:
    for root, finding in findings:
        print(finding.render(prefix=root.as_posix()))
    summary = f"{len(findings)} finding(s)"
    if suppressed_by_baseline:
        summary += f" ({suppressed_by_baseline} baselined)"
    print(summary, file=sys.stderr)


def _render_json(
    findings: list[tuple[Path, Finding]],
    roots: list[Path],
    rules: list[Rule],
    suppressed_by_baseline: int,
    elapsed: float,
) -> None:
    payload = {
        "version": _JSON_SCHEMA_VERSION,
        "roots": [root.as_posix() for root in roots],
        "rules": [rule.rule_id for rule in rules],
        "count": len(findings),
        "baselined": suppressed_by_baseline,
        "elapsed_s": round(elapsed, 3),
        "findings": [
            {"root": root.as_posix(), **finding.to_dict()}
            for root, finding in findings
        ],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.rule_id}: {rule_class.description}")
        return 0

    rules = _select_rules(args.rules, parser)
    roots = list(args.roots) or _default_roots()
    if not roots:
        parser.error("no roots given and ./src/repro does not exist")
    for root in roots:
        if not root.is_dir():
            parser.error(f"root {root} is not a directory")

    baseline: frozenset[str] = frozenset()
    baseline_path = args.baseline
    if not args.no_baseline:
        if baseline_path is None:
            baseline_path = discover_baseline(roots[0])
        if baseline_path is not None and not args.write_baseline:
            try:
                baseline = load_baseline(baseline_path)
            except ReproError as exc:
                parser.error(str(exc))

    start = time.perf_counter()
    collected: list[tuple[Path, Finding]] = []
    raw_count = 0
    for root in roots:
        raw = run_analysis(root, rules)
        raw_count += len(raw)
        collected.extend(
            (root, finding)
            for finding in raw
            if baseline_key(finding) not in baseline
        )
    elapsed = time.perf_counter() - start
    suppressed_by_baseline = raw_count - len(collected)

    if args.write_baseline:
        target = baseline_path or (Path.cwd() / BASELINE_FILENAME)
        save_baseline(target, (finding for _, finding in collected))
        print(
            f"wrote {len(collected)} entr(y/ies) to {target}", file=sys.stderr
        )
        return 0

    if args.format == "json":
        _render_json(collected, roots, rules, suppressed_by_baseline, elapsed)
    else:
        _render_text(collected, suppressed_by_baseline)
    return 1 if collected else 0
