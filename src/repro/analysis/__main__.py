"""``python -m repro.analysis`` — run the invariant checker."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
