"""``no-wallclock-timing``: durations come from ``perf_counter``.

``time.time()`` is wall-clock: NTP slews, DST, and manual clock
adjustments make intervals derived from it wrong, and benchmark deltas
(BENCH_training.json, fig9) must be monotonic to be comparable.  All
duration measurement uses ``time.perf_counter()`` (see
``repro.utils.timer.Timer``).

The two legitimate *unix-timestamp* call sites — span start times in
``repro/obs/tracing.py`` and run-manifest creation in
``repro/obs/run.py``, where an absolute epoch time is the point — are
annotated with ``# lint: disable=no-wallclock-timing`` at the call
line; any new ``time.time()`` needs the same explicit opt-out.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import AstRule, Finding, ParsedFile
from repro.analysis.rules.common import ImportMap, resolve_call_target


class NoWallclockTimingRule(AstRule):
    """Forbid ``time.time()``; durations must use ``perf_counter``."""

    rule_id = "no-wallclock-timing"
    description = (
        "time.time() is wall-clock and non-monotonic; measure durations "
        "with time.perf_counter() — genuine unix-timestamp sites carry "
        "an explicit '# lint: disable=no-wallclock-timing'"
    )

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        imports = ImportMap(parsed.tree)
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolve_call_target(node, imports) == "time.time":
                yield self.finding(
                    parsed,
                    node,
                    "time.time() for timing; use time.perf_counter() for "
                    "durations (suppress explicitly if an absolute unix "
                    "timestamp is genuinely required)",
                )
