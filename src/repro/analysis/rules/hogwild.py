"""Project rule: hogwild shared-memory write discipline.

Lock-free parallel SGD (DESIGN.md §14) is only correct because every
worker mutates the ``SharedEmbedding`` parameter buffers strictly
in place: ``np.add.at`` scatters, ``+=`` on views, and slice stores
all write through to the shared memory, while *rebinding* one of the
parameter attributes (``emb.source = ...``) or a local alias of one
silently detaches that worker onto a private copy — training still
runs, losses still fall, and the merged model is garbage.  Equally,
taking a lock in the worker hot path would reintroduce the serial
bottleneck hogwild exists to remove.  No per-file walk can see this:
the worker entry point lives in ``core/inf2vec.py`` (behind a lazy
cycle-guard import) while the buffers and coordinator live in
``parallel/`` — so this is a :class:`ProjectRule` over the import
graph.

Scope: every checked module that imports the ``SharedEmbedding``
class, *except* the module defining it (the definition site must
construct and bind the buffers).  Within scope the rule reports:

* plain assignment to a parameter-field attribute
  (``anything.source = ...``) — rebinds the shared buffer;
* rebinding a local name previously bound *from* a parameter field
  (``src = emb.source`` then ``src = other``) in the same function;
* constructing ``threading``/``multiprocessing`` ``Lock``/``RLock``
  or calling ``.acquire()`` — locking in the hogwild path.

In-place forms (``+=`` on attributes or views, subscript stores,
``np.add.at``) are exactly the sanctioned idioms and never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding
from repro.analysis.project import ModuleInfo, ProjectAstRule, ProjectGraph

#: The SharedEmbedding parameter buffers (mirrors
#: ``repro.parallel.shared.PARAMETER_FIELDS``; duplicated literally so
#: the analyzer never imports the code under analysis).
PARAMETER_FIELDS = frozenset({"source", "target", "source_bias", "target_bias"})

#: The class whose importers form the rule's scope.
SHARED_CLASS = "SharedEmbedding"

_LOCK_NAMES = frozenset({"Lock", "RLock"})


def _function_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """Module plus every (async) function, for per-scope alias tracking."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _direct_statements(scope: ast.AST) -> Iterator[ast.stmt]:
    """Statements of ``scope`` without descending into nested functions."""
    stack = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(
                    grandchild
                    for grandchild in ast.walk(child)
                    if isinstance(grandchild, ast.stmt)
                )


class HogwildSafetyRule(ProjectAstRule):
    """Shared-buffer writes only through sanctioned in-place idioms."""

    rule_id = "hogwild-safety"
    description = (
        "modules importing SharedEmbedding must not rebind parameter "
        "buffers or their aliases, and must stay lock-free"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        definer = graph.find_defining_module(SHARED_CLASS)
        if definer is None:
            return
        canonical = f"{definer.name}.{SHARED_CLASS}"
        for info in graph.modules_importing(canonical):
            if info.name == definer.name:
                continue
            yield from self._check_module(info)

    def _check_module(self, info: ModuleInfo) -> Iterator[Finding]:
        yield from self._check_locks(info)
        for scope in _function_scopes(info.parsed.tree):
            yield from self._check_scope(info, scope)

    def _check_scope(self, info: ModuleInfo, scope: ast.AST) -> Iterator[Finding]:
        shared_aliases: set[str] = set()
        for stmt in _direct_statements(scope):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in PARAMETER_FIELDS
                ):
                    yield self.finding(
                        info,
                        stmt,
                        f"plain assignment rebinds shared buffer "
                        f"'.{target.attr}'; use an in-place write "
                        f"(np.add.at, '+=', or a slice store) instead",
                    )
                elif (
                    isinstance(target, ast.Name)
                    and target.id in shared_aliases
                ):
                    yield self.finding(
                        info,
                        stmt,
                        f"'{target.id}' was bound from a shared parameter "
                        f"buffer and is rebound here, detaching it from "
                        f"shared memory",
                    )
            if (
                isinstance(stmt.value, ast.Attribute)
                and stmt.value.attr in PARAMETER_FIELDS
            ):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        shared_aliases.add(target.id)

    def _check_locks(self, info: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(info.parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _LOCK_NAMES:
                resolved = info.import_map.resolve(func.id)
                if resolved and (
                    resolved.startswith("threading.")
                    or resolved.startswith("multiprocessing.")
                ):
                    yield self.finding(
                        info, node, "lock constructed in a hogwild module"
                    )
            elif isinstance(func, ast.Attribute):
                if func.attr in _LOCK_NAMES and isinstance(func.value, ast.Name):
                    base = info.import_map.resolve(func.value.id) or func.value.id
                    if base in ("threading", "multiprocessing"):
                        yield self.finding(
                            info, node, "lock constructed in a hogwild module"
                        )
                elif func.attr == "acquire":
                    yield self.finding(
                        info,
                        node,
                        "'.acquire()' called in a hogwild module; the "
                        "worker hot path must stay lock-free",
                    )
