"""Project rules: bitwise determinism of serving, sketching, training.

Resume-equivalence (DESIGN.md §10) and the serving contract (§12)
both promise *bitwise* reproducibility: a resumed run and a fresh run
produce identical embeddings, and a blocked top-k scan equals the
brute-force scan bit for bit.  Three conventions carry that promise,
and all three are project-wide, not per-file:

* ``np.einsum(..., optimize=False)`` in ``serve``/``sketch`` modules —
  with ``optimize`` unset, einsum may reassociate the contraction
  through BLAS depending on operand shapes, changing float rounding
  between block sizes (``einsum-optimize``);
* array constructors in hot-path modules (``serve``, ``sketch``,
  ``parallel``) must pass an explicit ``dtype`` — platform-dependent
  default widths (Windows ``np.arange`` -> int32) silently change
  checkpoint and index layouts (``explicit-dtype``);
* no iteration over an unordered ``set`` feeding ordered results —
  ``list(set(...))``, ``for x in set(...)`` or a set literal depend on
  hash-iteration order, which varies across runs and Python builds;
  wrap in ``sorted(...)`` instead (``set-iteration-order``).

Scope is resolved by module name segments on the project graph, so the
rules follow the packages however the tree is rooted.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding
from repro.analysis.project import ModuleInfo, ProjectAstRule, ProjectGraph
from repro.analysis.rules.common import resolve_call_target

#: Module-name segments marking the deterministic serving/sketch path.
EINSUM_SCOPE = frozenset({"serve", "sketch"})

#: Segments marking hot-path modules where dtypes must be explicit.
DTYPE_SCOPE = frozenset({"serve", "sketch", "parallel"})

#: Segments marking modules feeding checkpointed / benchmarked results.
SET_ORDER_SCOPE = frozenset({"core", "serve", "sketch", "parallel", "ckpt"})

#: ``numpy`` constructors with platform-dependent default dtypes.
_DTYPE_CONSTRUCTORS = frozenset(
    {
        "numpy.zeros",
        "numpy.ones",
        "numpy.empty",
        "numpy.full",
        "numpy.arange",
        "numpy.fromiter",
        "numpy.frombuffer",
    }
)


def _in_scope(info: ModuleInfo, segments: frozenset[str]) -> bool:
    return not segments.isdisjoint(info.name.split("."))


def _scoped(graph: ProjectGraph, segments: frozenset[str]) -> Iterator[ModuleInfo]:
    for info in graph.checked_modules():
        if _in_scope(info, segments):
            yield info


class EinsumOptimizeRule(ProjectAstRule):
    """``np.einsum`` in serve/sketch must pass ``optimize=False``."""

    rule_id = "einsum-optimize"
    description = (
        "np.einsum in serve/sketch modules must pass optimize=False "
        "for bitwise-stable contraction order"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        for info in _scoped(graph, EINSUM_SCOPE):
            for node in ast.walk(info.parsed.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call_target(node, info.import_map)
                if target != "numpy.einsum":
                    continue
                optimize = next(
                    (kw for kw in node.keywords if kw.arg == "optimize"),
                    None,
                )
                if optimize is None:
                    yield self.finding(
                        info, node, "np.einsum without optimize=False"
                    )
                elif not (
                    isinstance(optimize.value, ast.Constant)
                    and optimize.value.value is False
                ):
                    yield self.finding(
                        info,
                        node,
                        "np.einsum must pass the literal optimize=False",
                    )


class ExplicitDtypeRule(ProjectAstRule):
    """Array constructors in hot-path modules need an explicit dtype."""

    rule_id = "explicit-dtype"
    description = (
        "numpy array constructors in serve/sketch/parallel modules "
        "must pass an explicit dtype"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        for info in _scoped(graph, DTYPE_SCOPE):
            for node in ast.walk(info.parsed.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call_target(node, info.import_map)
                if target not in _DTYPE_CONSTRUCTORS:
                    continue
                if any(kw.arg == "dtype" for kw in node.keywords):
                    continue
                constructor = target.rsplit(".", 1)[1]
                yield self.finding(
                    info,
                    node,
                    f"np.{constructor} without an explicit dtype; default "
                    f"widths are platform-dependent",
                )


class SetIterationOrderRule(ProjectAstRule):
    """No set-iteration-order dependence feeding deterministic results."""

    rule_id = "set-iteration-order"
    description = (
        "no iteration over unordered sets in modules feeding "
        "checkpointed or benchmarked results; wrap in sorted(...)"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        for info in _scoped(graph, SET_ORDER_SCOPE):
            for node in ast.walk(info.parsed.tree):
                yield from self._check_node(info, node)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _check_node(self, info: ModuleInfo, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)) and self._is_set_expr(
            node.iter
        ):
            yield self.finding(
                info,
                node,
                "iterating a set directly depends on hash order; "
                "iterate sorted(...) instead",
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "enumerate")
                and node.args
                and self._is_set_expr(node.args[0])
            ):
                yield self.finding(
                    info,
                    node,
                    f"{func.id}(set(...)) materialises hash order; use "
                    f"sorted(...) instead",
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            for comp in node.generators:
                if self._is_set_expr(comp.iter):
                    yield self.finding(
                        info,
                        node,
                        "comprehension over a set depends on hash order; "
                        "iterate sorted(...) instead",
                    )
