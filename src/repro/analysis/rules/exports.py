"""Project rule: dead ``__all__`` exports.

The ``pinned-api`` per-file rule forces every package init to pin its
public surface in a literal ``__all__`` — but it cannot see whether
anything *consumes* that surface.  An export nobody imports is API the
project promises to keep stable for no one: it rots silently, dodges
every test, and widens the compatibility contract for free.  Deciding
"nobody imports this" is inherently whole-project: importers may pull
the symbol from any re-export layer (``from repro import
Inf2vecModel`` vs. ``from repro.core.inf2vec import Inf2vecModel``
name the same object), and the test/benchmark trees count as genuine
consumers even though they are never checked themselves.

The rule resolves every ``__all__`` entry and every import through
re-export chains to its *origin* (defining module, name) and reports
entries whose origin no other module, test, benchmark, example, or
script imports.  A ``from``-import inside a checked module is only
genuine usage when the importer does not itself re-export the bound
name (listing it in its own ``__all__`` is plumbing, not consumption);
attribute access through a module alias counts; entries binding
submodules (``from . import core``) are structural and skipped.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.core import Finding
from repro.analysis.project import ModuleInfo, ProjectAstRule, ProjectGraph


def _export_lines(tree: ast.Module) -> dict[str, int]:
    """Line of each string element of the ``__all__`` literal."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
                    if isinstance(value, (ast.List, ast.Tuple)):
                        return {
                            element.value: element.lineno
                            for element in value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        }
    return {}


class DeadExportRule(ProjectAstRule):
    """``__all__`` symbols no other module and no test imports."""

    rule_id = "dead-export"
    description = (
        "every __all__ export must be imported by some other module, "
        "test, benchmark, example, or script"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        used = graph.used_origins()
        for info in graph.checked_modules():
            yield from self._check_module(graph, info, used)

    def _check_module(
        self,
        graph: ProjectGraph,
        info: ModuleInfo,
        used: frozenset[tuple[str, str]],
    ) -> Iterator[Finding]:
        if not info.exports:
            return
        lines = _export_lines(info.parsed.tree)
        for name in info.exports:
            origin = graph.export_origin(info.name, name)
            if origin[1] == "":
                continue  # submodule binding: structural, not an API symbol
            if origin in used:
                continue
            line = lines.get(name, 1)
            where = (
                "defined here"
                if origin[0] == info.name
                else f"originating in {origin[0]}"
            )
            yield Finding(
                path=info.parsed.relative,
                line=line,
                rule_id=self.rule_id,
                message=(
                    f"'{name}' ({where}) is exported but no other "
                    f"module and no test imports it"
                ),
            )
