"""``no-global-rng``: every random draw flows through a seeded Generator.

Resume-equivalence (DESIGN.md §10) snapshots the bit-state of the
model's explicit ``numpy.random.Generator`` objects; a single draw
from the *global* NumPy RNG or the stdlib ``random`` module is
invisible to that snapshot and silently breaks bitwise-identical
resume.  This rule therefore forbids, anywhere under ``src/``:

* calls into ``numpy.random`` other than the Generator constructors
  (``default_rng``, ``Generator``, ``SeedSequence``, and the bit
  generators) — so ``np.random.rand``, ``np.random.choice``, and
  especially ``np.random.seed`` are all findings;
* any import of, or call into, the stdlib ``random`` module.

``repro.utils.rng.ensure_rng`` is the blessed way to accept a seed or
Generator at an API boundary.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import AstRule, Finding, ParsedFile
from repro.analysis.rules.common import ImportMap, resolve_call_target

#: Constructors that *produce* explicit Generators — the blessed surface.
ALLOWED_NUMPY_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class NoGlobalRngRule(AstRule):
    """Forbid global ``np.random.*`` / stdlib ``random`` state."""

    rule_id = "no-global-rng"
    description = (
        "all randomness must flow through an explicitly seeded "
        "numpy Generator (repro.utils.rng.ensure_rng); global "
        "np.random.* and stdlib random break resume-equivalence"
    )

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        imports = ImportMap(parsed.tree)
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ImportFrom) and not node.level:
                yield from self._check_import_from(parsed, node)
            elif isinstance(node, ast.Import):
                yield from self._check_import(parsed, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(parsed, node, imports)

    def _check_import_from(
        self, parsed: ParsedFile, node: ast.ImportFrom
    ) -> Iterable[Finding]:
        if node.module == "random" or (node.module or "").startswith("random."):
            yield self.finding(
                parsed,
                node,
                "import from stdlib random; use a seeded numpy Generator "
                "(repro.utils.rng.ensure_rng) instead",
            )
        elif node.module == "numpy.random":
            banned = [
                alias.name
                for alias in node.names
                if alias.name not in ALLOWED_NUMPY_RANDOM
            ]
            if banned:
                yield self.finding(
                    parsed,
                    node,
                    f"import of numpy.random.{{{', '.join(banned)}}}; only the "
                    "Generator constructors (default_rng et al.) are allowed",
                )

    def _check_import(self, parsed: ParsedFile, node: ast.Import) -> Iterable[Finding]:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                yield self.finding(
                    parsed,
                    node,
                    "import of stdlib random; use a seeded numpy Generator "
                    "(repro.utils.rng.ensure_rng) instead",
                )

    def _check_call(
        self, parsed: ParsedFile, node: ast.Call, imports: ImportMap
    ) -> Iterable[Finding]:
        target = resolve_call_target(node, imports)
        if target is None:
            return
        if target.startswith("random."):
            yield self.finding(
                parsed,
                node,
                f"{target}() draws from the global stdlib RNG; thread a "
                "seeded numpy Generator instead",
            )
        elif target.startswith("numpy.random."):
            attr = target[len("numpy.random.") :]
            if "." not in attr and attr not in ALLOWED_NUMPY_RANDOM:
                yield self.finding(
                    parsed,
                    node,
                    f"np.random.{attr}() uses the global NumPy RNG; thread a "
                    "seeded np.random.default_rng Generator instead "
                    "(resume-equivalence snapshots only explicit Generators)",
                )
