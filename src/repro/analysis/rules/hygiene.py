"""Hygiene rules: ``no-bare-except`` and ``no-mutable-default-args``.

Neither encodes a repo-specific contract; both catch Python footguns
that have burned reproducibility efforts before:

* a bare ``except:`` swallows ``KeyboardInterrupt`` / ``SystemExit``
  and can turn a crashed run into a silently-wrong one (``except
  BaseException: ... raise`` as in ``ckpt/atomic.py`` is fine — it is
  explicit and re-raises);
* a mutable default argument (``def f(x, acc=[])``) is shared across
  calls, so results depend on call history — state invisible to the
  checkpoint snapshot.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import AstRule, Finding, ParsedFile

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


class NoBareExceptRule(AstRule):
    """Forbid ``except:`` with no exception type."""

    rule_id = "no-bare-except"
    description = (
        "bare except swallows KeyboardInterrupt/SystemExit; catch a "
        "specific exception type (or an explicit BaseException that "
        "re-raises)"
    )

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    parsed,
                    node,
                    "bare 'except:' hides KeyboardInterrupt and SystemExit; "
                    "name the exception type being handled",
                )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    )


class NoMutableDefaultArgsRule(AstRule):
    """Forbid mutable default argument values."""

    rule_id = "no-mutable-default-args"
    description = (
        "mutable defaults are shared across calls — hidden state that "
        "breaks run-to-run determinism; default to None and build inside"
    )

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        for node in ast.walk(parsed.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield self.finding(
                        parsed,
                        default,
                        f"mutable default argument in '{node.name}' is shared "
                        "across calls; use None and construct per call",
                    )
