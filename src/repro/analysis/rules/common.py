"""Shared AST helpers for the rule suite.

Rules that care about *which module* a call resolves to (``np.random``
vs. a local variable that happens to be called ``random``) need the
file's import aliases.  :class:`ImportMap` collects them in one pass;
:func:`resolve_call_target` turns a call's dotted attribute chain into
a canonical ``module.attr`` string using that map.
"""

from __future__ import annotations

import ast


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class ImportMap:
    """Local alias -> canonical dotted module/object path for one file.

    Covers the spellings that matter for invariant checks::

        import numpy as np          ->  np: numpy
        import numpy.random         ->  numpy: numpy
        import numpy.random as npr  ->  npr: numpy.random
        from numpy import random    ->  random: numpy.random
        from time import time       ->  time: time.time
    """

    def __init__(self, tree: ast.Module):
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the top package.
                        top = alias.name.split(".")[0]
                        self.aliases[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str | None:
        """Canonical path for a local dotted name, or ``None`` if unknown.

        ``np.random.rand`` resolves through the ``np`` alias to
        ``numpy.random.rand``; names whose head is not an import alias
        (locals, parameters) resolve to ``None``.
        """
        head, _, rest = name.partition(".")
        canonical = self.aliases.get(head)
        if canonical is None:
            return None
        return f"{canonical}.{rest}" if rest else canonical


def resolve_call_target(call: ast.Call, imports: ImportMap) -> str | None:
    """Canonical dotted path of a call's callee, or ``None``."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return imports.resolve(name)
