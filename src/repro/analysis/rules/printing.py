"""``no-print``: library code never prints.

Framework port of the original ``scripts/check_no_print.py`` lint
(that script now delegates here).  Library code reports through
``repro.utils.logging`` or ``repro.obs`` so applications control the
output channel; ``print`` is reserved for the designated rendering
surfaces:

* ``cli.py`` — the command-line front end;
* ``viz/ascii.py`` — the ASCII chart renderer;
* ``analysis/cli.py`` — the static-analysis runner's own output;
* ``obs/regress.py`` — the perf-regression gate's report output;
* functions named ``main`` or ``print_*`` under ``experiments/`` —
  each experiment's documented "print the table/figure" contract.

AST-based, so docstrings and identifiers that merely contain the
substring never trigger it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Sequence

from repro.analysis.core import AstRule, Finding, ParsedFile

#: Root-relative files where ``print()`` is the module's purpose.
DEFAULT_ALLOWED_FILES = frozenset(
    {"cli.py", "viz/ascii.py", "analysis/cli.py", "obs/regress.py"}
)

#: Directory whose ``main``/``print_*`` functions may render to stdout.
DEFAULT_RENDERER_DIR = "experiments/"


class _PrintFinder(ast.NodeVisitor):
    """Collect bare ``print(...)`` calls with their enclosing functions."""

    def __init__(self) -> None:
        self.calls: list[tuple[ast.Call, list[str]]] = []
        self._stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.calls.append((node, list(self._stack)))
        self.generic_visit(node)


class NoPrintRule(AstRule):
    """Forbid bare ``print()`` outside the rendering surfaces."""

    rule_id = "no-print"
    description = (
        "library code reports via repro.utils.logging / repro.obs; "
        "print() is reserved for cli.py, viz/ascii.py, analysis/cli.py, "
        "obs/regress.py, and experiments' main/print_* renderers"
    )

    def __init__(
        self,
        allowed_files: Iterable[str] = DEFAULT_ALLOWED_FILES,
        renderer_dir: str = DEFAULT_RENDERER_DIR,
        renderer_names: Sequence[str] = ("main", "print_"),
    ) -> None:
        self.allowed_files = frozenset(allowed_files)
        self.renderer_dir = renderer_dir
        self.renderer_names = tuple(renderer_names)

    def _is_renderer(self, stack: list[str]) -> bool:
        for name in stack:
            for pattern in self.renderer_names:
                if pattern.endswith("_"):
                    if name.startswith(pattern):
                        return True
                elif name == pattern:
                    return True
        return False

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        if parsed.relative in self.allowed_files:
            return
        finder = _PrintFinder()
        finder.visit(parsed.tree)
        in_renderer_dir = parsed.relative.startswith(self.renderer_dir)
        for node, stack in finder.calls:
            if in_renderer_dir and self._is_renderer(stack):
                continue
            yield self.finding(
                parsed,
                node,
                "bare print() call; use repro.utils.logging or repro.obs "
                "so applications control the output channel",
            )
