"""``atomic-write-only``: all persistence goes through ``atomic_output``.

A crash mid-write (SIGKILL, power loss, full disk) must never leave a
truncated file at a final destination — that is the whole contract of
:mod:`repro.ckpt.atomic`.  This rule forbids the raw write surfaces
anywhere under ``src/``:

* ``open(..., "w"/"wb"/"a"/"x")`` (builtin or ``Path.open``),
* ``np.save`` / ``np.savez`` / ``np.savez_compressed`` / ``np.savetxt``,
* ``json.dump`` / ``pickle.dump`` (the to-file variants; ``dumps`` is
  string-producing and fine),
* ``Path.write_text`` / ``Path.write_bytes`` / ``ndarray.tofile``,

**except** when the call sits lexically inside a
``with atomic_output(...)`` block — the temp file being written there
is exactly the sanctioned pattern — or inside ``repro/ckpt/atomic.py``
itself, which implements the primitive.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import AstRule, Finding, ParsedFile
from repro.analysis.rules.common import ImportMap, dotted_name, resolve_call_target

#: Root-relative files that implement the atomic primitive itself.
DEFAULT_ALLOWED_FILES = frozenset({"ckpt/atomic.py"})

#: Module-level functions that persist to a path.
_BANNED_MODULE_CALLS = {
    "numpy.save",
    "numpy.savez",
    "numpy.savez_compressed",
    "numpy.savetxt",
    "json.dump",
    "pickle.dump",
    "marshal.dump",
}

#: Method names that persist to a path regardless of receiver type.
_BANNED_METHODS = frozenset({"write_text", "write_bytes", "tofile"})

_WRITE_MODE_CHARS = frozenset("wax")


def _open_write_mode(call: ast.Call, mode_position: int = 1) -> str | None:
    """The mode string when ``call`` opens a file for writing, else None.

    ``mode_position`` is 1 for builtin ``open(path, mode)`` and 0 for
    the ``Path.open(mode)`` method.
    """
    mode_node: ast.expr | None = None
    if len(call.args) > mode_position:
        mode_node = call.args[mode_position]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        if _WRITE_MODE_CHARS & set(mode_node.value):
            return mode_node.value
    return None


def _is_atomic_output_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] == "atomic_output"


class _WriteFinder(ast.NodeVisitor):
    """Collect raw write calls, tracking ``with atomic_output(...)`` depth."""

    def __init__(self, imports: ImportMap) -> None:
        self.imports = imports
        self.violations: list[tuple[ast.Call, str]] = []
        self._atomic_depth = 0

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        shielded = any(
            _is_atomic_output_call(item.context_expr) for item in node.items
        )
        if shielded:
            self._atomic_depth += 1
        self.generic_visit(node)
        if shielded:
            self._atomic_depth -= 1

    visit_With = _visit_with  # type: ignore[assignment]
    visit_AsyncWith = _visit_with  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        if self._atomic_depth == 0:
            self._classify(node)
        self.generic_visit(node)

    def _classify(self, node: ast.Call) -> None:
        func = node.func
        target = resolve_call_target(node, self.imports)
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _open_write_mode(node)
            if mode is not None:
                self.violations.append((node, f"open(..., {mode!r})"))
            return
        if isinstance(func, ast.Attribute):
            if func.attr == "open" and target != "os.open":
                mode = _open_write_mode(node, mode_position=0)
                if mode is not None:
                    self.violations.append((node, f".open(..., {mode!r})"))
                return
            if func.attr in _BANNED_METHODS:
                self.violations.append((node, f".{func.attr}(...)"))
                return
        if target in _BANNED_MODULE_CALLS:
            self.violations.append((node, f"{target}(...)"))


class AtomicWriteOnlyRule(AstRule):
    """Forbid raw file writes outside ``with atomic_output(...)`` blocks."""

    rule_id = "atomic-write-only"
    description = (
        "persistence must go through repro.ckpt.atomic.atomic_output "
        "(temp file + fsync + os.replace) so a crash never leaves a "
        "truncated file at the destination"
    )

    def __init__(self, allowed_files: Iterable[str] = DEFAULT_ALLOWED_FILES) -> None:
        self.allowed_files = frozenset(allowed_files)

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        if parsed.relative in self.allowed_files:
            return
        imports = ImportMap(parsed.tree)
        finder = _WriteFinder(imports)
        finder.visit(parsed.tree)
        for node, surface in finder.violations:
            yield self.finding(
                parsed,
                node,
                f"{surface} writes non-atomically; wrap the write in "
                "'with repro.ckpt.atomic.atomic_output(path) as tmp:' "
                "(or use atomic_write_text/atomic_write_bytes)",
            )
