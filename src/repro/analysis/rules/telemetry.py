"""Project rule: the telemetry contract against ``repro.obs.catalog``.

A metric name lives in three places — the instrument site, the
exposition, and the regress-gate fnmatch patterns budgeting
``benchmarks/baselines/``.  Drift between them fails silently: a
typo'd counter still counts, it just stops matching its gate.  This
rule pins both ends to the catalog:

* every ``metrics.counter/gauge/histogram/summary(...)`` and
  ``run.span(...)`` site in checked modules must use a name declared
  in ``METRIC_CATALOG`` with the *same instrument kind*, and only
  labels from the declared label set (f-string names become ``*``
  families and must match a declared family);
* every ``MetricPolicy`` pattern in the module defining
  ``DEFAULT_POLICIES`` must fnmatch at least one leaf declared in
  ``GATED_BENCH_LEAVES`` for its report file — a pattern matching
  nothing is a dead gate.

Everything is extracted *statically* (the catalog and the policies are
pure literals by contract), so the analyzer never imports the code
under analysis.  The ``obs`` implementation layer itself (registry,
tracer, exporter pass-throughs taking ``name`` as a variable) is out
of scope, as are non-literal names and non-telemetry receivers that
merely share a method name (``np.histogram``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Iterable, Iterator

from repro.analysis.core import Finding
from repro.analysis.project import ModuleInfo, ProjectAstRule, ProjectGraph
from repro.analysis.rules.common import dotted_name

#: Anchor symbols locating the catalog and the regress policies.
CATALOG_SYMBOL = "METRIC_CATALOG"
LEAVES_SYMBOL = "GATED_BENCH_LEAVES"
POLICIES_SYMBOL = "DEFAULT_POLICIES"

_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram", "summary"})
_MUTATOR_METHODS = frozenset({"inc", "set", "observe", "observe_many", "quantile"})
_NON_LABEL_KWARGS = frozenset({"description"})


@dataclass(frozen=True)
class _DeclaredSpec:
    name: str
    kind: str
    labels: frozenset[str]


def _literal_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _site_name(node: ast.expr) -> str | None:
    """Literal name, or an ``*``-family pattern for an f-string name."""
    literal = _literal_str(node)
    if literal is not None:
        return literal
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _extract_catalog(tree: ast.Module) -> tuple[_DeclaredSpec, ...] | None:
    """Statically read ``METRIC_CATALOG = (MetricSpec(...), ...)``."""
    for node in tree.body:
        if not (
            isinstance(node, (ast.Assign, ast.AnnAssign))
            and any(
                isinstance(t, ast.Name) and t.id == CATALOG_SYMBOL
                for t in (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
            )
        ):
            continue
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        specs: list[_DeclaredSpec] = []
        for element in value.elts:
            if not isinstance(element, ast.Call):
                continue
            args = list(element.args)
            keywords = {kw.arg: kw.value for kw in element.keywords if kw.arg}
            name_node = args[0] if args else keywords.get("name")
            kind_node = args[1] if len(args) > 1 else keywords.get("kind")
            labels_node = args[2] if len(args) > 2 else keywords.get("labels")
            name = _literal_str(name_node) if name_node is not None else None
            kind = _literal_str(kind_node) if kind_node is not None else None
            if name is None or kind is None:
                continue
            labels: frozenset[str] = frozenset()
            if isinstance(labels_node, (ast.Tuple, ast.List)):
                labels = frozenset(
                    label
                    for label in (
                        _literal_str(elt) for elt in labels_node.elts
                    )
                    if label is not None
                )
            specs.append(_DeclaredSpec(name, kind, labels))
        return tuple(specs)
    return None


def _extract_string_dict(
    tree: ast.Module, symbol: str
) -> dict[str, tuple[str, ...]] | None:
    """Read ``symbol = {"file": ("leaf", ...), ...}`` as literals."""
    for node in tree.body:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AnnAssign)
            else []
        )
        if not any(isinstance(t, ast.Name) and t.id == symbol for t in targets):
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        table: dict[str, tuple[str, ...]] = {}
        for key_node, value_node in zip(node.value.keys, node.value.values):
            key = _literal_str(key_node) if key_node is not None else None
            if key is None or not isinstance(value_node, (ast.Tuple, ast.List)):
                continue
            table[key] = tuple(
                leaf
                for leaf in (_literal_str(elt) for elt in value_node.elts)
                if leaf is not None
            )
        return table
    return None


def _extract_policies(
    tree: ast.Module,
) -> dict[str, tuple[tuple[str, ast.Call], ...]] | None:
    """Read ``DEFAULT_POLICIES = {"file": (MetricPolicy("pat", ...), ...)}``.

    Returns pattern strings paired with their call nodes (for finding
    locations).
    """
    for node in tree.body:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
            if isinstance(node, ast.AnnAssign)
            else []
        )
        if not any(
            isinstance(t, ast.Name) and t.id == POLICIES_SYMBOL for t in targets
        ):
            continue
        if not isinstance(node.value, ast.Dict):
            return None
        table: dict[str, tuple[tuple[str, ast.Call], ...]] = {}
        for key_node, value_node in zip(node.value.keys, node.value.values):
            key = _literal_str(key_node) if key_node is not None else None
            if key is None or not isinstance(value_node, (ast.Tuple, ast.List)):
                continue
            patterns: list[tuple[str, ast.Call]] = []
            for element in value_node.elts:
                if not isinstance(element, ast.Call):
                    continue
                args = list(element.args)
                keywords = {
                    kw.arg: kw.value for kw in element.keywords if kw.arg
                }
                pattern_node = args[0] if args else keywords.get("pattern")
                pattern = (
                    _literal_str(pattern_node)
                    if pattern_node is not None
                    else None
                )
                if pattern is not None:
                    patterns.append((pattern, element))
            table[key] = tuple(patterns)
        return table
    return None


class TelemetryContractRule(ProjectAstRule):
    """Instrument sites and gate patterns must resolve in the catalog."""

    rule_id = "telemetry-contract"
    description = (
        "every metric/span name must be declared in the telemetry "
        "catalog with matching kind and labels, and every regress-gate "
        "pattern must match a declared bench leaf"
    )

    def check_project(self, graph: ProjectGraph) -> Iterable[Finding]:
        catalog_module = graph.find_defining_module(CATALOG_SYMBOL)
        specs = (
            _extract_catalog(catalog_module.parsed.tree)
            if catalog_module is not None
            else None
        )
        for info in graph.checked_modules():
            if catalog_module is not None and info.name == catalog_module.name:
                continue
            if "obs" in info.name.split("."):
                continue
            yield from self._check_sites(info, specs)
        yield from self._check_gates(graph, catalog_module)

    # ------------------------------------------------------------------
    # Instrument sites
    # ------------------------------------------------------------------

    def _declared(
        self, specs: tuple[_DeclaredSpec, ...], name: str, kind: str
    ) -> _DeclaredSpec | None:
        for spec in specs:
            if spec.kind != kind:
                continue
            if spec.name == name or fnmatchcase(name, spec.name):
                return spec
        return None

    def _collect_sites(
        self, info: ModuleInfo
    ) -> list[tuple[ast.Call, str, str, frozenset[str]]]:
        """Each instrument/span site once, labels taken from its mutator."""
        sites: list[tuple[ast.Call, str, str, frozenset[str]]] = []
        consumed: set[int] = set()
        bare: list[tuple[ast.Call, str, str, frozenset[str]]] = []
        for node in ast.walk(info.parsed.tree):
            site = self._telemetry_site(info, node)
            if site is None:
                continue
            if site[0] is not node:
                # Mutator-chained: the inner instrument call will also be
                # visited bare by the walk; keep only this labelled view.
                consumed.add(id(site[0]))
                sites.append(site)
            elif isinstance(node.func, ast.Attribute) and node.func.attr in (
                _INSTRUMENT_METHODS
            ):
                bare.append(site)
            else:
                sites.append(site)
        sites.extend(site for site in bare if id(site[0]) not in consumed)
        return sites

    def _check_sites(
        self, info: ModuleInfo, specs: tuple[_DeclaredSpec, ...] | None
    ) -> Iterator[Finding]:
        for call, name, kind, labels in self._collect_sites(info):
            if specs is None:
                yield self.finding(
                    info,
                    call,
                    f"telemetry name '{name}' used but no literal "
                    f"{CATALOG_SYMBOL} module exists in the project",
                )
                continue
            declared = self._declared(specs, name, kind)
            if declared is None:
                wrong_kind = next(
                    (
                        spec
                        for spec in specs
                        if spec.name == name or fnmatchcase(name, spec.name)
                    ),
                    None,
                )
                if wrong_kind is not None:
                    yield self.finding(
                        info,
                        call,
                        f"'{name}' is declared as a {wrong_kind.kind} in "
                        f"the catalog but used as a {kind}",
                    )
                else:
                    yield self.finding(
                        info,
                        call,
                        f"{kind} name '{name}' is not declared in "
                        f"{CATALOG_SYMBOL}",
                    )
                continue
            undeclared = labels - declared.labels
            if undeclared:
                listed = ", ".join(sorted(undeclared))
                yield self.finding(
                    info,
                    call,
                    f"label(s) {listed} on '{name}' are not in the "
                    f"declared label set",
                )

    def _telemetry_site(
        self, info: ModuleInfo, node: ast.AST
    ) -> tuple[ast.Call, str, str, frozenset[str]] | None:
        """``(call, name, kind, labels)`` when ``node`` is a site."""
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            return None
        method = node.func.attr
        if method == "span":
            name = _site_name(node.args[0]) if node.args else None
            if name is None:
                return None
            labels = frozenset(kw.arg for kw in node.keywords if kw.arg)
            return (node, name, "span", labels)
        if method in _MUTATOR_METHODS and isinstance(node.func.value, ast.Call):
            inner = node.func.value
            site = self._instrument_call(info, inner)
            if site is None:
                return None
            name, kind = site
            labels = frozenset(
                kw.arg
                for kw in node.keywords
                if kw.arg and kw.arg not in _NON_LABEL_KWARGS
            )
            return (inner, name, kind, labels)
        if method in _INSTRUMENT_METHODS:
            site = self._instrument_call(info, node)
            if site is None:
                return None
            name, kind = site
            return (node, name, kind, frozenset())
        return None

    def _instrument_call(
        self, info: ModuleInfo, node: ast.Call
    ) -> tuple[str, str] | None:
        if not isinstance(node.func, ast.Attribute):
            return None
        method = node.func.attr
        if method not in _INSTRUMENT_METHODS:
            return None
        receiver = dotted_name(node.func.value)
        if receiver is not None:
            resolved = info.import_map.resolve(receiver)
            if resolved is not None and resolved.split(".")[0] in (
                "numpy",
                "scipy",
            ):
                return None
        name = _site_name(node.args[0]) if node.args else None
        if name is None:
            return None
        return (name, method)

    # ------------------------------------------------------------------
    # Regress-gate patterns
    # ------------------------------------------------------------------

    def _check_gates(
        self, graph: ProjectGraph, catalog_module: ModuleInfo | None
    ) -> Iterator[Finding]:
        policies_module = graph.find_defining_module(POLICIES_SYMBOL)
        if policies_module is None:
            return
        policies = _extract_policies(policies_module.parsed.tree)
        if not policies:
            return
        leaves = (
            _extract_string_dict(catalog_module.parsed.tree, LEAVES_SYMBOL)
            if catalog_module is not None
            else None
        ) or {}
        for report, patterns in policies.items():
            declared = leaves.get(report)
            for pattern, call in patterns:
                if declared is None:
                    yield self.finding(
                        policies_module,
                        call,
                        f"regress policies gate '{report}' but "
                        f"{LEAVES_SYMBOL} declares no leaves for it",
                    )
                    continue
                if not any(
                    fnmatchcase(leaf, pattern) or fnmatchcase(pattern, leaf)
                    for leaf in declared
                ):
                    yield self.finding(
                        policies_module,
                        call,
                        f"gate pattern '{pattern}' for {report} matches "
                        f"no leaf declared in {LEAVES_SYMBOL} (dead gate "
                        f"or typo)",
                    )
