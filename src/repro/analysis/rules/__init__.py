"""The rule registry: every shipped invariant check, by id.

Each rule encodes one of this repository's machine-enforced contracts
(see DESIGN.md "Coding invariants").  :data:`ALL_RULES` is the
canonical per-file ordering; :data:`ALL_PROJECT_RULES` lists the
cross-file rules that run over the :class:`~repro.analysis.project.
ProjectGraph` in pass 2.  The CLI and the pytest guard both run the
union.
"""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.api import PinnedApiRule
from repro.analysis.rules.determinism import (
    EinsumOptimizeRule,
    ExplicitDtypeRule,
    SetIterationOrderRule,
)
from repro.analysis.rules.exports import DeadExportRule
from repro.analysis.rules.hogwild import HogwildSafetyRule
from repro.analysis.rules.hygiene import NoBareExceptRule, NoMutableDefaultArgsRule
from repro.analysis.rules.persistence import AtomicWriteOnlyRule
from repro.analysis.rules.printing import NoPrintRule
from repro.analysis.rules.rng import NoGlobalRngRule
from repro.analysis.rules.telemetry import TelemetryContractRule
from repro.analysis.rules.timing import NoWallclockTimingRule

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "AtomicWriteOnlyRule",
    "DeadExportRule",
    "EinsumOptimizeRule",
    "ExplicitDtypeRule",
    "HogwildSafetyRule",
    "NoBareExceptRule",
    "NoGlobalRngRule",
    "NoMutableDefaultArgsRule",
    "NoPrintRule",
    "NoWallclockTimingRule",
    "PinnedApiRule",
    "SetIterationOrderRule",
    "TelemetryContractRule",
    "default_project_rules",
    "default_rules",
    "get_rule",
]

#: Every shipped per-file rule class, in canonical run order.
ALL_RULES: tuple[type, ...] = (
    NoGlobalRngRule,
    NoPrintRule,
    AtomicWriteOnlyRule,
    NoWallclockTimingRule,
    PinnedApiRule,
    NoBareExceptRule,
    NoMutableDefaultArgsRule,
)

#: Every shipped project (cross-file) rule class, in canonical order.
ALL_PROJECT_RULES: tuple[type, ...] = (
    HogwildSafetyRule,
    EinsumOptimizeRule,
    ExplicitDtypeRule,
    SetIterationOrderRule,
    TelemetryContractRule,
    DeadExportRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped per-file rule, in canonical order."""
    return [rule_class() for rule_class in ALL_RULES]


def default_project_rules() -> list:
    """Fresh instances of every shipped project rule, in canonical order."""
    return [rule_class() for rule_class in ALL_PROJECT_RULES]


def get_rule(rule_id: str) -> Rule:
    """Instantiate the rule (per-file or project) registered under ``rule_id``.

    Raises ``KeyError`` listing the known ids when the id is unknown.
    """
    for rule_class in (*ALL_RULES, *ALL_PROJECT_RULES):
        if rule_class.rule_id == rule_id:
            return rule_class()
    known = ", ".join(
        rule_class.rule_id for rule_class in (*ALL_RULES, *ALL_PROJECT_RULES)
    )
    raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
