"""The rule registry: every shipped invariant check, by id.

Each rule encodes one of this repository's machine-enforced contracts
(see DESIGN.md "Coding invariants"); :data:`ALL_RULES` is the
canonical ordering the CLI and the pytest guard both run.
"""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.api import PinnedApiRule
from repro.analysis.rules.hygiene import NoBareExceptRule, NoMutableDefaultArgsRule
from repro.analysis.rules.persistence import AtomicWriteOnlyRule
from repro.analysis.rules.printing import NoPrintRule
from repro.analysis.rules.rng import NoGlobalRngRule
from repro.analysis.rules.timing import NoWallclockTimingRule

__all__ = [
    "ALL_RULES",
    "AtomicWriteOnlyRule",
    "NoBareExceptRule",
    "NoGlobalRngRule",
    "NoMutableDefaultArgsRule",
    "NoPrintRule",
    "NoWallclockTimingRule",
    "PinnedApiRule",
    "default_rules",
    "get_rule",
]

#: Every shipped rule class, in canonical run order.
ALL_RULES: tuple[type, ...] = (
    NoGlobalRngRule,
    NoPrintRule,
    AtomicWriteOnlyRule,
    NoWallclockTimingRule,
    PinnedApiRule,
    NoBareExceptRule,
    NoMutableDefaultArgsRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, in canonical order."""
    return [rule_class() for rule_class in ALL_RULES]


def get_rule(rule_id: str) -> Rule:
    """Instantiate the rule registered under ``rule_id``.

    Raises ``KeyError`` listing the known ids when the id is unknown.
    """
    for rule_class in ALL_RULES:
        if rule_class.rule_id == rule_id:
            return rule_class()
    known = ", ".join(rule_class.rule_id for rule_class in ALL_RULES)
    raise KeyError(f"unknown rule {rule_id!r}; known rules: {known}")
