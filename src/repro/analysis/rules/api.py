"""``pinned-api``: ``__all__`` is accurate wherever it is declared.

``tests/test_api_surface.py`` treats each public package's ``__all__``
as a compatibility contract (and pins ``repro.ckpt`` /
``repro.analysis`` exactly).  That contract is only meaningful if
``__all__`` itself is trustworthy, so this rule checks, per file:

* every package ``__init__.py`` declares ``__all__`` (the packages are
  exactly the ``PUBLIC_MODULES`` the API-surface test imports — the
  guard test cross-checks the two lists);
* ``__all__`` is a *literal* list/tuple of unique strings, so it is
  statically auditable;
* every listed name is actually bound at module top level (a stale
  entry would make ``from repro.x import *`` raise);
* every public (non-underscore) top-level ``def``/``class`` appears in
  ``__all__`` — a public definition missing from the declared surface
  is an undocumented API.

Modules that do not declare ``__all__`` (and are not package inits)
are out of scope: their surface is defined by their package's re-export.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import AstRule, Finding, ParsedFile


def _literal_strings(node: ast.expr) -> list[str] | None:
    """The string elements of a literal list/tuple, else ``None``."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    values: list[str] = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant) and isinstance(element.value, str)
        ):
            return None
        values.append(element.value)
    return values


def _top_level_bindings(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module top level, and whether ``import *`` appears."""
    bound: set[str] = set()
    has_star = False
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    has_star = True
                else:
                    bound.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        bound.add(name_node.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bound.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (TYPE_CHECKING, optional deps).
            inner, star = _top_level_bindings(
                ast.Module(body=list(ast.iter_child_nodes(node)), type_ignores=[])
            )
            bound |= inner
            has_star = has_star or star
    return bound, has_star


def _find_all_assignment(tree: ast.Module) -> ast.Assign | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return node
    return None


class PinnedApiRule(AstRule):
    """``__all__`` must exist (package inits), be literal, and be accurate."""

    rule_id = "pinned-api"
    description = (
        "every package __init__ declares a literal __all__ whose entries "
        "are bound at top level and which covers every public def/class "
        "(the API-surface tests pin against it)"
    )

    def check(self, parsed: ParsedFile) -> Iterable[Finding]:
        tree = parsed.tree
        assignment = _find_all_assignment(tree)
        is_package_init = parsed.relative.endswith("__init__.py")
        if assignment is None:
            if is_package_init:
                yield Finding(
                    path=parsed.relative,
                    line=1,
                    rule_id=self.rule_id,
                    message=(
                        "package __init__ lacks __all__; the public surface "
                        "must be declared (tests/test_api_surface.py pins it)"
                    ),
                )
            return
        exported = _literal_strings(assignment.value)
        if exported is None:
            yield self.finding(
                parsed,
                assignment,
                "__all__ must be a literal list/tuple of strings so the "
                "public surface is statically auditable",
            )
            return
        duplicates = sorted({name for name in exported if exported.count(name) > 1})
        if duplicates:
            yield self.finding(
                parsed,
                assignment,
                f"__all__ lists duplicate entries: {', '.join(duplicates)}",
            )
        bound, has_star = _top_level_bindings(tree)
        if not has_star:
            missing = [name for name in exported if name not in bound]
            if missing:
                yield self.finding(
                    parsed,
                    assignment,
                    "__all__ lists names never bound at top level: "
                    f"{', '.join(sorted(missing))}",
                )
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not node.name.startswith("_") and node.name not in exported:
                    yield self.finding(
                        parsed,
                        node,
                        f"public {type(node).__name__.replace('Def', '').lower()} "
                        f"'{node.name}' is missing from __all__ (either export "
                        "it or rename it with a leading underscore)",
                    )
