"""repro.analysis — AST-based invariant checker for this repository.

PRs 1–3 introduced contracts that used to exist only as prose: bitwise
-identical checkpoint/resume requires every RNG draw to flow through
an explicitly seeded ``numpy`` Generator, persistence must go through
``repro.ckpt.atomic.atomic_output``, durations come from
``perf_counter``, and library code never prints.  This package makes
those contracts machine-enforced: a plugin-based static-analysis
framework (per-file ``ast`` walk with a shared parse cache,
:class:`Finding` records, ``# lint: disable=<rule>`` suppression
comments, and a checked-in baseline for grandfathered findings) plus
the rule suite encoding each invariant — see
:data:`repro.analysis.rules.ALL_RULES` and DESIGN.md
"Coding invariants".

Since the subsystems grew cross-file contracts (hogwild write
discipline, serving determinism, the telemetry catalog), the checker
runs a second pass: :mod:`repro.analysis.project` builds a
whole-project symbol table and import graph from the same cached
parses, and :data:`repro.analysis.rules.ALL_PROJECT_RULES` checks
resolved symbols across module boundaries.

Run it locally::

    PYTHONPATH=src python -m repro.analysis            # scan src/repro
    python -m repro.analysis --list-rules              # what is enforced
    python -m repro.analysis --format json src/repro   # machine-readable

The pytest guard (``tests/test_analysis_guard.py``) runs the full
suite over ``src/`` on every test run, and CI runs it as a separate
job, so a violation fails the build with a ``file:line`` finding.
"""

from repro.analysis.baseline import (
    BASELINE_FILENAME,
    baseline_key,
    discover_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.cli import main
from repro.analysis.core import (
    PARSE_ERROR_RULE,
    AstRule,
    Finding,
    ParsedFile,
    Rule,
    analyze_source,
    iter_python_files,
    parse_source,
    run_analysis,
)
from repro.analysis.project import (
    ModuleInfo,
    ProjectAstRule,
    ProjectGraph,
    ProjectRule,
    analyze_project,
    build_project_graph,
    build_project_graph_from_sources,
    run_project_rules,
)
from repro.analysis.rules import (
    ALL_PROJECT_RULES,
    ALL_RULES,
    default_project_rules,
    default_rules,
    get_rule,
)

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "AstRule",
    "BASELINE_FILENAME",
    "Finding",
    "ModuleInfo",
    "PARSE_ERROR_RULE",
    "ParsedFile",
    "ProjectAstRule",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "analyze_project",
    "analyze_source",
    "baseline_key",
    "build_project_graph",
    "build_project_graph_from_sources",
    "default_project_rules",
    "default_rules",
    "discover_baseline",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "main",
    "parse_source",
    "run_analysis",
    "save_baseline",
]
