"""Inf2vec wrapped in the common :class:`InfluenceModel` interface.

The core implementation lives in :mod:`repro.core.inf2vec`; this thin
adapter lets the experiment harness treat Inf2vec — and its
local-context-only ablation Inf2vec-L (Table IV, ``alpha = 1.0``) —
exactly like every baseline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.base import EmbeddingModel
from repro.core.embeddings import InfluenceEmbedding
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.utils.rng import SeedLike


class Inf2vecMethod(EmbeddingModel):
    """Inf2vec as an evaluable method.

    Parameters
    ----------
    config:
        Full :class:`Inf2vecConfig`; defaults to the paper's settings.
    seed:
        RNG seed for context generation and SGD.
    """

    name = "Inf2vec"

    def __init__(self, config: Inf2vecConfig | None = None, seed: SeedLike = None):
        self.config = config if config is not None else Inf2vecConfig()
        self._model = Inf2vecModel(self.config, seed=seed)

    def fit(self, graph: SocialGraph, log: ActionLog) -> "Inf2vecMethod":
        self._model.fit(graph, log)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._model.is_fitted

    def embedding(self) -> InfluenceEmbedding:
        self._require_fitted()
        return self._model.embedding

    @property
    def model(self) -> Inf2vecModel:
        """The underlying trainer (loss history, etc.)."""
        return self._model


class Inf2vecLocalMethod(Inf2vecMethod):
    """Inf2vec-L: the Table IV ablation using only local influence context.

    Forces the component weight to ``alpha = 1.0`` so the entire
    context budget goes to the random walk and no global
    user-similarity samples are drawn.
    """

    name = "Inf2vec-L"

    def __init__(self, config: Inf2vecConfig | None = None, seed: SeedLike = None):
        base = config if config is not None else Inf2vecConfig()
        forced = replace(base, context=replace(base.context, alpha=1.0))
        super().__init__(forced, seed=seed)
