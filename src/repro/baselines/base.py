"""Common interface for all evaluated influence-learning methods.

Every method in the paper's Tables II–III — DE, ST, EM, Emb-IC, MF,
Node2vec, and Inf2vec itself — is wrapped as an
:class:`InfluenceModel`: ``fit(graph, log)`` learns the parameters and
``predictor(...)`` returns an object implementing the
:class:`repro.core.prediction.InfluencePredictor` protocol used by the
evaluation tasks.

IC-based methods (DE, ST, EM, Emb-IC) implement
:meth:`EdgeProbabilityModel.edge_probabilities` and inherit an
:class:`~repro.core.prediction.ICPredictor`; latent models (MF,
Node2vec, Inf2vec) implement :meth:`EmbeddingModel.embedding` and
inherit an :class:`~repro.core.prediction.EmbeddingPredictor`.
"""

from __future__ import annotations

import abc

from repro.core.aggregation import Aggregator
from repro.core.embeddings import InfluenceEmbedding
from repro.core.prediction import EmbeddingPredictor, ICPredictor, InfluencePredictor
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import NotFittedError
from repro.utils.rng import SeedLike


class InfluenceModel(abc.ABC):
    """Base class for every evaluated method.

    Attributes
    ----------
    name:
        Short method name used in result tables (``"DE"``, ``"ST"``,
        ``"EM"``, ``"Emb-IC"``, ``"MF"``, ``"Node2vec"``,
        ``"Inf2vec"``).
    """

    name: str = "model"

    @abc.abstractmethod
    def fit(self, graph: SocialGraph, log: ActionLog) -> "InfluenceModel":
        """Learn the model parameters from a graph + training log."""

    @abc.abstractmethod
    def predictor(self, **kwargs) -> InfluencePredictor:
        """Return a fitted predictor for the evaluation tasks."""

    @property
    @abc.abstractmethod
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(f"{self.name} has not been fitted yet")

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"


class EdgeProbabilityModel(InfluenceModel):
    """Base for IC-based methods that learn a ``P_uv`` per social edge."""

    @abc.abstractmethod
    def edge_probabilities(self) -> EdgeProbabilities:
        """The learned per-edge probability table."""

    def predictor(
        self, num_runs: int = 1000, seed: SeedLike = None, **_ignored
    ) -> ICPredictor:
        """Eq. 8 activation + Monte-Carlo diffusion predictor.

        Parameters
        ----------
        num_runs:
            Monte-Carlo simulations per diffusion query (5,000 in the
            paper; configurable because it dominates Table III cost).
        seed:
            RNG seed for the simulations.
        """
        self._require_fitted()
        return ICPredictor(self.edge_probabilities(), num_runs=num_runs, seed=seed)


class EmbeddingModel(InfluenceModel):
    """Base for latent-representation methods exposing ``(S, T, b, b̃)``."""

    @abc.abstractmethod
    def embedding(self) -> InfluenceEmbedding:
        """The learned representation parameters."""

    def predictor(
        self, aggregator: str | Aggregator = "ave", **_ignored
    ) -> EmbeddingPredictor:
        """Eq. 7 predictor with the requested aggregation function."""
        self._require_fitted()
        return EmbeddingPredictor(self.embedding(), aggregator=aggregator)
