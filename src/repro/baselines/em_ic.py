"""EM — expectation–maximisation learning of IC probabilities (Saito et al. [2]).

Under the Independent Cascade model, an adoption of ``v`` in episode
``i`` is explained by its set ``B_iv`` of in-neighbours that activated
strictly earlier: the event fires with probability
``1 - prod_{u in B_iv} (1 - p_uv)``.  A non-adoption with active
in-neighbours is a joint failure ``prod (1 - p_uv)``.  Saito et al.
maximise the resulting likelihood by EM:

* **E-step** — responsibility of ``u`` for the adoption of ``v`` in
  episode ``i``:

  .. math:: \\gamma^i_{uv} = p_{uv} \\, / \\,
            \\bigl(1 - \\prod_{u' \\in B_{iv}} (1 - p_{u'v})\\bigr)

* **M-step** — ``p_uv`` becomes the mean responsibility over all
  trials of the edge (successful episodes contribute ``gamma``, failed
  trials contribute 0).

The implementation flattens all (adoption-case, candidate-influencer)
incidences into parallel arrays once, so every EM iteration is a few
grouped numpy operations rather than Python-level graph walks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import EdgeProbabilityModel
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import TrainingError
from repro.utils.logging import get_logger, log_epoch_progress
from repro.utils.validation import check_positive_int, check_probability

logger = get_logger("baselines.em_ic")

_EPSILON = 1e-9


@dataclass
class _TrialData:
    """Flattened incidence structure shared by all EM iterations."""

    # One row per (positive adoption case, candidate influencer edge).
    incidence_case: np.ndarray
    incidence_edge: np.ndarray
    num_cases: int
    # Per-edge totals: positive trials + failed trials.
    trials: np.ndarray


class EMModel(EdgeProbabilityModel):
    """The EM baseline for the IC model.

    Parameters
    ----------
    max_iterations:
        EM iteration cap (the paper observes convergence in 10–20).
    tolerance:
        Early stop when the max absolute probability change drops
        below this.
    initial_probability:
        Starting value for every edge with at least one trial.
    """

    name = "EM"

    def __init__(
        self,
        max_iterations: int = 20,
        tolerance: float = 1e-4,
        initial_probability: float = 0.1,
    ):
        self.max_iterations = check_positive_int("max_iterations", max_iterations)
        if tolerance < 0:
            raise TrainingError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = float(tolerance)
        self.initial_probability = check_probability(
            "initial_probability", initial_probability
        )
        if self.initial_probability == 0.0:
            raise TrainingError("initial_probability must be > 0 for EM to move")
        self._probabilities: EdgeProbabilities | None = None
        self._iterations_run = 0

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------

    @staticmethod
    def _edge_index(graph: SocialGraph) -> dict[tuple[int, int], int]:
        return {
            (int(u), int(v)): idx
            for idx, (u, v) in enumerate(graph.edge_array())
        }

    def _collect_trials(
        self, graph: SocialGraph, log: ActionLog
    ) -> _TrialData:
        edge_index = self._edge_index(graph)
        incidence_case: list[int] = []
        incidence_edge: list[int] = []
        failed = np.zeros(graph.num_edges, dtype=np.int64)
        num_cases = 0

        for episode in log:
            activation_order: dict[int, int] = {
                int(u): k for k, u in enumerate(episode.users)
            }
            # Positive cases: one per adoption with earlier-active friends.
            for user in episode.users:
                user = int(user)
                influencers = [
                    int(f)
                    for f in graph.in_neighbors(user)
                    if int(f) in activation_order
                    and activation_order[int(f)] < activation_order[user]
                ]
                if not influencers:
                    continue
                for friend in influencers:
                    incidence_case.append(num_cases)
                    incidence_edge.append(edge_index[(friend, user)])
                num_cases += 1
            # Failed trials: adopters' followers that never adopted.
            adopters = set(activation_order)
            for adopter in adopters:
                for follower in graph.out_neighbors(adopter):
                    follower = int(follower)
                    if follower not in adopters:
                        failed[edge_index[(adopter, follower)]] += 1

        incidence_case_arr = np.asarray(incidence_case, dtype=np.int64)
        incidence_edge_arr = np.asarray(incidence_edge, dtype=np.int64)
        trials = failed.astype(np.float64)
        if incidence_edge_arr.size:
            np.add.at(trials, incidence_edge_arr, 1.0)
        return _TrialData(
            incidence_case=incidence_case_arr,
            incidence_edge=incidence_edge_arr,
            num_cases=num_cases,
            trials=trials,
        )

    # ------------------------------------------------------------------
    # EM loop
    # ------------------------------------------------------------------

    def fit(self, graph: SocialGraph, log: ActionLog) -> "EMModel":
        """Run EM to convergence on the training log."""
        data = self._collect_trials(graph, log)
        probabilities = np.zeros(graph.num_edges, dtype=np.float64)
        has_trials = data.trials > 0
        probabilities[has_trials] = self.initial_probability

        self._iterations_run = 0
        for iteration in range(self.max_iterations):
            started = time.perf_counter()
            updated = self._em_step(probabilities, data)
            delta = float(np.max(np.abs(updated - probabilities))) if updated.size else 0.0
            probabilities = updated
            self._iterations_run = iteration + 1
            log_epoch_progress(
                logger,
                iteration,
                self.max_iterations,
                elapsed=time.perf_counter() - started,
                max_delta=f"{delta:.6g}",
            )
            if delta < self.tolerance:
                break

        self._probabilities = EdgeProbabilities(graph, probabilities)
        return self

    @staticmethod
    def _em_step(probabilities: np.ndarray, data: _TrialData) -> np.ndarray:
        success_sum = np.zeros_like(probabilities)
        if data.incidence_edge.size:
            p_k = probabilities[data.incidence_edge]
            # Per-case joint failure probability prod(1 - p).
            log_failure = np.zeros(data.num_cases, dtype=np.float64)
            np.add.at(
                log_failure,
                data.incidence_case,
                np.log1p(-np.clip(p_k, 0.0, 1.0 - _EPSILON)),
            )
            activation = 1.0 - np.exp(log_failure)
            activation = np.maximum(activation, _EPSILON)
            responsibilities = p_k / activation[data.incidence_case]
            responsibilities = np.clip(responsibilities, 0.0, 1.0)
            np.add.at(success_sum, data.incidence_edge, responsibilities)
        with np.errstate(invalid="ignore", divide="ignore"):
            updated = np.where(
                data.trials > 0, success_sum / data.trials, 0.0
            )
        return np.clip(updated, 0.0, 1.0)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._probabilities is not None

    @property
    def iterations_run(self) -> int:
        """Number of EM iterations executed by the last :meth:`fit`."""
        return self._iterations_run

    def edge_probabilities(self) -> EdgeProbabilities:
        self._require_fitted()
        assert self._probabilities is not None
        return self._probabilities
