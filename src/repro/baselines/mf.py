"""MF — user–user matrix factorisation with BPR (Rendle et al. [30]).

The paper's pure interest-similarity baseline: the implicit-feedback
matrix entry ``R_uv`` is the number of actions users ``u`` and ``v``
both performed; Bayesian Personalised Ranking factorises it so that
co-acting pairs score higher than non-co-acting ones:

.. math:: \\max \\sum_{(u, v^+, v^-)} \\ln \\sigma(x_{uv^+} - x_{uv^-})
          - \\lambda \\lVert \\Theta \\rVert^2

with ``x_{uv} = P_u \\cdot Q_v``.  The learned factors are exposed as a
standard :class:`~repro.core.embeddings.InfluenceEmbedding` (zero
biases) so the Eq. 7 evaluation path is identical to Inf2vec's — the
paper's "MF only reflects the global user similarity" comparator.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.special import expit

from repro.baselines.base import EmbeddingModel
from repro.core.embeddings import InfluenceEmbedding
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import TrainingError
from repro.utils.logging import get_logger, log_epoch_progress
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int

logger = get_logger("baselines.mf")


class MFModel(EmbeddingModel):
    """The MF baseline: BPR over the user–user co-action matrix.

    Parameters
    ----------
    dim:
        Latent dimensionality.
    epochs:
        BPR epochs; each epoch samples every observed positive pair
        once (in random order) with a fresh negative.
    learning_rate:
        SGD step size.
    regularization:
        L2 coefficient ``lambda``.
    max_pairs_per_episode:
        Co-action pairs grow quadratically with episode size; episodes
        beyond this cap contribute a uniform sample of their pairs.
    seed:
        RNG seed for initialisation and sampling.
    """

    name = "MF"

    def __init__(
        self,
        dim: int = 16,
        epochs: int = 10,
        learning_rate: float = 0.05,
        regularization: float = 0.01,
        max_pairs_per_episode: int = 10_000,
        seed: SeedLike = None,
    ):
        self.dim = check_positive_int("dim", dim)
        self.epochs = check_positive_int("epochs", epochs)
        self.learning_rate = check_positive("learning_rate", learning_rate)
        if regularization < 0:
            raise TrainingError(
                f"regularization must be >= 0, got {regularization}"
            )
        self.regularization = float(regularization)
        self.max_pairs_per_episode = check_positive_int(
            "max_pairs_per_episode", max_pairs_per_episode
        )
        self._rng = ensure_rng(seed)
        self._embedding: InfluenceEmbedding | None = None
        self._positive_sets: list[set[int]] | None = None

    # ------------------------------------------------------------------
    # Co-action extraction
    # ------------------------------------------------------------------

    def _co_action_pairs(self, log: ActionLog) -> np.ndarray:
        """All (sampled) ordered co-action pairs as an ``(m, 2)`` array."""
        pairs: list[tuple[int, int]] = []
        for episode in log:
            users = episode.users
            size = users.shape[0]
            if size < 2:
                continue
            total = size * (size - 1)
            if total <= self.max_pairs_per_episode:
                for u in users:
                    for v in users:
                        if u != v:
                            pairs.append((int(u), int(v)))
            else:
                picks = self._rng.integers(size, size=(self.max_pairs_per_episode, 2))
                for a, b in picks:
                    if a != b:
                        pairs.append((int(users[a]), int(users[b])))
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(pairs, dtype=np.int64)

    # ------------------------------------------------------------------
    # BPR training
    # ------------------------------------------------------------------

    def fit(self, graph: SocialGraph, log: ActionLog) -> "MFModel":
        """Learn the factors with BPR; the social graph is unused."""
        num_users = graph.num_nodes
        pairs = self._co_action_pairs(log)
        source = self._rng.normal(scale=0.1, size=(num_users, self.dim))
        target = self._rng.normal(scale=0.1, size=(num_users, self.dim))

        positive_sets: list[set[int]] = [set() for _ in range(num_users)]
        for u, v in pairs:
            positive_sets[u].add(int(v))
        self._positive_sets = positive_sets

        if pairs.shape[0] == 0:
            logger.warning("MF found no co-action pairs; factors stay random")
            self._embedding = InfluenceEmbedding(
                source, target, np.zeros(num_users), np.zeros(num_users)
            )
            return self

        lr = self.learning_rate
        reg = self.regularization
        for epoch in range(self.epochs):
            started = time.perf_counter()
            loss = 0.0
            updates = 0
            order = self._rng.permutation(pairs.shape[0])
            negatives = self._rng.integers(num_users, size=pairs.shape[0])
            for row, raw_negative in zip(order, negatives):
                u, pos = int(pairs[row, 0]), int(pairs[row, 1])
                neg = int(raw_negative)
                if neg in positive_sets[u] or neg == u:
                    continue  # skip accidental positives
                x_upos = source[u] @ target[pos]
                x_uneg = source[u] @ target[neg]
                gradient_weight = expit(-(x_upos - x_uneg))
                # BPR loss -log sigma(x_upos - x_uneg); sigma(x) is
                # 1 - gradient_weight, already in hand.
                loss -= math.log(max(1.0 - gradient_weight, 1e-12))
                updates += 1
                grad_u = gradient_weight * (target[pos] - target[neg]) - reg * source[u]
                grad_pos = gradient_weight * source[u] - reg * target[pos]
                grad_neg = -gradient_weight * source[u] - reg * target[neg]
                source[u] += lr * grad_u
                target[pos] += lr * grad_pos
                target[neg] += lr * grad_neg
            log_epoch_progress(
                logger,
                epoch,
                self.epochs,
                loss=loss / max(updates, 1),
                elapsed=time.perf_counter() - started,
            )

        self._embedding = InfluenceEmbedding(
            source, target, np.zeros(num_users), np.zeros(num_users)
        )
        return self

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._embedding is not None

    def embedding(self) -> InfluenceEmbedding:
        self._require_fitted()
        assert self._embedding is not None
        return self._embedding

    def co_action_count(self, user: int) -> int:
        """Number of distinct co-actors observed for ``user`` in training."""
        self._require_fitted()
        assert self._positive_sets is not None
        return len(self._positive_sets[int(user)])
