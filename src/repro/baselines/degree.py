"""DE — the degree-based baseline.

Sets ``P_uv = 1 / indegree(v)`` for every edge, ignoring the action log
entirely.  This weighting is the classic default of the influence-
maximisation literature (Kempe et al. [1]); the paper includes it to
show that a purely structural heuristic cannot learn influence
(Table II: AUC ≈ 0.41–0.48, i.e. at or below random).
"""

from __future__ import annotations

from repro.baselines.base import EdgeProbabilityModel
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities


class DegreeModel(EdgeProbabilityModel):
    """The DE baseline: ``P_uv = 1 / indegree(v)``."""

    name = "DE"

    def __init__(self) -> None:
        self._probabilities: EdgeProbabilities | None = None

    def fit(self, graph: SocialGraph, log: ActionLog) -> "DegreeModel":
        """Fill the probability table; the action log is unused."""
        in_degrees = graph.in_degrees()

        def probability(source: int, target: int) -> float:
            # Every edge's target has in-degree >= 1 (the edge itself).
            return 1.0 / float(in_degrees[target])

        self._probabilities = EdgeProbabilities.from_function(graph, probability)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._probabilities is not None

    def edge_probabilities(self) -> EdgeProbabilities:
        self._require_fitted()
        assert self._probabilities is not None
        return self._probabilities
