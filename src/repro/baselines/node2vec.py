"""Node2vec — network embedding with biased random walks (Grover & Leskovec [13]).

The paper's pure network-structure baseline.  Node2vec simulates
second-order random walks controlled by a return parameter ``p`` and an
in-out parameter ``q``:

* stepping back to the previous node is weighted ``1/p``,
* stepping to a node adjacent to the previous node is weighted ``1``,
* stepping further away is weighted ``1/q``,

then trains skip-gram with negative sampling over sliding windows of
the walks.  We reuse the library's SGNS machinery
(:class:`repro.core.inf2vec.Inf2vecModel` with biases disabled): the
skip-gram "input" vectors become the source embedding and the "output"
vectors the target embedding, so node2vec flows through the identical
Eq. 7 evaluation path as the other latent models.

Walks follow *out*-edges of the directed social graph; a walk ends
early at sink nodes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import EmbeddingModel
from repro.core.context import ContextConfig, InfluenceContext
from repro.core.embeddings import InfluenceEmbedding
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.utils.logging import get_logger
from repro.utils.rng import RandomState, SeedLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int

logger = get_logger("baselines.node2vec")


def biased_walk(
    graph: SocialGraph,
    start: int,
    length: int,
    p: float,
    q: float,
    rng: RandomState,
) -> list[int]:
    """One node2vec second-order random walk (may end early at sinks)."""
    walk = [int(start)]
    while len(walk) < length:
        current = walk[-1]
        neighbors = graph.out_neighbors(current)
        if neighbors.shape[0] == 0:
            break
        if len(walk) == 1:
            walk.append(int(neighbors[rng.integers(neighbors.shape[0])]))
            continue
        previous = walk[-2]
        weights = np.empty(neighbors.shape[0], dtype=np.float64)
        for k, candidate in enumerate(neighbors):
            candidate = int(candidate)
            if candidate == previous:
                weights[k] = 1.0 / p
            elif graph.has_edge(previous, candidate):
                weights[k] = 1.0
            else:
                weights[k] = 1.0 / q
        weights /= weights.sum()
        walk.append(int(neighbors[rng.choice(neighbors.shape[0], p=weights)]))
    return walk


def walk_contexts(walk: list[int], window: int) -> list[InfluenceContext]:
    """Sliding-window skip-gram contexts from one walk."""
    contexts: list[InfluenceContext] = []
    for index, center in enumerate(walk):
        lo = max(0, index - window)
        hi = min(len(walk), index + window + 1)
        neighbors = tuple(
            walk[k] for k in range(lo, hi) if k != index
        )
        if neighbors:
            contexts.append(
                InfluenceContext(
                    user=center, item=-1, local=neighbors, global_=()
                )
            )
    return contexts


class Node2vecModel(EmbeddingModel):
    """The Node2vec baseline.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    walks_per_node, walk_length, window:
        Walk-corpus shape (node2vec defaults are 10/80/10; the smaller
        defaults here match the scaled experiments).
    p, q:
        Return and in-out bias parameters (1.0/1.0 reduces to DeepWalk).
    epochs, learning_rate, num_negatives:
        SGNS training settings.
    seed:
        RNG seed for walks and training.
    """

    name = "Node2vec"

    def __init__(
        self,
        dim: int = 16,
        walks_per_node: int = 5,
        walk_length: int = 20,
        window: int = 5,
        p: float = 1.0,
        q: float = 1.0,
        epochs: int = 3,
        learning_rate: float = 0.025,
        num_negatives: int = 5,
        seed: SeedLike = None,
    ):
        self.dim = check_positive_int("dim", dim)
        self.walks_per_node = check_positive_int("walks_per_node", walks_per_node)
        self.walk_length = check_positive_int("walk_length", walk_length)
        self.window = check_positive_int("window", window)
        self.p = check_positive("p", p)
        self.q = check_positive("q", q)
        self.epochs = check_positive_int("epochs", epochs)
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.num_negatives = check_positive_int("num_negatives", num_negatives)
        self._rng = ensure_rng(seed)
        self._embedding: InfluenceEmbedding | None = None

    def generate_walks(self, graph: SocialGraph) -> list[list[int]]:
        """The full walk corpus: ``walks_per_node`` walks from each node."""
        walks: list[list[int]] = []
        nodes = np.arange(graph.num_nodes)
        for _ in range(self.walks_per_node):
            self._rng.shuffle(nodes)
            for node in nodes:
                walk = biased_walk(
                    graph, int(node), self.walk_length, self.p, self.q, self._rng
                )
                if len(walk) > 1:
                    walks.append(walk)
        return walks

    def fit(self, graph: SocialGraph, log: ActionLog) -> "Node2vecModel":
        """Walk, window, and train SGNS; the action log is unused."""
        walks = self.generate_walks(graph)
        contexts: list[InfluenceContext] = []
        for walk in walks:
            contexts.extend(walk_contexts(walk, self.window))
        logger.debug(
            "node2vec: %d walks -> %d contexts", len(walks), len(contexts)
        )
        trainer_config = Inf2vecConfig(
            dim=self.dim,
            context=ContextConfig(length=2 * self.window),
            learning_rate=self.learning_rate,
            num_negatives=self.num_negatives,
            epochs=self.epochs,
            use_biases=False,
        )
        trainer = Inf2vecModel(trainer_config, seed=self._rng)
        trainer.fit_contexts(contexts, num_users=graph.num_nodes)
        self._embedding = trainer.embedding
        return self

    @property
    def is_fitted(self) -> bool:
        return self._embedding is not None

    def embedding(self) -> InfluenceEmbedding:
        self._require_fitted()
        assert self._embedding is not None
        return self._embedding
