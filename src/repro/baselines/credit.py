"""CD — the Credit Distribution model (Goyal, Bonchi, Lakshmanan, VLDB'11).

Reference [21] of the paper, discussed in Section IV-A as the closest
prior attempt at exploiting higher-order propagation: *"they propose a
credit distribution model to assign influence in propagation network.
However, they only exploit first-order and second-order influence
propagation.  With random walk process, our method can capture
higher-order propagation."*  Implementing CD makes that comparison
runnable.

For each action ``a`` and each activation of ``v`` with prior-active
friends ``B_v(a)``, every ``u ∈ B_v(a)`` receives *direct credit*
``γ_uv(a) = 1 / |B_v(a)|``.  Credit then propagates backwards through
the action's propagation DAG:

.. math:: Γ_{uw}(a) = γ_{uw}(a) + Σ_v γ_{uv}(a) Γ_{vw}(a)

truncated at ``max_depth`` hops (2 in the original evaluation).  The
total credit ``κ_{uv} = Σ_a Γ_{uv}(a) / A_v`` (normalised by the
target's action count) estimates how much of ``v``'s behaviour ``u``
explains; prediction sums credits over the active set, capped at 1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.baselines.base import InfluenceModel
from repro.core.pairs import extract_episode_pairs
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import EvaluationError, NotFittedError
from repro.utils.validation import check_positive_int


class CreditDistributionPredictor:
    """Score candidates by summed (capped) influence credit."""

    def __init__(
        self,
        credit: dict[tuple[int, int], float],
        outgoing: dict[int, list[tuple[int, float]]],
        num_users: int,
        max_depth: int,
    ):
        self._credit = credit
        self._outgoing = outgoing
        self._num_users = num_users
        self._max_depth = max_depth

    def activation_score(
        self, candidate: int, active_friends: Sequence[int]
    ) -> float:
        """``min(1, Σ_{u in S_v} κ_uv)`` — CD's marginal-influence sum."""
        if len(active_friends) == 0:
            raise EvaluationError(
                "activation_score requires at least one active friend"
            )
        candidate = int(candidate)
        total = sum(
            self._credit.get((int(u), candidate), 0.0) for u in active_friends
        )
        return min(1.0, total)

    def diffusion_scores(self, seeds: Sequence[int]) -> np.ndarray:
        """Propagate credit forward from the seeds up to ``max_depth``."""
        if len(seeds) == 0:
            raise EvaluationError("diffusion_scores requires at least one seed")
        scores = np.zeros(self._num_users)
        frontier = {int(s): 1.0 for s in seeds}
        for _ in range(self._max_depth):
            next_frontier: dict[int, float] = defaultdict(float)
            for user, weight in frontier.items():
                for target, kappa in self._outgoing.get(user, ()):  # noqa: B905
                    contribution = weight * kappa
                    scores[target] += contribution
                    next_frontier[target] += contribution
            if not next_frontier:
                break
            frontier = dict(next_frontier)
        np.minimum(scores, 1.0, out=scores)
        scores[list({int(s) for s in seeds})] = 1.0
        return scores


class CreditDistributionModel(InfluenceModel):
    """The CD baseline.

    Parameters
    ----------
    max_depth:
        How many hops credit propagates through each action's DAG
        (2 in the original paper — the limitation Inf2vec's random
        walks remove).
    """

    name = "CD"

    def __init__(self, max_depth: int = 2):
        self.max_depth = check_positive_int("max_depth", max_depth)
        self._credit: dict[tuple[int, int], float] | None = None
        self._outgoing: dict[int, list[tuple[int, float]]] | None = None
        self._num_users = 0

    def fit(self, graph: SocialGraph, log: ActionLog) -> "CreditDistributionModel":
        """Accumulate propagated credit over every episode."""
        raw_credit: dict[tuple[int, int], float] = defaultdict(float)
        action_counts = log.user_action_counts()

        for episode in log:
            pairs = extract_episode_pairs(graph, episode)
            if pairs.shape[0] == 0:
                continue
            # Direct credit: 1 / |B_v| per influencer of each adoption.
            influencer_counts: dict[int, int] = defaultdict(int)
            for _u, v in pairs:
                influencer_counts[int(v)] += 1
            direct: dict[tuple[int, int], float] = {
                (int(u), int(v)): 1.0 / influencer_counts[int(v)]
                for u, v in pairs
            }
            # Backward propagation through the episode DAG, truncated.
            parents: dict[int, list[int]] = defaultdict(list)
            for u, v in pairs:
                parents[int(v)].append(int(u))

            total: dict[tuple[int, int], float] = dict(direct)
            frontier = dict(direct)
            for _ in range(self.max_depth - 1):
                extended: dict[tuple[int, int], float] = defaultdict(float)
                for (mid, target), credit in frontier.items():
                    for grand in parents.get(mid, ()):  # noqa: B905
                        edge_credit = direct.get((grand, mid), 0.0)
                        if edge_credit > 0.0:
                            extended[(grand, target)] += edge_credit * credit
                if not extended:
                    break
                for key, credit in extended.items():
                    total[key] = total.get(key, 0.0) + credit
                frontier = dict(extended)

            for (u, v), credit in total.items():
                raw_credit[(u, v)] += credit

        self._credit = {
            (u, v): credit / action_counts[v]
            for (u, v), credit in raw_credit.items()
            if action_counts[v] > 0
        }
        outgoing: dict[int, list[tuple[int, float]]] = defaultdict(list)
        for (u, v), kappa in self._credit.items():
            outgoing[u].append((v, kappa))
        self._outgoing = dict(outgoing)
        self._num_users = graph.num_nodes
        return self

    @property
    def is_fitted(self) -> bool:
        return self._credit is not None

    def credit(self, source: int, target: int) -> float:
        """Learned influence credit ``κ_uv`` (0 when never observed)."""
        self._require_fitted()
        assert self._credit is not None
        return self._credit.get((int(source), int(target)), 0.0)

    def predictor(self, **_ignored) -> CreditDistributionPredictor:
        self._require_fitted()
        assert self._credit is not None and self._outgoing is not None
        return CreditDistributionPredictor(
            self._credit, self._outgoing, self._num_users, self.max_depth
        )

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"CreditDistributionModel(max_depth={self.max_depth}, {state})"
