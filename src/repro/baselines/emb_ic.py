"""Emb-IC — the embedded cascade model of Bourigault et al. [10].

The state-of-the-art representation baseline in the paper.  Each user
has a *sender* vector ``w_u`` and a *receiver* vector ``z_v`` in a
``d``-dimensional Euclidean space, and the IC transmission probability
is a function of their distance:

.. math:: P_{uv} = \\sigma\\bigl(b - \\lVert w_u - z_v \\rVert^2\\bigr)

with a learned global offset ``b``.  Following the original paper, the
potential influencers of an adoption are *all earlier adopters of the
cascade* — Emb-IC does not consult the social graph (the limitation
Inf2vec's authors highlight), instead creating a link ``(u1, u2)``
whenever ``u1`` acts before ``u2``.

Training interleaves, as in Saito et al.'s EM:

* **E-step** — responsibility of each earlier adopter for each
  adoption under the current probabilities;
* **M-step** — gradient ascent of the expected complete-data
  log-likelihood with respect to the embeddings (the original work
  uses the same EM-with-gradient-inner-loop scheme, which is why the
  paper reports it as markedly slower than Inf2vec).

Failed transmissions are handled by sampling non-adopters per cascade,
the standard stochastic approximation for the otherwise ``O(|V|)``
negative term.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.special import expit

from repro.baselines.base import EdgeProbabilityModel
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import TrainingError
from repro.utils.logging import get_logger, log_epoch_progress
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive, check_positive_int

logger = get_logger("baselines.emb_ic")

_EPSILON = 1e-9


class EmbICModel(EdgeProbabilityModel):
    """The Emb-IC baseline.

    Parameters
    ----------
    dim:
        Embedding dimensionality ``d``.
    em_iterations:
        Outer EM iterations.
    gradient_epochs:
        Inner gradient passes per M-step.
    learning_rate:
        M-step SGD step size.
    max_influencers:
        Cap on how many of the most recent earlier adopters are
        considered potential influencers of an adoption (keeps the
        all-predecessors link set tractable on long cascades).
    negatives_per_case:
        Sampled non-adopters per positive adoption case, modelling the
        failed-transmission term (ignored in exhaustive mode).
    exhaustive_failures:
        When true, enumerate the failed-transmission term exactly as
        the published algorithm does — every (adopter, non-adopter)
        pair of every cascade — instead of sampling it.  This is the
        configuration whose per-iteration cost Fig 9 measures; the
        sampled default is this library's CI-friendly approximation.
    seed:
        RNG seed for initialisation and negative sampling.
    """

    name = "Emb-IC"

    def __init__(
        self,
        dim: int = 16,
        em_iterations: int = 5,
        gradient_epochs: int = 3,
        learning_rate: float = 0.05,
        max_influencers: int = 20,
        negatives_per_case: int = 3,
        exhaustive_failures: bool = False,
        seed: SeedLike = None,
    ):
        self.dim = check_positive_int("dim", dim)
        self.em_iterations = check_positive_int("em_iterations", em_iterations)
        self.gradient_epochs = check_positive_int("gradient_epochs", gradient_epochs)
        self.learning_rate = check_positive("learning_rate", learning_rate)
        self.max_influencers = check_positive_int("max_influencers", max_influencers)
        self.negatives_per_case = check_positive_int(
            "negatives_per_case", negatives_per_case
        )
        self.exhaustive_failures = bool(exhaustive_failures)
        self._rng = ensure_rng(seed)
        self._sender: np.ndarray | None = None
        self._receiver: np.ndarray | None = None
        self._offset: float = 0.0
        self._graph: SocialGraph | None = None

    # ------------------------------------------------------------------
    # Training-data extraction
    # ------------------------------------------------------------------

    def _collect_cases(
        self, log: ActionLog
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Flatten positive incidences and sampled failed trials.

        Returns ``(pos_case, pos_sender, pos_receiver, failed_pairs,
        num_cases)`` where ``failed_pairs`` is an ``(m, 2)`` array of
        (sender, non-adopter) samples.
        """
        pos_case: list[int] = []
        pos_sender: list[int] = []
        pos_receiver: list[int] = []
        failed: list[tuple[int, int]] = []
        num_cases = 0
        num_users = log.num_users

        for episode in log:
            users = [int(u) for u in episode.users]
            adopters = set(users)
            for position, user in enumerate(users):
                if position == 0:
                    continue
                start = max(0, position - self.max_influencers)
                influencers = users[start:position]
                for influencer in influencers:
                    pos_case.append(num_cases)
                    pos_sender.append(influencer)
                    pos_receiver.append(user)
                num_cases += 1
                if not self.exhaustive_failures:
                    # Sampled failed transmissions from the same influencers.
                    for _ in range(self.negatives_per_case):
                        candidate = int(self._rng.integers(num_users))
                        if candidate not in adopters:
                            sender = influencers[
                                int(self._rng.integers(len(influencers)))
                            ]
                            failed.append((sender, candidate))
            if self.exhaustive_failures:
                # The published model's failure term: every adopter
                # failed to transmit to every user who never adopted.
                non_adopters = [
                    v for v in range(num_users) if v not in adopters
                ]
                for sender in users:
                    for candidate in non_adopters:
                        failed.append((sender, candidate))

        failed_arr = (
            np.asarray(failed, dtype=np.int64)
            if failed
            else np.empty((0, 2), dtype=np.int64)
        )
        return (
            np.asarray(pos_case, dtype=np.int64),
            np.asarray(pos_sender, dtype=np.int64),
            np.asarray(pos_receiver, dtype=np.int64),
            failed_arr,
            num_cases,
        )

    # ------------------------------------------------------------------
    # Probability and gradients
    # ------------------------------------------------------------------

    def _pair_logits(self, senders: np.ndarray, receivers: np.ndarray) -> np.ndarray:
        assert self._sender is not None and self._receiver is not None
        diff = self._sender[senders] - self._receiver[receivers]
        return self._offset - np.einsum("ij,ij->i", diff, diff)

    def probability(self, source: int, target: int) -> float:
        """``P_uv`` from the learned embeddings, for any user pair."""
        self._require_fitted()
        logits = self._pair_logits(
            np.asarray([int(source)]), np.asarray([int(target)])
        )
        return float(expit(logits[0]))

    def _gradient_update(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        """One SGD sweep of the weighted cross-entropy towards ``targets``."""
        assert self._sender is not None and self._receiver is not None
        lr = self.learning_rate
        order = self._rng.permutation(senders.shape[0])
        batch = 256
        for start in range(0, order.shape[0], batch):
            idx = order[start : start + batch]
            s = senders[idx]
            r = receivers[idx]
            logits = self._pair_logits(s, r)
            error = targets[idx] - expit(logits)  # dL/dlogit
            diff = self._sender[s] - self._receiver[r]
            # dlogit/dw_u = -2 diff ; dlogit/dz_v = +2 diff
            np.add.at(self._sender, s, lr * (error[:, None] * (-2.0 * diff)))
            np.add.at(self._receiver, r, lr * (error[:, None] * (2.0 * diff)))
            self._offset += lr * float(error.mean())

    # ------------------------------------------------------------------
    # EM loop
    # ------------------------------------------------------------------

    def fit(self, graph: SocialGraph, log: ActionLog) -> "EmbICModel":
        """Learn the embedded cascade model from the training log."""
        if log.num_users > graph.num_nodes:
            raise TrainingError(
                "action log user universe exceeds the social graph"
            )
        self._graph = graph
        num_users = graph.num_nodes
        self._sender = self._rng.normal(
            scale=0.1, size=(num_users, self.dim)
        )
        self._receiver = self._rng.normal(
            scale=0.1, size=(num_users, self.dim)
        )
        self._offset = 0.0

        pos_case, pos_sender, pos_receiver, failed, num_cases = self._collect_cases(
            log
        )
        if num_cases == 0:
            logger.warning("Emb-IC found no multi-adopter cascades to train on")
            return self

        failed_targets = np.zeros(failed.shape[0], dtype=np.float64)
        for iteration in range(self.em_iterations):
            started = time.perf_counter()
            # E-step: responsibilities under current probabilities.
            probs = expit(self._pair_logits(pos_sender, pos_receiver))
            log_failure = np.zeros(num_cases, dtype=np.float64)
            np.add.at(
                log_failure,
                pos_case,
                np.log1p(-np.clip(probs, 0.0, 1.0 - _EPSILON)),
            )
            activation = np.maximum(1.0 - np.exp(log_failure), _EPSILON)
            responsibilities = np.clip(probs / activation[pos_case], 0.0, 1.0)

            # M-step: fit embeddings to responsibilities + failures.
            senders = np.concatenate([pos_sender, failed[:, 0]])
            receivers = np.concatenate([pos_receiver, failed[:, 1]])
            targets = np.concatenate([responsibilities, failed_targets])
            for _ in range(self.gradient_epochs):
                self._gradient_update(senders, receivers, targets)
            log_epoch_progress(
                logger,
                iteration,
                self.em_iterations,
                elapsed=time.perf_counter() - started,
                mean_responsibility=f"{float(responsibilities.mean()):.4f}",
            )
        return self

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._sender is not None and self._graph is not None

    def edge_probabilities(self) -> EdgeProbabilities:
        """Materialise ``P_uv`` over the social graph's edges.

        Emb-IC itself is graph-free, but diffusion simulation and the
        Eq. 8 evaluation operate on the social substrate, so the
        embedding-induced probabilities are evaluated on its edges.
        """
        self._require_fitted()
        assert self._graph is not None
        edge_array = self._graph.edge_array()
        if edge_array.shape[0] == 0:
            return EdgeProbabilities(self._graph, np.empty(0))
        logits = self._pair_logits(edge_array[:, 0], edge_array[:, 1])
        return EdgeProbabilities(self._graph, expit(logits))

    def representations(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sender, receiver)`` embedding matrices (Fig 6 input)."""
        self._require_fitted()
        assert self._sender is not None and self._receiver is not None
        return self._sender.copy(), self._receiver.copy()
