"""ST — the static maximum-likelihood model of Goyal et al. [3].

Estimates each edge's influence probability by co-occurrence counting:

.. math::

    P_{uv} = A_{u2v} / A_u

where ``A_{u2v}`` counts actions that ``u`` performed before their
follower ``v`` (successful influence attempts) and ``A_u`` counts all
actions ``u`` performed (trials).  This is the "static (Bernoulli)"
model in Goyal et al.'s taxonomy — simple, fast, and a strong baseline
in the paper's Tables II–III.

A Laplace-style smoothing option is provided (off by default to match
the paper) because the raw MLE assigns probability 0 to every edge
without an observed propagation — precisely the sparsity failure mode
Inf2vec targets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import EdgeProbabilityModel
from repro.core.pairs import extract_episode_pairs
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import TrainingError


class StaticModel(EdgeProbabilityModel):
    """The ST baseline: ``P_uv = A_{u2v} / A_u``.

    Parameters
    ----------
    smoothing:
        Additive smoothing ``P_uv = (A_{u2v} + smoothing) /
        (A_u + 2 * smoothing)``; 0 reproduces the paper's raw MLE.
    """

    name = "ST"

    def __init__(self, smoothing: float = 0.0):
        if smoothing < 0:
            raise TrainingError(f"smoothing must be >= 0, got {smoothing}")
        self.smoothing = float(smoothing)
        self._probabilities: EdgeProbabilities | None = None
        self._success_counts: dict[tuple[int, int], int] | None = None
        self._trial_counts: np.ndarray | None = None

    def fit(self, graph: SocialGraph, log: ActionLog) -> "StaticModel":
        """Count successes per edge and trials per user over ``log``."""
        successes: dict[tuple[int, int], int] = {}
        trials = np.zeros(graph.num_nodes, dtype=np.int64)
        for episode in log:
            trials[episode.users] += 1
            for source, target in extract_episode_pairs(graph, episode):
                key = (int(source), int(target))
                successes[key] = successes.get(key, 0) + 1

        smoothing = self.smoothing

        def probability(source: int, target: int) -> float:
            success = successes.get((source, target), 0)
            trial = int(trials[source])
            numerator = success + smoothing
            denominator = trial + 2.0 * smoothing
            if denominator == 0:
                return 0.0
            return min(1.0, numerator / denominator)

        self._probabilities = EdgeProbabilities.from_function(graph, probability)
        self._success_counts = successes
        self._trial_counts = trials
        return self

    @property
    def is_fitted(self) -> bool:
        return self._probabilities is not None

    def edge_probabilities(self) -> EdgeProbabilities:
        self._require_fitted()
        assert self._probabilities is not None
        return self._probabilities

    def success_count(self, source: int, target: int) -> int:
        """``A_{u2v}`` for one edge (0 when never observed)."""
        self._require_fitted()
        assert self._success_counts is not None
        return self._success_counts.get((int(source), int(target)), 0)

    def trial_count(self, user: int) -> int:
        """``A_u`` — total actions performed by ``user`` in training."""
        self._require_fitted()
        assert self._trial_counts is not None
        return int(self._trial_counts[int(user)])
