"""Every method evaluated in the paper's Tables II–III.

The registry in :func:`make_method` builds any method by its table name
(``"DE"``, ``"ST"``, ``"EM"``, ``"Emb-IC"``, ``"MF"``, ``"Node2vec"``,
``"Inf2vec"``, ``"Inf2vec-L"``), which is how the experiment pipelines
assemble their method grids.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.baselines.base import EdgeProbabilityModel, EmbeddingModel, InfluenceModel
from repro.baselines.credit import CreditDistributionModel
from repro.baselines.degree import DegreeModel
from repro.baselines.em_ic import EMModel
from repro.baselines.emb_ic import EmbICModel
from repro.baselines.inf2vec_method import Inf2vecLocalMethod, Inf2vecMethod
from repro.baselines.mf import MFModel
from repro.baselines.node2vec import Node2vecModel
from repro.baselines.static import StaticModel
from repro.errors import TrainingError

_REGISTRY: Mapping[str, Callable[..., InfluenceModel]] = {
    "cd": CreditDistributionModel,
    "de": DegreeModel,
    "st": StaticModel,
    "em": EMModel,
    "emb-ic": EmbICModel,
    "mf": MFModel,
    "node2vec": Node2vecModel,
    "inf2vec": Inf2vecMethod,
    "inf2vec-l": Inf2vecLocalMethod,
}

#: Canonical method order of the paper's tables.
METHOD_ORDER = ("DE", "ST", "EM", "Emb-IC", "MF", "Node2vec", "Inf2vec")


def make_method(name: str, **kwargs) -> InfluenceModel:
    """Instantiate a method by its paper table name (case-insensitive)."""
    key = name.strip().lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise TrainingError(
            f"unknown method {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "EdgeProbabilityModel",
    "EmbeddingModel",
    "InfluenceModel",
    "CreditDistributionModel",
    "DegreeModel",
    "StaticModel",
    "EMModel",
    "EmbICModel",
    "MFModel",
    "Node2vecModel",
    "Inf2vecMethod",
    "Inf2vecLocalMethod",
    "METHOD_ORDER",
    "make_method",
]
