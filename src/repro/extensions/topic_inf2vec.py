"""Topic-aware Inf2vec — the paper's first future-work direction.

Section VI: *"users' social behaviors are influenced by other factors,
such as topical features.  It is interesting to develop some methods to
model the topic-aware influence propagation."*

This extension implements the natural topic-aware variant:

1. items are clustered into ``num_topics`` topics by k-means over their
   *adopter profiles* (an item is represented by which users adopted
   it, compressed by a truncated SVD) — items spread through similar
   crowds share a topic;
2. one Inf2vec model is trained per topic on that topic's episodes, so
   a user can be influential in one topic and a nobody in another
   (the same refinement Barbieri et al.'s topic-aware IC makes over
   plain IC);
3. prediction for an item routes to its topic's model; unseen items
   are assigned to the nearest topic centroid by their (partial)
   adopter profile, with a global model as the fallback.

The extension reuses the entire core stack — only the episode routing
is new.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.core.prediction import EmbeddingPredictor
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import NotFittedError, TrainingError
from repro.eval.activation import iter_test_candidates
from repro.eval.metrics import EvaluationResult, RankingEvaluator
from repro.extensions.clustering import kmeans
from repro.utils.logging import get_logger, log_epoch_progress
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

logger = get_logger("extensions.topic_inf2vec")


@dataclass(frozen=True)
class TopicConfig:
    """Topic-routing parameters.

    Attributes
    ----------
    num_topics:
        Number of item topics ``T``.
    profile_dim:
        Truncated-SVD dimensionality of the adopter profiles fed to
        k-means.
    min_episodes_per_topic:
        Topics with fewer training episodes fall back to the global
        model (too little data to specialise).
    """

    num_topics: int = 4
    profile_dim: int = 16
    min_episodes_per_topic: int = 5

    def __post_init__(self) -> None:
        check_positive_int("num_topics", self.num_topics)
        check_positive_int("profile_dim", self.profile_dim)
        check_positive_int("min_episodes_per_topic", self.min_episodes_per_topic)


def adopter_profiles(
    log: ActionLog, dim: int
) -> tuple[np.ndarray, list[int], np.ndarray]:
    """Compressed adopter profile per item.

    Builds the binary item × user adoption matrix, L2-normalises each
    item's row (so clustering sees *who* adopted, not *how many* — raw
    counts make k-means split by episode size instead of audience),
    and projects onto the top ``dim`` right singular vectors.  Returns
    ``(profiles, items, projection)`` where ``projection`` maps a raw
    normalised user-space profile into the compressed space (used to
    place unseen items).
    """
    items = log.items()
    if not items:
        raise TrainingError("cannot build profiles from an empty log")
    matrix = np.zeros((len(items), log.num_users))
    for row, item in enumerate(items):
        matrix[row, log[item].users] = 1.0
    norms = np.linalg.norm(matrix, axis=1)
    matrix /= np.where(norms > 0, norms, 1.0)[:, None]
    dim = min(dim, min(matrix.shape))
    # Economy SVD; matrix is small (items x users at library scale).
    _u, _s, vt = np.linalg.svd(matrix, full_matrices=False)
    projection = vt[:dim].T  # (num_users, dim)
    return matrix @ projection, items, projection


class TopicInf2vec:
    """Topic-aware Inf2vec: one embedding space per item topic.

    Parameters
    ----------
    base_config:
        Inf2vec settings shared by the global and per-topic models.
    topic_config:
        Topic clustering/routing settings.
    seed:
        Master seed; child models get derived seeds.
    """

    def __init__(
        self,
        base_config: Inf2vecConfig | None = None,
        topic_config: TopicConfig | None = None,
        seed: SeedLike = None,
    ):
        self.base_config = base_config if base_config is not None else Inf2vecConfig()
        self.topic_config = topic_config if topic_config is not None else TopicConfig()
        self._rng = ensure_rng(seed)
        self._global_model: Inf2vecModel | None = None
        self._topic_models: dict[int, Inf2vecModel] = {}
        self._item_topic: dict[int, int] = {}
        self._centroids: np.ndarray | None = None
        self._projection: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, graph: SocialGraph, log: ActionLog) -> "TopicInf2vec":
        """Cluster items into topics, then train global + topic models."""
        profiles, items, projection = adopter_profiles(
            log, self.topic_config.profile_dim
        )
        self._projection = projection
        num_topics = min(self.topic_config.num_topics, len(items))
        result = kmeans(profiles, num_topics, seed=self._rng)
        self._centroids = result.centroids
        self._item_topic = {
            item: int(label) for item, label in zip(items, result.labels)
        }

        self._global_model = Inf2vecModel(self.base_config, seed=self._rng)
        self._global_model.fit(graph, log)

        for topic in range(num_topics):
            topic_items = [
                item for item, label in self._item_topic.items() if label == topic
            ]
            if len(topic_items) < self.topic_config.min_episodes_per_topic:
                logger.debug(
                    "topic %d has only %d episodes; using global fallback",
                    topic,
                    len(topic_items),
                )
                continue
            sub_log = log.restrict_items(topic_items)
            model = Inf2vecModel(self.base_config, seed=self._rng)
            started = time.perf_counter()
            model.fit(graph, sub_log)
            self._topic_models[topic] = model
            log_epoch_progress(
                logger,
                topic,
                num_topics,
                elapsed=time.perf_counter() - started,
                episodes=len(topic_items),
            )
        logger.info(
            "trained %d topic models over %d topics",
            len(self._topic_models),
            num_topics,
        )
        return self

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed."""
        return self._global_model is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError("TopicInf2vec is not fitted yet")

    def topic_of(self, item: int, adopters: np.ndarray | None = None) -> int | None:
        """Topic of ``item``; unseen items are placed by adopter profile.

        Returns ``None`` when the item is unknown and no adopters are
        given to place it.
        """
        self._require_fitted()
        known = self._item_topic.get(int(item))
        if known is not None:
            return known
        if adopters is None or self._centroids is None or self._projection is None:
            return None
        profile = np.zeros(self._projection.shape[0])
        profile[np.asarray(adopters, dtype=np.int64)] = 1.0
        norm = np.linalg.norm(profile)
        if norm > 0:
            profile /= norm
        compressed = profile @ self._projection
        distances = np.linalg.norm(self._centroids - compressed, axis=1)
        return int(np.argmin(distances))

    def predictor_for_item(
        self, item: int, adopters: np.ndarray | None = None
    ) -> EmbeddingPredictor:
        """The Eq. 7 predictor of ``item``'s topic (global fallback)."""
        self._require_fitted()
        topic = self.topic_of(item, adopters)
        model = self._topic_models.get(topic) if topic is not None else None
        if model is None:
            assert self._global_model is not None
            model = self._global_model
        return EmbeddingPredictor(model.embedding)

    @property
    def num_topic_models(self) -> int:
        """How many topics got their own specialised model."""
        return len(self._topic_models)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate_activation(
        self, graph: SocialGraph, test_log: ActionLog
    ) -> EvaluationResult:
        """Topic-routed activation prediction (same protocol as core)."""
        self._require_fitted()
        evaluator = RankingEvaluator()
        for episode, candidates in iter_test_candidates(graph, test_log):
            predictor = self.predictor_for_item(episode.item, episode.users)
            scores = [
                predictor.activation_score(c.user, c.active_friends)
                for c in candidates
            ]
            labels = [c.label for c in candidates]
            evaluator.add_query(np.asarray(scores), np.asarray(labels))
        return evaluator.result()
