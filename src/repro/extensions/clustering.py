"""Lightweight k-means clustering (no scikit-learn available offline).

Used by the topic-aware Inf2vec extension to group items into topics
from their adopter profiles.  Standard Lloyd's algorithm with k-means++
initialisation and empty-cluster re-seeding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError
from repro.utils.rng import RandomState, SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    labels:
        Cluster index per input row.
    centroids:
        ``(num_clusters, dim)`` centroid matrix.
    inertia:
        Sum of squared distances of rows to their centroid.
    iterations:
        Lloyd iterations executed.
    """

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int


def _init_plus_plus(
    points: np.ndarray, num_clusters: int, rng: RandomState
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids apart."""
    n = points.shape[0]
    centroids = np.empty((num_clusters, points.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = points[first]
    closest_sq = np.sum((points - centroids[0]) ** 2, axis=1)
    for k in range(1, num_clusters):
        total = closest_sq.sum()
        if total <= 0:
            centroids[k] = points[int(rng.integers(n))]
            continue
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centroids[k] = points[pick]
        distance = np.sum((points - centroids[k]) ** 2, axis=1)
        np.minimum(closest_sq, distance, out=closest_sq)
    return centroids


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    seed: SeedLike = None,
) -> KMeansResult:
    """Cluster rows of ``points`` into ``num_clusters`` groups.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix with ``n >= num_clusters``.
    num_clusters:
        Number of clusters ``k``.
    max_iterations:
        Lloyd iteration cap.
    tolerance:
        Stop when centroids move less than this (max row L2 shift).
    seed:
        RNG seed for the k-means++ initialisation.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise TrainingError(f"points must be 2-D, got shape {points.shape}")
    num_clusters = check_positive_int("num_clusters", num_clusters)
    check_positive_int("max_iterations", max_iterations)
    if points.shape[0] < num_clusters:
        raise TrainingError(
            f"need at least {num_clusters} points, got {points.shape[0]}"
        )
    rng = ensure_rng(seed)
    centroids = _init_plus_plus(points, num_clusters, rng)

    labels = np.zeros(points.shape[0], dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Assign.
        distances = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centroids.T
            + np.sum(centroids**2, axis=1)[None, :]
        )
        labels = np.argmin(distances, axis=1)
        # Update.
        new_centroids = centroids.copy()
        for k in range(num_clusters):
            members = points[labels == k]
            if members.shape[0] == 0:
                # Re-seed an empty cluster at the worst-fit point.
                worst = int(np.argmax(np.min(distances, axis=1)))
                new_centroids[k] = points[worst]
            else:
                new_centroids[k] = members.mean(axis=0)
        shift = float(np.max(np.linalg.norm(new_centroids - centroids, axis=1)))
        centroids = new_centroids
        if shift < tolerance:
            break

    final_distances = np.sum((points - centroids[labels]) ** 2, axis=1)
    return KMeansResult(
        labels=labels,
        centroids=centroids,
        inertia=float(final_distances.sum()),
        iterations=iterations,
    )
