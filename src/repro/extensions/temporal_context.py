"""Time-aware context generation — the paper's second future-work direction.

Section VI: *"the proposed Inf2vec is not limited to using random walks
to generate context.  We can investigate other approaches for context
generation to incorporate more factors related to social influence."*

This extension swaps Algorithm 1's two samplers for time-aware ones,
keeping the ``(u, C_u^i)`` output format so the core trainer is reused
unchanged:

* **Local context** — instead of a uniform random walk over the
  propagation DAG, successors are sampled with probability
  proportional to ``exp(-(t_v - t_u) / decay)``: influence that fired
  quickly is stronger evidence than influence after a long delay
  (the intuition behind continuous-time IC models such as NetRate).
* **Global context** — co-adopters are sampled weighted by temporal
  proximity of their adoption to ``u``'s, so "interest twins" are
  users who reacted to the item in the same phase of its lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.context import ContextConfig, InfluenceContext
from repro.core.propagation import PropagationNetwork
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import TrainingError
from repro.utils.rng import RandomState, SeedLike, ensure_rng
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TemporalContextConfig:
    """Time-aware Algorithm 1 parameters.

    Attributes
    ----------
    base:
        The underlying length/alpha/restart budget split.
    decay:
        Time constant of the exponential recency weighting; measured in
        the action log's time units.
    """

    base: ContextConfig = ContextConfig()
    decay: float = 5.0

    def __post_init__(self) -> None:
        check_positive("decay", self.decay)


def _recency_weights(
    deltas: np.ndarray, decay: float
) -> np.ndarray:
    """Exponential recency weights, normalised to a distribution."""
    weights = np.exp(-np.abs(deltas) / decay)
    total = weights.sum()
    if total <= 0:
        return np.full(deltas.shape[0], 1.0 / deltas.shape[0])
    return weights / total


def temporal_walk(
    network: PropagationNetwork,
    episode: DiffusionEpisode,
    start: int,
    budget: int,
    restart_prob: float,
    decay: float,
    rng: RandomState,
) -> list[int]:
    """Random walk with restart whose steps prefer fast propagations."""
    if budget <= 0 or network.out_degree(start) == 0:
        return []
    visited: list[int] = []
    current = int(start)
    while len(visited) < budget:
        if current != start and rng.random() < restart_prob:
            current = int(start)
            continue
        successors = network.successors(current)
        if successors.shape[0] == 0:
            current = int(start)
            continue
        deltas = np.asarray(
            [episode.time_of(int(v)) - episode.time_of(current) for v in successors]
        )
        probs = _recency_weights(deltas, decay)
        current = int(successors[rng.choice(successors.shape[0], p=probs)])
        visited.append(current)
    return visited


def temporal_global_sample(
    network: PropagationNetwork,
    episode: DiffusionEpisode,
    user: int,
    budget: int,
    decay: float,
    rng: RandomState,
) -> list[int]:
    """Co-adopter sample weighted by adoption-time proximity to ``user``."""
    if budget <= 0:
        return []
    candidates = network.nodes[network.nodes != int(user)]
    if candidates.shape[0] == 0:
        return []
    own_time = episode.time_of(int(user))
    deltas = np.asarray(
        [episode.time_of(int(v)) - own_time for v in candidates]
    )
    probs = _recency_weights(deltas, decay)
    picks = rng.choice(candidates.shape[0], size=budget, p=probs)
    return [int(candidates[p]) for p in picks]


class TemporalContextGenerator:
    """Drop-in replacement for :class:`repro.core.context.ContextGenerator`.

    Produces :class:`InfluenceContext` tuples whose local and global
    constituents are sampled with exponential recency weighting; feed
    the output straight into
    :meth:`repro.core.inf2vec.Inf2vecModel.fit_contexts`.
    """

    def __init__(
        self,
        graph: SocialGraph,
        config: TemporalContextConfig | None = None,
        seed: SeedLike = None,
    ):
        self._graph = graph
        self._config = config if config is not None else TemporalContextConfig()
        self._rng = ensure_rng(seed)

    @property
    def config(self) -> TemporalContextConfig:
        """The time-aware Algorithm 1 parameters in use."""
        return self._config

    def iter_contexts(self, log: ActionLog) -> Iterator[InfluenceContext]:
        """Stream time-aware contexts episode by episode."""
        if log.num_users > self._graph.num_nodes:
            raise TrainingError(
                f"action log has {log.num_users} users but the graph only "
                f"has {self._graph.num_nodes} nodes"
            )
        base = self._config.base
        decay = self._config.decay
        for episode in log:
            network = PropagationNetwork.from_episode(self._graph, episode)
            for user in network.nodes:
                user = int(user)
                local = temporal_walk(
                    network,
                    episode,
                    user,
                    base.local_budget,
                    base.restart_prob,
                    decay,
                    self._rng,
                )
                global_ = temporal_global_sample(
                    network, episode, user, base.global_budget, decay, self._rng
                )
                if local or global_:
                    yield InfluenceContext(
                        user=user,
                        item=episode.item,
                        local=tuple(local),
                        global_=tuple(global_),
                    )

    def generate(self, log: ActionLog) -> list[InfluenceContext]:
        """Materialise the whole time-aware corpus."""
        return list(self.iter_contexts(log))
