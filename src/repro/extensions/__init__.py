"""Extensions implementing the paper's future-work directions.

Section VI of the paper names two:

* topic-aware influence propagation — :mod:`repro.extensions.topic_inf2vec`,
* alternative context-generation strategies —
  :mod:`repro.extensions.temporal_context`.

Plus the supporting k-means substrate in
:mod:`repro.extensions.clustering`.
"""

from repro.extensions.clustering import KMeansResult, kmeans
from repro.extensions.temporal_context import (
    TemporalContextConfig,
    TemporalContextGenerator,
    temporal_global_sample,
    temporal_walk,
)
from repro.extensions.topic_inf2vec import TopicConfig, TopicInf2vec, adopter_profiles

__all__ = [
    "KMeansResult",
    "kmeans",
    "TemporalContextConfig",
    "TemporalContextGenerator",
    "temporal_global_sample",
    "temporal_walk",
    "TopicConfig",
    "TopicInf2vec",
    "adopter_profiles",
]
