"""Exception hierarchy for the ``repro`` package.

All errors raised intentionally by this library derive from
:class:`ReproError`, so callers can catch library problems without
swallowing genuine programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Raised for structurally invalid graph operations.

    Examples include referencing a node outside ``[0, num_nodes)`` or
    constructing a graph from an edge list with malformed entries.
    """


class ActionLogError(ReproError):
    """Raised for malformed action logs or diffusion episodes.

    Examples include episodes with duplicate users, non-chronological
    timestamps, or references to users absent from the social network.
    """


class TrainingError(ReproError):
    """Raised when a model cannot be trained with the given inputs.

    Examples include an empty training log, non-positive embedding
    dimensions, or learning-rate/weight hyper-parameters outside their
    valid ranges.
    """


class NotFittedError(TrainingError):
    """Raised when prediction is requested from an unfitted model."""


class EvaluationError(ReproError):
    """Raised when an evaluation protocol receives unusable inputs.

    Examples include an empty candidate set, label vectors whose length
    does not match the score vector, or ``N <= 0`` for precision@N.
    """


class DataGenerationError(ReproError):
    """Raised when a synthetic dataset request is infeasible.

    Examples include asking for more edges than a simple directed graph
    of the requested size can hold, or loading a dataset archive whose
    contents fail structural validation.
    """


class ServingError(ReproError):
    """Raised for unusable serving-layer inputs or artifacts.

    Examples include user ids outside ``[0, num_users)``, a top-k
    request with ``k`` outside ``[1, num_users]``, or an embedding
    store / top-k index directory whose shards are missing, truncated,
    or inconsistent with their manifest.
    """


class SketchError(ReproError):
    """Raised for unusable sketch-based influence-maximisation inputs.

    Examples include a reverse-reachable pool whose flattened layout is
    inconsistent (indptr/node arrays disagree), a max-coverage request
    for more seeds than the candidate pool holds, or an adaptive
    sampling schedule asked to run on an empty graph.
    """


class CheckpointError(ReproError):
    """Raised for unusable training checkpoints.

    Examples include truncated or otherwise corrupt checkpoint files,
    an unsupported checkpoint format version, or resuming with a config
    whose fingerprint differs from the one the checkpoint was written
    under.
    """


class TelemetryError(ReproError):
    """Raised on telemetry misuse.

    Examples include registering one instrument name under two
    different types, re-declaring a histogram with different bucket
    edges or a summary with different target quantiles, and requesting
    a quantile outside ``[0, 1]``.
    """
