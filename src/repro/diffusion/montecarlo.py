"""Monte-Carlo influence-spread estimation.

IC-based baselines answer the diffusion-prediction task (Table III) by
simulating the cascade from the seed set many times — the paper runs
5,000 simulations — and scoring each user by the fraction of runs in
which they activate.  The same machinery estimates the expected spread
``sigma(S)`` needed by greedy influence maximisation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.diffusion.ic import simulate_ic, simulate_ic_fast
from repro.diffusion.probabilities import EdgeProbabilities
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

#: The paper's simulation count for diffusion prediction.
PAPER_NUM_RUNS = 5000


def _simulate_sizes(
    probabilities: EdgeProbabilities,
    seeds: Sequence[int],
    num_runs: int,
    seed: SeedLike,
    fast: bool,
    counts: np.ndarray | None = None,
) -> np.ndarray:
    """The one simulate loop behind all three public estimators.

    Draws ``num_runs`` cascades from a single RNG stream (so every
    estimator sees the same sequence of simulations for a given seed)
    and returns the per-run cascade sizes.  When ``counts`` is given,
    each cascade's activated nodes are additionally accumulated into it
    in place — the caller owns the buffer, so repeated estimates can
    reuse one allocation.
    """
    num_runs = check_positive_int("num_runs", num_runs)
    rng = ensure_rng(seed)
    simulate = simulate_ic_fast if fast else simulate_ic
    sizes = np.empty(num_runs, dtype=np.float64)
    for i in range(num_runs):
        result = simulate(probabilities, seeds, rng)
        sizes[i] = result.size
        if counts is not None:
            counts[result.activated] += 1
    return sizes


def activation_frequencies(
    probabilities: EdgeProbabilities,
    seeds: Sequence[int],
    num_runs: int = PAPER_NUM_RUNS,
    seed: SeedLike = None,
    fast: bool = True,
) -> np.ndarray:
    """Per-user activation probability estimated over ``num_runs`` cascades.

    Returns an array of shape ``(num_nodes,)`` whose entry ``v`` is the
    fraction of simulations in which ``v`` activated.  Seed users score
    1.0 by construction.  ``fast`` selects the vectorised simulator
    (identical distribution; see :func:`repro.diffusion.ic.simulate_ic_fast`).
    """
    counts = np.zeros(probabilities.graph.num_nodes, dtype=np.int64)
    sizes = _simulate_sizes(probabilities, seeds, num_runs, seed, fast, counts)
    return counts / sizes.shape[0]


def expected_spread(
    probabilities: EdgeProbabilities,
    seeds: Sequence[int],
    num_runs: int = PAPER_NUM_RUNS,
    seed: SeedLike = None,
    fast: bool = True,
) -> float:
    """Monte-Carlo estimate of the expected cascade size ``sigma(seeds)``."""
    return float(
        _simulate_sizes(probabilities, seeds, num_runs, seed, fast).mean()
    )


def spread_with_standard_error(
    probabilities: EdgeProbabilities,
    seeds: Sequence[int],
    num_runs: int = PAPER_NUM_RUNS,
    seed: SeedLike = None,
    fast: bool = True,
) -> tuple[float, float]:
    """Expected spread plus the standard error of the MC estimate."""
    sizes = _simulate_sizes(probabilities, seeds, num_runs, seed, fast)
    mean = float(sizes.mean())
    if sizes.shape[0] == 1:
        return mean, 0.0
    return mean, float(sizes.std(ddof=1) / np.sqrt(sizes.shape[0]))
