"""Edge-probability tables over a social graph.

The IC-based comparison methods (DE, ST, EM, Emb-IC) all boil down to a
probability ``P_uv`` per social edge.  :class:`EdgeProbabilities`
stores those values aligned with the graph's out-neighbour CSR layout,
which is exactly the access pattern Independent-Cascade simulation
needs: "for active node ``u``, give me its out-neighbours and their
probabilities as two parallel arrays".
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.data.graph import SocialGraph
from repro.errors import GraphError


class EdgeProbabilities:
    """Per-edge influence probabilities ``P_uv`` for a fixed graph.

    Parameters
    ----------
    graph:
        The social graph whose edges carry the probabilities.
    values:
        Probability for each edge in the graph's canonical
        (source-major, target-sorted) order — i.e. aligned with
        ``graph.edge_array()``.  Values must lie in ``[0, 1]``.
    """

    def __init__(self, graph: SocialGraph, values: np.ndarray):
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (graph.num_edges,):
            raise GraphError(
                f"expected {graph.num_edges} probabilities, got shape {values.shape}"
            )
        if values.size and (
            np.any(values < 0) or np.any(values > 1) or not np.all(np.isfinite(values))
        ):
            raise GraphError("edge probabilities must be finite and in [0, 1]")
        self._graph = graph
        self._values = values
        # Map (u, v) -> flat edge index for O(1) lookups.
        edge_array = graph.edge_array()
        packed = edge_array[:, 0] * graph.num_nodes + edge_array[:, 1]
        self._index = {int(p): i for i, p in enumerate(packed)}
        self._out_starts = np.concatenate(
            [[0], np.cumsum(graph.out_degrees())]
        ).astype(np.int64)

    @classmethod
    def constant(cls, graph: SocialGraph, probability: float) -> "EdgeProbabilities":
        """Every edge gets the same probability."""
        return cls(graph, np.full(graph.num_edges, float(probability)))

    @classmethod
    def from_function(
        cls,
        graph: SocialGraph,
        func: Callable[[int, int], float],
    ) -> "EdgeProbabilities":
        """Fill the table by evaluating ``func(source, target)`` per edge."""
        edge_array = graph.edge_array()
        values = np.asarray(
            [func(int(u), int(v)) for u, v in edge_array], dtype=np.float64
        )
        return cls(graph, values)

    @classmethod
    def from_dict(
        cls,
        graph: SocialGraph,
        table: dict[tuple[int, int], float],
        default: float = 0.0,
    ) -> "EdgeProbabilities":
        """Fill the table from a sparse ``(u, v) -> p`` mapping."""
        return cls.from_function(
            graph, lambda u, v: table.get((u, v), default)
        )

    @property
    def graph(self) -> SocialGraph:
        """The underlying social graph."""
        return self._graph

    @property
    def values(self) -> np.ndarray:
        """All probabilities in canonical edge order (read-only intent)."""
        return self._values

    def get(self, source: int, target: int) -> float:
        """``P_uv``; raises :class:`GraphError` for non-edges."""
        key = int(source) * self._graph.num_nodes + int(target)
        try:
            return float(self._values[self._index[key]])
        except KeyError:
            raise GraphError(
                f"({source}, {target}) is not an edge of the graph"
            ) from None

    def get_or_zero(self, source: int, target: int) -> float:
        """``P_uv`` for edges, 0.0 for non-edges (prediction-time helper)."""
        key = int(source) * self._graph.num_nodes + int(target)
        idx = self._index.get(key)
        if idx is None:
            return 0.0
        return float(self._values[idx])

    def out_edges(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, probabilities)`` of edges leaving ``source``.

        Both arrays are views aligned with each other — the hot path of
        the IC simulator.
        """
        start = self._out_starts[int(source)]
        stop = self._out_starts[int(source) + 1]
        return self._graph.out_neighbors(int(source)), self._values[start:stop]

    def __repr__(self) -> str:
        return (
            f"EdgeProbabilities(num_edges={self._graph.num_edges}, "
            f"mean={self._values.mean() if self._values.size else 0.0:.4f})"
        )
