"""Diffusion-model substrate: IC, LT, and Monte-Carlo estimation."""

from repro.diffusion.ic import (
    CascadeResult,
    activation_probability,
    simulate_ic,
    simulate_ic_fast,
)
from repro.diffusion.lt import LTResult, simulate_lt, uniform_lt_weights
from repro.diffusion.montecarlo import (
    PAPER_NUM_RUNS,
    activation_frequencies,
    expected_spread,
    spread_with_standard_error,
)
from repro.diffusion.probabilities import EdgeProbabilities

__all__ = [
    "CascadeResult",
    "activation_probability",
    "simulate_ic",
    "simulate_ic_fast",
    "LTResult",
    "simulate_lt",
    "uniform_lt_weights",
    "PAPER_NUM_RUNS",
    "activation_frequencies",
    "expected_spread",
    "spread_with_standard_error",
    "EdgeProbabilities",
]
