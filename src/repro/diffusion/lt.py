"""Linear Threshold (LT) diffusion model.

In the LT model every node ``v`` draws a threshold
``theta_v ~ U[0, 1]`` and activates once the summed weights of its
*active* in-neighbours reach the threshold:
``sum_{u in active in-neighbours} w_uv >= theta_v``.  Incoming weights
are conventionally normalised so ``sum_u w_uv <= 1``.

The paper's evaluation centres on the IC model, but LT is the second
prevalent spread model it introduces in Section II; we implement it so
the synthetic-data generator and the influence-maximisation example can
exercise both substrates, and so LT-vs-IC robustness can be ablated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.graph import SocialGraph
from repro.diffusion.ic import record_simulation
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import GraphError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class LTResult:
    """Outcome of one Linear-Threshold simulation."""

    activated: np.ndarray
    activation_round: np.ndarray

    @property
    def size(self) -> int:
        """Number of activated nodes, seeds included."""
        return int(self.activated.shape[0])

    def activated_set(self) -> frozenset[int]:
        """Activated nodes as a frozen set."""
        return frozenset(int(n) for n in self.activated)


def uniform_lt_weights(graph: SocialGraph) -> EdgeProbabilities:
    """The standard ``w_uv = 1 / indegree(v)`` LT weighting.

    Guarantees ``sum_u w_uv = 1`` for every node with in-neighbours,
    the normalisation Kempe et al. use.
    """
    in_degrees = graph.in_degrees()

    def weight(source: int, target: int) -> float:
        return 1.0 / float(in_degrees[target])

    return EdgeProbabilities.from_function(graph, weight)


def simulate_lt(
    weights: EdgeProbabilities,
    seeds: Sequence[int],
    seed: SeedLike = None,
    thresholds: np.ndarray | None = None,
    max_rounds: int | None = None,
) -> LTResult:
    """Run one Linear-Threshold simulation.

    Parameters
    ----------
    weights:
        Edge weights ``w_uv``; incoming weights per node should sum to
        at most 1 (validated).
    seeds:
        Initially active nodes.
    seed:
        RNG seed for threshold draws (ignored when ``thresholds`` is
        given).
    thresholds:
        Optional fixed per-node thresholds in ``[0, 1]`` — handy for
        deterministic tests.
    max_rounds:
        Optional round cap.
    """
    graph = weights.graph
    rng = ensure_rng(seed)

    incoming_totals = np.zeros(graph.num_nodes)
    edge_array = graph.edge_array()
    if edge_array.shape[0]:
        np.add.at(incoming_totals, edge_array[:, 1], weights.values)
    if np.any(incoming_totals > 1.0 + 1e-9):
        worst = int(np.argmax(incoming_totals))
        raise GraphError(
            f"LT weights into node {worst} sum to {incoming_totals[worst]:.4f} > 1"
        )

    if thresholds is None:
        thresholds = rng.random(graph.num_nodes)
    else:
        thresholds = np.asarray(thresholds, dtype=np.float64)
        if thresholds.shape != (graph.num_nodes,):
            raise GraphError(
                f"thresholds must have shape ({graph.num_nodes},), "
                f"got {thresholds.shape}"
            )

    active = np.zeros(graph.num_nodes, dtype=bool)
    pressure = np.zeros(graph.num_nodes)  # summed active in-weights

    activated: list[int] = []
    rounds: list[int] = []
    frontier: list[int] = []
    for s in seeds:
        s = int(s)
        if not 0 <= s < graph.num_nodes:
            raise GraphError(f"seed {s} out of range [0, {graph.num_nodes})")
        if not active[s]:
            active[s] = True
            frontier.append(s)
            activated.append(s)
            rounds.append(0)

    current_round = 0
    while frontier:
        if max_rounds is not None and current_round >= max_rounds:
            break
        current_round += 1
        next_frontier: list[int] = []
        for u in frontier:
            targets, edge_weights = weights.out_edges(u)
            for v, w in zip(targets, edge_weights):
                v = int(v)
                if active[v]:
                    continue
                pressure[v] += w
                if pressure[v] >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(v)
                    activated.append(v)
                    rounds.append(current_round)
        frontier = next_frontier

    record_simulation("lt", current_round, len(activated))
    return LTResult(
        activated=np.asarray(activated, dtype=np.int64),
        activation_round=np.asarray(rounds, dtype=np.int64),
    )
