"""Independent Cascade (IC) diffusion model.

In the IC model each newly activated node ``u`` gets exactly one chance
to activate each currently inactive out-neighbour ``v``, succeeding
independently with probability ``P_uv``.  The process unfolds in
discrete rounds from a seed set and stops when a round activates
nobody (Section II of the paper).

This simulator is the substrate for:

* generating synthetic cascades (``repro.data.synthetic``),
* the Monte-Carlo diffusion prediction of the IC-based baselines
  (Table III), and
* influence-spread estimation inside the influence-maximisation
  application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import GraphError
from repro.obs.metrics import ROUND_BUCKETS, SPREAD_BUCKETS
from repro.obs.run import active_metrics
from repro.utils.rng import RandomState, SeedLike, ensure_rng


def record_simulation(model: str, rounds: int, activated: int) -> None:
    """Record one diffusion simulation into the ambient metrics registry.

    No-op (one attribute check) unless a :func:`repro.obs.run.recording`
    scope is active; the Monte-Carlo loops run thousands of
    simulations, so everything heavier stays behind the enabled guard.
    """
    metrics = active_metrics()
    if not metrics.enabled:
        return
    metrics.counter(
        f"diffusion.{model}.simulations", "cascade simulations run"
    ).inc()
    metrics.histogram(
        f"diffusion.{model}.rounds", ROUND_BUCKETS, "rounds until quiescence"
    ).observe(rounds)
    metrics.histogram(
        f"diffusion.{model}.spread", SPREAD_BUCKETS, "activated-set sizes"
    ).observe(activated)


@dataclass(frozen=True)
class CascadeResult:
    """Outcome of one IC simulation.

    Attributes
    ----------
    activated:
        All activated nodes in activation order (seeds first, then one
        block per round).
    activation_round:
        ``activation_round[k]`` is the round in which ``activated[k]``
        switched on; seeds are round 0.
    """

    activated: np.ndarray
    activation_round: np.ndarray

    @property
    def size(self) -> int:
        """Number of activated nodes, seeds included."""
        return int(self.activated.shape[0])

    def activated_set(self) -> frozenset[int]:
        """Activated nodes as a frozen set."""
        return frozenset(int(n) for n in self.activated)


def simulate_ic(
    probabilities: EdgeProbabilities,
    seeds: Sequence[int],
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> CascadeResult:
    """Run one Independent-Cascade simulation.

    Parameters
    ----------
    probabilities:
        Per-edge activation probabilities over the social graph.
    seeds:
        Initially active nodes ``A_0`` (duplicates collapsed, order of
        first occurrence preserved).
    seed:
        RNG seed/generator for the coin flips.
    max_rounds:
        Optional hard cap on the number of rounds (safety valve for
        pathological probability tables; ``None`` runs to quiescence).

    Returns
    -------
    CascadeResult
        Activation order and rounds.
    """
    graph = probabilities.graph
    rng = ensure_rng(seed)
    seen: set[int] = set()
    frontier: list[int] = []
    for s in seeds:
        s = int(s)
        if not 0 <= s < graph.num_nodes:
            raise GraphError(f"seed {s} out of range [0, {graph.num_nodes})")
        if s not in seen:
            seen.add(s)
            frontier.append(s)

    activated: list[int] = list(frontier)
    rounds: list[int] = [0] * len(frontier)
    current_round = 0
    while frontier:
        if max_rounds is not None and current_round >= max_rounds:
            break
        current_round += 1
        next_frontier: list[int] = []
        for u in frontier:
            targets, probs = probabilities.out_edges(u)
            if targets.shape[0] == 0:
                continue
            coins = rng.random(targets.shape[0])
            for v, p, coin in zip(targets, probs, coins):
                v = int(v)
                if v not in seen and coin < p:
                    seen.add(v)
                    next_frontier.append(v)
                    activated.append(v)
                    rounds.append(current_round)
        frontier = next_frontier

    record_simulation("ic", current_round, len(activated))
    return CascadeResult(
        activated=np.asarray(activated, dtype=np.int64),
        activation_round=np.asarray(rounds, dtype=np.int64),
    )


def simulate_ic_fast(
    probabilities: EdgeProbabilities,
    seeds: Sequence[int],
    seed: SeedLike = None,
    max_rounds: int | None = None,
) -> CascadeResult:
    """Vectorised Independent-Cascade simulation.

    Semantically equivalent to :func:`simulate_ic` — each newly
    activated node gets one independent chance per out-neighbour — but
    processes a whole frontier's out-edges as numpy arrays per round,
    which is several times faster on the Monte-Carlo heavy paths
    (Table III, influence maximisation).  Activation *order inside a
    round* is edge-concatenation order rather than frontier-processing
    order; rounds and the activated set have identical distribution.
    """
    graph = probabilities.graph
    rng = ensure_rng(seed)
    active = np.zeros(graph.num_nodes, dtype=bool)
    frontier: list[int] = []
    for s in seeds:
        s = int(s)
        if not 0 <= s < graph.num_nodes:
            raise GraphError(f"seed {s} out of range [0, {graph.num_nodes})")
        if not active[s]:
            active[s] = True
            frontier.append(s)

    activated: list[int] = list(frontier)
    rounds: list[int] = [0] * len(frontier)
    frontier_array = np.asarray(frontier, dtype=np.int64)
    current_round = 0
    while frontier_array.size:
        if max_rounds is not None and current_round >= max_rounds:
            break
        current_round += 1
        target_chunks = []
        prob_chunks = []
        for u in frontier_array:
            targets, probs = probabilities.out_edges(int(u))
            if targets.shape[0]:
                target_chunks.append(targets)
                prob_chunks.append(probs)
        if not target_chunks:
            break
        all_targets = np.concatenate(target_chunks)
        all_probs = np.concatenate(prob_chunks)
        hits = rng.random(all_targets.shape[0]) < all_probs
        candidates = all_targets[hits]
        if candidates.size == 0:
            break
        # First occurrence wins; already-active nodes are immune.
        fresh = np.unique(candidates[~active[candidates]])
        if fresh.size == 0:
            break
        active[fresh] = True
        activated.extend(int(v) for v in fresh)
        rounds.extend([current_round] * fresh.size)
        frontier_array = fresh

    record_simulation("ic", current_round, len(activated))
    return CascadeResult(
        activated=np.asarray(activated, dtype=np.int64),
        activation_round=np.asarray(rounds, dtype=np.int64),
    )


def activation_probability(
    probabilities: Sequence[float],
) -> float:
    """Eq. 8: ``Pr(v) = 1 - prod_u (1 - P_uv)`` over active friends ``u``.

    Accepts the pairwise probabilities from each active friend and
    combines them under the IC independence assumption.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.size == 0:
        return 0.0
    if np.any(probs < 0) or np.any(probs > 1):
        raise GraphError("activation probabilities must lie in [0, 1]")
    return float(1.0 - np.prod(1.0 - probs))


def expected_spread_single_run(
    probabilities: EdgeProbabilities,
    seeds: Sequence[int],
    rng: RandomState,
) -> int:
    """Spread (number of activations) of one simulation — MC inner loop."""
    return simulate_ic(probabilities, seeds, rng).size
