"""Multi-process hogwild training over shared-memory parameters.

The single-process engine (:mod:`repro.core.inf2vec`) trains one
episode shard at a time; this package scales the same objective across
worker processes.  :mod:`repro.parallel.shared` places the four
parameter arrays (S, T, b, b-tilde) in POSIX shared memory and
re-exposes them as a zero-copy :class:`~repro.core.embeddings.InfluenceEmbedding`;
:mod:`repro.parallel.hogwild` shards the action log, spawns workers
with spawn-derived RNG streams, and runs lock-free SGD per Niu et
al.'s hogwild scheme — sparse Eq. 6 updates land directly on the
shared pages without locks.

Determinism: ``workers=1`` is bitwise-deterministic (training and
checkpoint resume); ``workers>1`` is statistically reproducible only,
because the OS schedules the racing updates.  Checkpoints record the
worker topology and resume only at the worker count that wrote them.
"""

from repro.parallel.hogwild import HogwildTrainer, shard_episodes
from repro.parallel.shared import (
    PARAMETER_FIELDS,
    SharedEmbedding,
    SharedEmbeddingSpec,
)

__all__ = [
    "HogwildTrainer",
    "PARAMETER_FIELDS",
    "SharedEmbedding",
    "SharedEmbeddingSpec",
    "shard_episodes",
]
