"""Multi-process hogwild training for Inf2vec.

:class:`HogwildTrainer` orchestrates the parallel counterpart of
:meth:`repro.core.inf2vec.Inf2vecModel.fit`: it initialises the four
parameter arrays once, places them in shared memory
(:class:`~repro.parallel.shared.SharedEmbedding`), shards the action
log's episodes across ``workers`` processes, and runs lock-free SGD —
every worker applies the sparse Eq. 6 updates directly to the shared
pages, Niu et al.'s hogwild scheme.  The parent drives epochs over a
per-worker command pipe, aggregates shard losses into the global mean,
applies the shared convergence test, and checkpoints at epoch barriers
(when no worker is mid-update) with the worker topology recorded.

Determinism contract (documented in DESIGN.md §14):

* Worker RNG streams are spawn-derived from the trainer's seeded
  generator (:meth:`numpy.random.Generator.spawn`), so every stochastic
  draw is attributable to the trainer seed — the repo's no-global-rng
  invariant extends across processes.
* Sharding is deterministic (greedy size-balanced, ties by position).
* At ``workers=1`` training and resume are bitwise-deterministic, like
  the single-process engine.  At ``workers>1`` the *schedule* of
  interleaved shared-memory updates is up to the OS, so runs are only
  statistically reproducible; resume restores every worker's exact
  stream but not the interleaving.  Resume therefore requires the same
  worker count that wrote the checkpoint, and cross-worker-count
  comparisons hold only within a documented loss tolerance.
"""

from __future__ import annotations

import copy
import multiprocessing
import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.embeddings import InfluenceEmbedding
from repro.core.inf2vec import (
    Inf2vecConfig,
    Inf2vecModel,
    annealed_learning_rate,
    hogwild_worker_main,
    loss_converged,
)
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import CheckpointError, TrainingError
from repro.obs.run import RunRecorder, config_fingerprint, resolve_run
from repro.parallel.shared import SharedEmbedding
from repro.utils.logging import get_logger, log_epoch_progress
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from multiprocessing.connection import Connection

    from repro.ckpt.manager import CheckpointManager
    from repro.ckpt.state import TrainingState

logger = get_logger("parallel.hogwild")

#: Seconds to wait for workers to exit before escalating to terminate().
_JOIN_TIMEOUT = 10.0


def shard_episodes(log: ActionLog, workers: int) -> list[ActionLog]:
    """Split a log into ``workers`` size-balanced episode shards.

    Greedy longest-processing-time assignment: episodes sorted by
    descending adoption count (ties by log position) go to the
    currently lightest shard, which balances per-worker positive counts
    far better than round-robin on heavy-tailed cascade sizes.  The
    assignment is a pure function of ``(log, workers)`` — the
    determinism anchor for per-worker corpus regeneration on resume.
    Every episode lands in exactly one shard; shards preserve the log's
    episode order; with fewer episodes than workers the tail shards are
    empty (their workers idle through each epoch).
    """
    workers = check_positive_int("workers", workers)
    episodes = log.episodes
    order = sorted(
        range(len(episodes)), key=lambda i: (-len(episodes[i]), i)
    )
    buckets: list[list[int]] = [[] for _ in range(workers)]
    loads = [0] * workers
    for index in order:
        lightest = min(range(workers), key=lambda w: (loads[w], w))
        buckets[lightest].append(index)
        loads[lightest] += len(episodes[index])
    return [
        ActionLog(
            [episodes[i] for i in sorted(bucket)], num_users=log.num_users
        )
        for bucket in buckets
    ]


class HogwildTrainer:
    """Shared-memory parallel Inf2vec training (see module docstring).

    Parameters
    ----------
    config:
        Training hyper-parameters; the same schedule, convergence test,
        and engine settings as the single-process model.
    workers:
        Worker process count.  ``1`` runs the full machinery with a
        single worker — bitwise-deterministic, the resume-equivalence
        anchor.
    seed:
        Trainer RNG seed.  Initialises the embedding and spawns the
        per-worker generators; must be spawnable (an int seed, or a
        Generator carrying a seed sequence).
    stream_chunk:
        When set, workers stream their corpus: each epoch generates and
        trains ``stream_chunk`` episodes' contexts at a time instead of
        materialising the shard corpus up front.  Requires
        ``negative_distribution='uniform'``.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap, shares the parent's resource tracker) and
        ``spawn`` elsewhere.  Worker arguments are picklable either way.

    Examples
    --------
    >>> from repro.data.synthetic import SyntheticSocialDataset
    >>> data = SyntheticSocialDataset.digg_like(num_users=60, num_items=12,
    ...                                         seed=0)
    >>> trainer = HogwildTrainer(Inf2vecConfig(dim=8, epochs=2), workers=2,
    ...                          seed=0)
    >>> model = trainer.fit(data.graph, data.log)  # doctest: +SKIP
    """

    def __init__(
        self,
        config: Inf2vecConfig | None = None,
        workers: int = 1,
        seed: SeedLike = None,
        stream_chunk: int | None = None,
        start_method: str | None = None,
    ):
        self.config = config if config is not None else Inf2vecConfig()
        self.workers = check_positive_int("workers", workers)
        if stream_chunk is not None:
            stream_chunk = check_positive_int("stream_chunk", stream_chunk)
            if self.config.negative_distribution != "uniform":
                raise TrainingError(
                    "streaming corpus requires "
                    "negative_distribution='uniform' (the unigram table "
                    "needs the full corpus)"
                )
        self.stream_chunk = stream_chunk
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._start_method = start_method
        self._rng = ensure_rng(seed)
        self._seed_text = None if seed is None else str(seed)
        self._model: Inf2vecModel | None = None
        #: Parent-side wall-clock seconds per completed epoch (barrier
        #: to barrier) — the scaling benchmark reads this.
        self.epoch_seconds: list[float] = []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        graph: SocialGraph,
        log: ActionLog,
        checkpoint: "CheckpointManager | None" = None,
        resume: bool = False,
    ) -> Inf2vecModel:
        """Train across ``self.workers`` processes; returns the model.

        The returned :class:`Inf2vecModel` owns a private copy of the
        final parameters (the shared blocks are freed before
        returning), its loss history, and the parent RNG stream —
        interchangeable with a single-process ``fit`` result.

        ``checkpoint``/``resume`` follow the single-process contract,
        with the topology restriction described in the module
        docstring: resume requires a checkpoint written by this engine
        at the same worker count.
        """
        config = self.config
        num_users = check_positive_int("num_users", graph.num_nodes)
        state = self._resume_state(checkpoint, resume)
        run = resolve_run(config.telemetry, name="hogwild.fit")
        self.epoch_seconds = []

        entry_rng_state = copy.deepcopy(self._rng.bit_generator.state)
        resume_states: list[dict | None]
        if state is not None:
            if state.source.shape != (num_users, config.dim):
                raise CheckpointError(
                    f"checkpoint holds a {state.source.shape} embedding but "
                    f"this fit needs ({num_users}, {config.dim})"
                )
            embedding = state.to_embedding()
            loss_history = [float(x) for x in state.loss_history]
            start_epoch = state.epoch + 1
            topology = state.worker_topology
            assert topology is not None  # _resume_state guarantees it
            entry_states = [
                copy.deepcopy(s) for s in topology["entry_rng_states"]
            ]
            resume_states = [copy.deepcopy(s) for s in topology["rng_states"]]
            self._rng.bit_generator.state = copy.deepcopy(state.rng_state)
            entry_rng_state = copy.deepcopy(state.entry_rng_state)
        else:
            embedding = InfluenceEmbedding.initialize(
                num_users, config.dim, self._rng
            )
            loss_history = []
            start_epoch = 0
            children = self._spawn_worker_rngs()
            entry_states = [
                copy.deepcopy(child.bit_generator.state) for child in children
            ]
            resume_states = [None] * self.workers

        model = Inf2vecModel(config, seed=self._rng)
        model._loss_history = loss_history
        if start_epoch >= config.epochs:
            # The checkpoint already covers the full budget; nothing to
            # spawn workers for.
            model._embedding = embedding
            self._model = model
            return model

        shared = SharedEmbedding.create(embedding)
        model._embedding = shared.embedding
        processes: list[multiprocessing.Process] = []
        conns: list["Connection"] = []
        try:
            with run.span(
                "hogwild.fit", engine=config.engine, workers=self.workers
            ):
                self._record_run_header(run, graph, log)
                shards = shard_episodes(log, self.workers)
                context = multiprocessing.get_context(self._start_method)
                for worker_id in range(self.workers):
                    parent_conn, child_conn = context.Pipe()
                    process = context.Process(
                        target=hogwild_worker_main,
                        args=(
                            worker_id,
                            shared.spec,
                            config,
                            graph,
                            shards[worker_id],
                            entry_states[worker_id],
                            resume_states[worker_id],
                            self.stream_chunk,
                            child_conn,
                        ),
                        daemon=True,
                        name=f"hogwild-worker-{worker_id}",
                    )
                    process.start()
                    child_conn.close()
                    processes.append(process)
                    conns.append(parent_conn)
                self._await_ready(conns, processes, run)

                previous_loss = loss_history[-1] if loss_history else np.inf
                for epoch in range(start_epoch, config.epochs):
                    learning_rate = annealed_learning_rate(
                        config.learning_rate,
                        epoch,
                        config.epochs,
                        config.lr_decay,
                    )
                    started = time.perf_counter()
                    with run.span("epoch", epoch=epoch) as epoch_span:
                        for conn in conns:
                            conn.send(("epoch", epoch, learning_rate))
                        replies = self._collect_epoch(conns, processes)
                        elapsed = time.perf_counter() - started
                        self._record_epoch(
                            run, epoch_span, epoch, replies, elapsed
                        )
                    self.epoch_seconds.append(elapsed)
                    total_positives = sum(r["positives"] for r in replies)
                    loss = (
                        sum(r["loss_sum"] for r in replies) / total_positives
                        if total_positives
                        else 0.0
                    )
                    loss_history.append(loss)
                    latest_states = [r["rng_state"] for r in replies]
                    converged = loss_converged(
                        previous_loss, loss, config.convergence_tol
                    )
                    if checkpoint is not None:
                        checkpoint.maybe_save(
                            model,
                            epoch,
                            entry_rng_state=entry_rng_state,
                            metrics=run.metrics,
                            force=converged or epoch == config.epochs - 1,
                            worker_topology={
                                "workers": self.workers,
                                "entry_rng_states": entry_states,
                                "rng_states": latest_states,
                            },
                        )
                    log_epoch_progress(
                        logger,
                        epoch,
                        config.epochs,
                        loss=loss,
                        elapsed=elapsed,
                        lr=f"{learning_rate:.4g}",
                        workers=self.workers,
                    )
                    if converged:
                        logger.info("converged after %d epochs", epoch + 1)
                        break
                    previous_loss = loss
        finally:
            self._shutdown(processes, conns)
            final_embedding = shared.snapshot()
            shared.close()
            shared.unlink()
            model._embedding = final_embedding
        self._model = model
        return model

    @property
    def model(self) -> Inf2vecModel:
        """The model produced by the last :meth:`fit` call."""
        if self._model is None:
            raise TrainingError("HogwildTrainer has not been fitted yet")
        return self._model

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------

    def _resume_state(
        self, checkpoint: "CheckpointManager | None", resume: bool
    ) -> "TrainingState | None":
        """Resolve the checkpoint to resume from (``None`` = fresh start)."""
        if not resume:
            return None
        if checkpoint is None:
            raise TrainingError("resume=True requires a checkpoint manager")
        state = checkpoint.latest_state()
        if state is None:
            logger.info(
                "no usable checkpoint under %s; starting fresh",
                checkpoint.directory,
            )
            return None
        _, fingerprint = config_fingerprint(self.config)
        if state.config_fingerprint != fingerprint:
            raise CheckpointError(
                f"checkpoint fingerprint {state.config_fingerprint} does not "
                f"match this config's {fingerprint}; resume requires the "
                "identical hyper-parameter configuration"
            )
        topology = state.worker_topology
        if topology is None:
            raise CheckpointError(
                "checkpoint was written by the single-process engine; "
                "resume it with Inf2vecModel.fit"
            )
        if int(topology["workers"]) != self.workers:
            raise CheckpointError(
                f"checkpoint topology has {topology['workers']} workers but "
                f"this trainer runs {self.workers}; hogwild "
                "resume-equivalence holds only at a fixed worker count"
            )
        logger.info(
            "resuming from checkpoint at epoch %d (%s, %d workers)",
            state.epoch,
            checkpoint.directory,
            self.workers,
        )
        return state

    def _spawn_worker_rngs(self) -> list[np.random.Generator]:
        try:
            return list(self._rng.spawn(self.workers))
        except TypeError as exc:  # a Generator without a seed sequence
            raise TrainingError(
                "hogwild training needs a spawnable parent generator; "
                "construct the trainer with an int seed (or a Generator "
                "built by default_rng)"
            ) from exc

    # ------------------------------------------------------------------
    # Worker protocol
    # ------------------------------------------------------------------

    def _await_ready(
        self,
        conns: list["Connection"],
        processes: list[multiprocessing.Process],
        run: RunRecorder,
    ) -> None:
        """Block until every worker finished setup (corpus generation)."""
        metrics = run.metrics
        for worker_id, conn in enumerate(conns):
            reply = self._recv(conn, processes[worker_id], worker_id)
            if reply[0] != "ready":
                raise TrainingError(
                    f"worker {worker_id}: unexpected reply {reply[0]!r} "
                    "during setup"
                )
            if metrics.enabled:
                metrics.gauge(
                    "train.worker.contexts",
                    "contexts materialised per worker shard (0 = streaming)",
                ).set(reply[2], worker=worker_id)

    def _collect_epoch(
        self, conns: list["Connection"], processes: list[multiprocessing.Process]
    ) -> list[dict]:
        """One ``epoch_done`` reply per worker, ordered by worker id."""
        replies = []
        for worker_id, conn in enumerate(conns):
            reply = self._recv(conn, processes[worker_id], worker_id)
            if reply[0] != "epoch_done":
                raise TrainingError(
                    f"worker {worker_id}: unexpected reply {reply[0]!r} "
                    "during an epoch"
                )
            _, _, loss_sum, positives, seconds, rng_state = reply
            replies.append(
                {
                    "worker": worker_id,
                    "loss_sum": float(loss_sum),
                    "positives": int(positives),
                    "seconds": float(seconds),
                    "rng_state": rng_state,
                }
            )
        return replies

    def _recv(
        self,
        conn: "Connection",
        process: multiprocessing.Process,
        worker_id: int,
    ) -> tuple:
        """Receive one message, turning worker failures into errors."""
        try:
            reply = conn.recv()
        except (EOFError, OSError) as exc:
            raise TrainingError(
                f"worker {worker_id} died without reporting "
                f"(exit code {process.exitcode})"
            ) from exc
        if reply[0] == "error":
            raise TrainingError(f"worker {worker_id} failed: {reply[2]}")
        return reply

    def _shutdown(
        self, processes: list[multiprocessing.Process], conns: list["Connection"]
    ) -> None:
        """Best-effort stop + join; escalate to terminate/kill stragglers."""
        for conn in conns:
            try:
                conn.send(("stop",))
            except (OSError, ValueError):
                pass
        deadline = time.perf_counter() + _JOIN_TIMEOUT
        for process in processes:
            process.join(timeout=max(0.1, deadline - time.perf_counter()))
            if process.is_alive():
                logger.warning(
                    "worker %s did not stop in time; terminating", process.name
                )
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
        for conn in conns:
            conn.close()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _record_run_header(
        self, run: RunRecorder, graph: SocialGraph, log: ActionLog
    ) -> None:
        if not run.enabled:
            return
        run.set_config(self.config)
        run.set_dataset(
            num_users=graph.num_nodes,
            num_edges=graph.num_edges,
            num_episodes=len(log),
        )
        annotations: dict[str, object] = {"workers": self.workers}
        if self.stream_chunk is not None:
            annotations["stream_chunk"] = self.stream_chunk
        if self._seed_text is not None:
            annotations["seed"] = self._seed_text
        run.annotate(**annotations)

    def _record_epoch(
        self,
        run: RunRecorder,
        epoch_span,
        epoch: int,
        replies: list[dict],
        elapsed: float,
    ) -> None:
        """Per-epoch global + per-worker telemetry (enabled runs only)."""
        metrics = run.metrics
        if not metrics.enabled:
            return
        total_positives = sum(r["positives"] for r in replies)
        loss = (
            sum(r["loss_sum"] for r in replies) / total_positives
            if total_positives
            else 0.0
        )
        metrics.counter("train.epochs", "completed training epochs").inc()
        metrics.gauge("train.epoch.loss", "mean per-positive loss").set(
            loss, epoch=epoch
        )
        metrics.gauge(
            "train.epoch.examples_per_sec", "positive observations per second"
        ).set(total_positives / elapsed if elapsed > 0 else 0.0, epoch=epoch)
        for reply in replies:
            worker = reply["worker"]
            metrics.counter(
                "train.worker.examples",
                "positive observations trained, per worker",
            ).inc(reply["positives"], worker=worker)
            metrics.gauge(
                "train.worker.epoch_seconds",
                "in-worker wall-clock per epoch",
            ).set(reply["seconds"], worker=worker, epoch=epoch)
            metrics.gauge(
                "train.worker.loss",
                "mean per-positive loss of the worker's shard",
            ).set(
                reply["loss_sum"] / reply["positives"]
                if reply["positives"]
                else 0.0,
                worker=worker,
                epoch=epoch,
            )
        epoch_span.set_attribute("loss", loss)
        epoch_span.set_attribute("examples", total_positives)
        epoch_span.set_attribute("workers", self.workers)

    def __repr__(self) -> str:
        return (
            f"HogwildTrainer(workers={self.workers}, "
            f"stream_chunk={self.stream_chunk}, "
            f"start_method={self._start_method!r})"
        )
