"""Shared-memory parameter blocks for multi-process hogwild training.

Hogwild SGD (Niu et al., 2011) lets several workers apply sparse SGD
updates to one parameter store without locks; the sparse, scattered
Eq. 6 updates of Inf2vec make it a natural fit.  The parameter store
here is the four Inf2vec arrays (``S``, ``T``, ``b``, ``b̃``) placed in
:mod:`multiprocessing.shared_memory` blocks so every worker process
maps the *same* physical pages instead of a pickled copy.

:class:`SharedEmbedding` owns the lifecycle: the parent process
:meth:`~SharedEmbedding.create`\\ s the blocks from an initialised
:class:`~repro.core.embeddings.InfluenceEmbedding`, ships the tiny
picklable :class:`SharedEmbeddingSpec` to each worker, and each worker
:meth:`~SharedEmbedding.attach`\\ es read-write ndarray views.  Only the
creating side may :meth:`~SharedEmbedding.unlink`; every side must
:meth:`~SharedEmbedding.close` when done.  The OS-level blocks are also
registered with the interpreter's resource tracker, so even a crashed
parent does not leak ``/dev/shm`` segments forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.core.embeddings import InfluenceEmbedding
from repro.errors import TrainingError
from repro.utils.validation import check_positive_int

#: The four parameter families, in spec order.
PARAMETER_FIELDS = ("source", "target", "source_bias", "target_bias")


@dataclass(frozen=True)
class SharedEmbeddingSpec:
    """Picklable handle to the four shared parameter blocks.

    Workers receive this instead of the arrays themselves; attaching by
    name maps the parent's physical pages.  ``names`` follows
    :data:`PARAMETER_FIELDS` order.
    """

    names: tuple[str, str, str, str]
    num_users: int
    dim: int

    def __post_init__(self) -> None:
        if len(self.names) != len(PARAMETER_FIELDS):
            raise TrainingError(
                f"spec needs {len(PARAMETER_FIELDS)} block names, "
                f"got {len(self.names)}"
            )
        check_positive_int("num_users", self.num_users)
        check_positive_int("dim", self.dim)

    @property
    def shapes(self) -> tuple[tuple[int, ...], ...]:
        """Array shapes per field, in :data:`PARAMETER_FIELDS` order."""
        matrix = (self.num_users, self.dim)
        vector = (self.num_users,)
        return (matrix, matrix, vector, vector)


class SharedEmbedding:
    """The four Inf2vec parameter arrays backed by shared memory.

    Use :meth:`create` in the process that owns the lifecycle and
    :meth:`attach` in workers; :attr:`embedding` exposes the blocks as
    a normal :class:`InfluenceEmbedding` whose arrays are zero-copy
    views, so the existing SGD kernels run on shared pages unchanged.
    """

    def __init__(
        self,
        blocks: list[shared_memory.SharedMemory],
        spec: SharedEmbeddingSpec,
        owner: bool,
    ):
        self._blocks = blocks
        self._spec = spec
        self._owner = owner
        self._closed = False
        arrays = [
            np.ndarray(shape, dtype=np.float64, buffer=block.buf)
            for shape, block in zip(spec.shapes, blocks)
        ]
        self._embedding = InfluenceEmbedding(*arrays)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, embedding: InfluenceEmbedding) -> "SharedEmbedding":
        """Allocate the blocks and copy ``embedding`` into them."""
        sources = (
            embedding.source,
            embedding.target,
            embedding.source_bias,
            embedding.target_bias,
        )
        blocks: list[shared_memory.SharedMemory] = []
        try:
            for array in sources:
                block = shared_memory.SharedMemory(
                    create=True, size=int(array.nbytes)
                )
                blocks.append(block)
                view = np.ndarray(
                    array.shape, dtype=np.float64, buffer=block.buf
                )
                view[...] = array
        except BaseException:
            for block in blocks:
                block.close()
                block.unlink()
            raise
        spec = SharedEmbeddingSpec(
            names=tuple(block.name for block in blocks),
            num_users=int(embedding.num_users),
            dim=int(embedding.dim),
        )
        return cls(blocks, spec, owner=True)

    @classmethod
    def attach(cls, spec: SharedEmbeddingSpec) -> "SharedEmbedding":
        """Map the blocks named by ``spec`` (worker side, non-owning)."""
        blocks: list[shared_memory.SharedMemory] = []
        try:
            for name in spec.names:
                blocks.append(shared_memory.SharedMemory(name=name))
        except BaseException:
            for block in blocks:
                block.close()
            raise
        return cls(blocks, spec, owner=False)

    def close(self) -> None:
        """Unmap this process's views (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Views into the buffers must be dropped before the mapping
        # goes away, or SharedMemory.close() raises BufferError.
        self._embedding = None  # type: ignore[assignment]
        for block in self._blocks:
            block.close()

    def unlink(self) -> None:
        """Destroy the OS-level blocks (owner only; call after close)."""
        if not self._owner:
            raise TrainingError(
                "only the creating SharedEmbedding may unlink its blocks"
            )
        for block in self._blocks:
            block.unlink()

    def __enter__(self) -> "SharedEmbedding":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
        if self._owner:
            self.unlink()

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def spec(self) -> SharedEmbeddingSpec:
        """The picklable attach handle."""
        return self._spec

    @property
    def owner(self) -> bool:
        """Whether this instance created (and must unlink) the blocks."""
        return self._owner

    @property
    def embedding(self) -> InfluenceEmbedding:
        """Zero-copy :class:`InfluenceEmbedding` over the shared pages."""
        if self._embedding is None:
            raise TrainingError("SharedEmbedding is closed")
        return self._embedding

    def snapshot(self) -> InfluenceEmbedding:
        """A private (non-shared) copy of the current parameters."""
        embedding = self.embedding
        return InfluenceEmbedding(
            embedding.source.copy(),
            embedding.target.copy(),
            embedding.source_bias.copy(),
            embedding.target_bias.copy(),
        )

    def __repr__(self) -> str:
        role = "owner" if self._owner else "attached"
        return (
            f"SharedEmbedding(num_users={self._spec.num_users}, "
            f"dim={self._spec.dim}, {role})"
        )
