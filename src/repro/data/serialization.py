"""Whole-dataset persistence.

Synthetic datasets take seconds to minutes to generate at experiment
scale; persisting them (including the planted ground truth) makes
experiment suites resumable and lets results be audited against the
exact data that produced them.

Format: a single ``.npz`` archive holding the graph's edge array, the
action log as flat arrays, the planted parameters, and a version tag.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.data.synthetic import (
    CascadeConfig,
    GraphConfig,
    PlantedInfluence,
    SyntheticSocialDataset,
)
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import DataGenerationError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _log_to_arrays(log: ActionLog) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    users: list[int] = []
    items: list[int] = []
    times: list[float] = []
    for user, item, time in log.to_tuples():
        users.append(user)
        items.append(item)
        times.append(time)
    return (
        np.asarray(users, dtype=np.int64),
        np.asarray(items, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
    )


def save_dataset(dataset: SyntheticSocialDataset, path: PathLike) -> None:
    """Persist a synthetic dataset (graph, log, planted truth) to ``.npz``."""
    users, items, times = _log_to_arrays(dataset.log)
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        name=np.bytes_(dataset.name.encode("utf-8")),
        num_users=np.int64(dataset.graph.num_nodes),
        edges=dataset.graph.edge_array(),
        log_users=users,
        log_items=items,
        log_times=times,
        influence_ability=dataset.planted.influence_ability,
        conformity=dataset.planted.conformity,
        edge_probabilities=dataset.planted.edge_probabilities.values,
        user_interests=dataset.planted.user_interests,
        item_topics=dataset.planted.item_topics,
    )


def load_dataset(path: PathLike) -> SyntheticSocialDataset:
    """Load a dataset previously written by :func:`save_dataset`.

    The returned object carries the default configs (the generation
    parameters are not round-tripped; the generated *data* is what
    experiments consume).
    """
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise DataGenerationError(
                f"unsupported dataset format version {version} "
                f"(this library writes version {_FORMAT_VERSION})"
            )
        num_users = int(data["num_users"])
        graph = SocialGraph(num_users, data["edges"])
        log = ActionLog.from_tuples(
            zip(
                data["log_users"].tolist(),
                data["log_items"].tolist(),
                data["log_times"].tolist(),
            ),
            num_users,
        )
        planted = PlantedInfluence(
            influence_ability=data["influence_ability"],
            conformity=data["conformity"],
            edge_probabilities=EdgeProbabilities(
                graph, data["edge_probabilities"]
            ),
            user_interests=data["user_interests"],
            item_topics=data["item_topics"],
        )
        name = bytes(data["name"]).decode("utf-8")
    return SyntheticSocialDataset(
        graph=graph,
        log=log,
        planted=planted,
        graph_config=GraphConfig(num_users=num_users),
        cascade_config=CascadeConfig(
            num_items=max(1, planted.item_topics.shape[0])
        ),
        name=name,
    )
