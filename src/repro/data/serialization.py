"""Whole-dataset persistence.

Synthetic datasets take seconds to minutes to generate at experiment
scale; persisting them (including the planted ground truth) makes
experiment suites resumable and lets results be audited against the
exact data that produced them.

Format: a single ``.npz`` archive holding the graph's edge array, the
action log as flat arrays, the planted parameters, and a version tag.
Writes are atomic (see :mod:`repro.ckpt.atomic`), and
:func:`load_dataset` validates what it reads — edge endpoints inside
the user universe, aligned log arrays, edge-probability shape — so a
corrupt or hand-edited archive fails immediately with a
:class:`~repro.errors.DataGenerationError` instead of surfacing later
as a cryptic numpy index error.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.ckpt.atomic import atomic_output, ensure_suffix
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.data.synthetic import (
    CascadeConfig,
    GraphConfig,
    PlantedInfluence,
    SyntheticSocialDataset,
)
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import DataGenerationError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1

_REQUIRED_KEYS = (
    "format_version",
    "name",
    "num_users",
    "edges",
    "log_users",
    "log_items",
    "log_times",
    "influence_ability",
    "conformity",
    "edge_probabilities",
    "user_interests",
    "item_topics",
)


def _log_to_arrays(log: ActionLog) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    users: list[int] = []
    items: list[int] = []
    times: list[float] = []
    for user, item, time in log.to_tuples():
        users.append(user)
        items.append(item)
        times.append(time)
    return (
        np.asarray(users, dtype=np.int64),
        np.asarray(items, dtype=np.int64),
        np.asarray(times, dtype=np.float64),
    )


def save_dataset(dataset: SyntheticSocialDataset, path: PathLike) -> Path:
    """Atomically persist a synthetic dataset to ``.npz``.

    The ``.npz`` suffix is appended when missing (matching what
    :func:`load_dataset` will look for) and the final path is returned.
    An interrupted save never leaves a truncated archive behind.
    """
    users, items, times = _log_to_arrays(dataset.log)
    final = ensure_suffix(path, ".npz")
    with atomic_output(final) as tmp:
        np.savez_compressed(
            tmp,
            format_version=np.int64(_FORMAT_VERSION),
            name=np.bytes_(dataset.name.encode("utf-8")),
            num_users=np.int64(dataset.graph.num_nodes),
            edges=dataset.graph.edge_array(),
            log_users=users,
            log_items=items,
            log_times=times,
            influence_ability=dataset.planted.influence_ability,
            conformity=dataset.planted.conformity,
            edge_probabilities=dataset.planted.edge_probabilities.values,
            user_interests=dataset.planted.user_interests,
            item_topics=dataset.planted.item_topics,
        )
    return final


def _validate_archive(data: np.lib.npyio.NpzFile, path: Path) -> None:
    """Structural checks on a loaded archive (version checked separately)."""
    missing = [key for key in _REQUIRED_KEYS if key not in data.files]
    if missing:
        raise DataGenerationError(
            f"dataset archive {path} is missing fields {missing}"
        )
    num_users = int(data["num_users"])
    if num_users < 0:
        raise DataGenerationError(
            f"dataset archive {path} declares negative num_users {num_users}"
        )
    edges = np.asarray(data["edges"])
    if edges.size and (edges.ndim != 2 or edges.shape[1] != 2):
        raise DataGenerationError(
            f"dataset archive {path} has a malformed edge array of shape "
            f"{edges.shape} (expected (num_edges, 2))"
        )
    if edges.size and (edges.min() < 0 or edges.max() >= num_users):
        raise DataGenerationError(
            f"dataset archive {path} has edge endpoints outside "
            f"[0, {num_users})"
        )
    log_users = np.asarray(data["log_users"])
    log_items = np.asarray(data["log_items"])
    log_times = np.asarray(data["log_times"])
    if not (log_users.shape == log_items.shape == log_times.shape):
        raise DataGenerationError(
            f"dataset archive {path} has misaligned log arrays: "
            f"{log_users.shape} users, {log_items.shape} items, "
            f"{log_times.shape} times"
        )
    if log_users.size and (log_users.min() < 0 or log_users.max() >= num_users):
        raise DataGenerationError(
            f"dataset archive {path} references log users outside "
            f"[0, {num_users})"
        )
    num_edges = edges.shape[0] if edges.size else 0
    probabilities = np.asarray(data["edge_probabilities"])
    if probabilities.shape != (num_edges,):
        raise DataGenerationError(
            f"dataset archive {path} has edge probabilities of shape "
            f"{probabilities.shape} for {num_edges} edges"
        )


def load_dataset(path: PathLike) -> SyntheticSocialDataset:
    """Load and validate a dataset previously written by :func:`save_dataset`.

    The returned object carries the default configs (the generation
    parameters are not round-tripped; the generated *data* is what
    experiments consume).

    Raises
    ------
    DataGenerationError
        If the archive is unreadable, carries a foreign format version,
        or fails structural validation (edge endpoints outside
        ``[0, num_users)``, misaligned log arrays, edge-probability
        shape not matching the edge array).
    """
    final = ensure_suffix(path, ".npz")
    try:
        archive = np.load(final)
    except FileNotFoundError:
        raise
    except Exception as exc:  # truncated/not-a-zip/bad header
        raise DataGenerationError(
            f"cannot read dataset archive {final}: {exc}"
        ) from exc
    with archive as data:
        if "format_version" not in data.files:
            raise DataGenerationError(
                f"dataset archive {final} has no format_version tag"
            )
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise DataGenerationError(
                f"unsupported dataset format version {version} "
                f"(this library writes version {_FORMAT_VERSION})"
            )
        _validate_archive(data, final)
        num_users = int(data["num_users"])
        graph = SocialGraph(num_users, data["edges"])
        log = ActionLog.from_tuples(
            zip(
                data["log_users"].tolist(),
                data["log_items"].tolist(),
                data["log_times"].tolist(),
            ),
            num_users,
        )
        planted = PlantedInfluence(
            influence_ability=data["influence_ability"],
            conformity=data["conformity"],
            edge_probabilities=EdgeProbabilities(
                graph, data["edge_probabilities"]
            ),
            user_interests=data["user_interests"],
            item_topics=data["item_topics"],
        )
        name = bytes(data["name"]).decode("utf-8")
    return SyntheticSocialDataset(
        graph=graph,
        log=log,
        planted=planted,
        graph_config=GraphConfig(num_users=num_users),
        cascade_config=CascadeConfig(
            num_items=max(1, planted.item_topics.shape[0])
        ),
        name=name,
    )
