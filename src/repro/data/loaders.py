"""On-disk dataset formats.

Parsers and writers for the simple text formats the public Digg and
Flickr dumps ship in, so the real crawls drop into the pipeline when
available:

* **edge lists** — one ``source<sep>target`` pair per line (arbitrary
  string user names allowed; a :class:`UserIndex` maps them to dense
  IDs),
* **action logs** — one ``user<sep>item<sep>timestamp`` triple per
  line (Digg's ``digg_votes`` layout).

Lines starting with ``#`` and blank lines are skipped.  Both formats
round-trip through the matching ``write_*`` functions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.ckpt.atomic import atomic_output
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import ActionLogError, GraphError

PathLike = Union[str, Path]


class UserIndex:
    """Bidirectional mapping between external user names and dense IDs."""

    def __init__(self) -> None:
        self._to_id: dict[str, int] = {}
        self._to_name: list[str] = []

    def intern(self, name: str) -> int:
        """Return the dense ID for ``name``, assigning one if new."""
        existing = self._to_id.get(name)
        if existing is not None:
            return existing
        new_id = len(self._to_name)
        self._to_id[name] = new_id
        self._to_name.append(name)
        return new_id

    def id_of(self, name: str) -> int:
        """Dense ID of a known user name."""
        try:
            return self._to_id[name]
        except KeyError:
            raise GraphError(f"unknown user name {name!r}") from None

    def name_of(self, user_id: int) -> str:
        """External name of a dense ID."""
        if not 0 <= user_id < len(self._to_name):
            raise GraphError(f"user id {user_id} out of range")
        return self._to_name[user_id]

    def __len__(self) -> int:
        return len(self._to_name)

    def __contains__(self, name: str) -> bool:
        return name in self._to_id


def _data_lines(path: PathLike) -> Iterator[tuple[int, list[str]]]:
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            yield line_number, line.replace(",", " ").split()


def load_edge_list(
    path: PathLike,
    index: UserIndex | None = None,
    num_users: int | None = None,
) -> tuple[SocialGraph, UserIndex]:
    """Parse a ``source target`` edge-list file into a graph.

    Parameters
    ----------
    path:
        The edge-list file (whitespace- or comma-separated).
    index:
        Optional pre-populated :class:`UserIndex` shared with an action
        log so both files agree on IDs.
    num_users:
        Optional universe size; defaults to the number of distinct
        names seen (plus whatever ``index`` already holds).
    """
    index = index if index is not None else UserIndex()
    edges: list[tuple[int, int]] = []
    for line_number, fields in _data_lines(path):
        if len(fields) != 2:
            raise GraphError(
                f"{path}:{line_number}: expected 2 fields, got {len(fields)}"
            )
        source, target = fields
        if source == target:
            continue  # tolerate self-loops in third-party dumps
        edges.append((index.intern(source), index.intern(target)))
    total = num_users if num_users is not None else len(index)
    if total < len(index):
        raise GraphError(
            f"num_users={total} but the file references {len(index)} users"
        )
    return SocialGraph(total, edges), index


def load_action_log(
    path: PathLike,
    index: UserIndex,
    num_users: int | None = None,
    skip_unknown_users: bool = True,
) -> ActionLog:
    """Parse a ``user item timestamp`` file into an :class:`ActionLog`.

    Parameters
    ----------
    path:
        The votes/favourites file.
    index:
        User index from the matching edge list.
    num_users:
        Universe size; defaults to ``len(index)``.
    skip_unknown_users:
        The public Digg dump contains votes from users absent from the
        friendship graph; by default those records are dropped (the
        paper's influence pairs require graph membership anyway).  Set
        to ``False`` to raise instead.
    """
    records: list[tuple[int, int, float]] = []
    item_ids: dict[str, int] = {}
    for line_number, fields in _data_lines(path):
        if len(fields) != 3:
            raise ActionLogError(
                f"{path}:{line_number}: expected 3 fields, got {len(fields)}"
            )
        user_name, item_name, time_text = fields
        if user_name not in index:
            if skip_unknown_users:
                continue
            raise ActionLogError(
                f"{path}:{line_number}: unknown user {user_name!r}"
            )
        try:
            timestamp = float(time_text)
        except ValueError:
            raise ActionLogError(
                f"{path}:{line_number}: bad timestamp {time_text!r}"
            ) from None
        item_id = item_ids.setdefault(item_name, len(item_ids))
        records.append((index.id_of(user_name), item_id, timestamp))
    total = num_users if num_users is not None else len(index)
    # Deduplicate repeated votes, keeping the earliest per (user, item).
    earliest: dict[tuple[int, int], float] = {}
    for user, item, timestamp in records:
        key = (user, item)
        if key not in earliest or timestamp < earliest[key]:
            earliest[key] = timestamp
    deduped = [(u, i, t) for (u, i), t in earliest.items()]
    return ActionLog.from_tuples(deduped, total)


def write_edge_list(
    graph: SocialGraph, path: PathLike, index: UserIndex | None = None
) -> None:
    """Atomically write a graph back to the edge-list format.

    The write goes through :func:`repro.ckpt.atomic.atomic_output`, so
    an interrupted export never leaves a truncated edge list behind.
    """
    with atomic_output(path) as tmp:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("# source target\n")
            for source, target in graph.edges():
                if index is not None:
                    handle.write(
                        f"{index.name_of(source)} {index.name_of(target)}\n"
                    )
                else:
                    handle.write(f"{source} {target}\n")


def write_action_log(
    log: ActionLog, path: PathLike, index: UserIndex | None = None
) -> None:
    """Atomically write an action log back to the votes format.

    The write goes through :func:`repro.ckpt.atomic.atomic_output`, so
    an interrupted export never leaves a truncated log behind.
    """
    with atomic_output(path) as tmp:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write("# user item timestamp\n")
            for user, item, timestamp in log.to_tuples():
                name = index.name_of(user) if index is not None else str(user)
                handle.write(f"{name} {item} {timestamp!r}\n")


def load_dataset(
    edges_path: PathLike, actions_path: PathLike
) -> tuple[SocialGraph, ActionLog, UserIndex]:
    """Load a full (graph, log) dataset from the two standard files."""
    graph, index = load_edge_list(edges_path)
    log = load_action_log(actions_path, index, num_users=graph.num_nodes)
    return graph, log, index


def iter_fake_digg_lines(records: Iterable[tuple[str, str, float]]) -> Iterator[str]:
    """Format records as digg_votes-style lines (testing helper)."""
    for user, item, timestamp in records:
        yield f"{user} {item} {timestamp}"
