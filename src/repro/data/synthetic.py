"""Synthetic social-influence datasets.

The paper evaluates on two crawls — Digg (June 2009 votes) and Flickr
(favourite markings) — that are not redistributable and are far larger
than a single-core CI budget.  This module generates datasets that
reproduce the *statistical structure those crawls contribute to the
experiments*:

* **Power-law connectivity** — a directed preferential-attachment
  graph produces heavy-tailed in/out degrees, which in turn produce
  the power-law source/target influence-pair frequencies of Figs 1–2.

* **Planted influence process** — every edge carries a ground-truth
  probability ``P_uv = base * s_u * c_v`` where ``s_u`` (influence
  ability) and ``c_v`` (conformity) are heavy-tailed per-user factors;
  a handful of users are extremely influential, most are not.

* **Interest-driven spontaneous adoption** — users and items carry
  latent interest/topic vectors; per item, spontaneous adopters are
  sampled by interest affinity.  The *spontaneous share* knob controls
  Fig 3's CDF(0): ≈0.7 for the Digg-like preset, ≈0.5 for the
  Flickr-like preset, matching the paper's observation.

* **Timed cascades** — adoption events unfold in continuous time via
  an event-driven Independent-Cascade simulation, so episodes are
  chronologically ordered and influence pairs are well defined.

Because the generating process is known, experiments can also be scored
against *planted* ground truth (e.g. "does Inf2vec rank truly
influential users higher?"), which no real crawl allows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import DataGenerationError
from repro.utils.rng import RandomState, SeedLike, ensure_rng
from repro.utils.validation import (
    check_positive,
    check_positive_int,
    check_probability,
)


# ----------------------------------------------------------------------
# Graph generation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GraphConfig:
    """Directed preferential-attachment graph parameters.

    Each arriving node creates ``out_edges_per_node`` edges *to*
    existing nodes chosen proportionally to in-degree + 1, and
    ``in_edges_per_node`` edges *from* existing nodes chosen
    proportionally to out-degree + 1.  With probability ``reciprocity``
    each created edge is mirrored, mimicking mutual follow links.

    ``homophily`` biases attachment towards interest-similar users
    (attachment weight is multiplied by ``exp(homophily * cosine)``),
    reproducing the well-documented fact that social ties correlate
    with shared interests.  Homophily is what makes the influence-vs-
    interest disentanglement non-trivial: without it, a follower who
    does not adopt is trivially separable by interest alone.
    """

    num_users: int = 2000
    out_edges_per_node: int = 6
    in_edges_per_node: int = 6
    reciprocity: float = 0.3
    seed_core: int = 8
    homophily: float = 2.0

    def __post_init__(self) -> None:
        check_positive_int("num_users", self.num_users)
        check_positive_int("out_edges_per_node", self.out_edges_per_node)
        check_positive_int("in_edges_per_node", self.in_edges_per_node)
        check_probability("reciprocity", self.reciprocity)
        check_positive_int("seed_core", self.seed_core)
        if self.homophily < 0:
            raise DataGenerationError(
                f"homophily must be >= 0, got {self.homophily}"
            )
        if self.seed_core >= self.num_users:
            raise DataGenerationError(
                f"seed_core ({self.seed_core}) must be smaller than "
                f"num_users ({self.num_users})"
            )


def generate_power_law_graph(
    config: GraphConfig,
    seed: SeedLike = None,
    interests: np.ndarray | None = None,
) -> SocialGraph:
    """Directed preferential-attachment graph with heavy-tailed degrees.

    Parameters
    ----------
    config:
        Attachment parameters.
    seed:
        RNG seed/generator.
    interests:
        Optional ``(num_users, d)`` interest vectors enabling
        homophilous attachment; without them (or with
        ``config.homophily == 0``) attachment is purely preferential.
    """
    rng = ensure_rng(seed)
    n = config.num_users
    edges: set[tuple[int, int]] = set()

    if interests is not None:
        interests = np.asarray(interests, dtype=np.float64)
        if interests.shape[0] != n:
            raise DataGenerationError(
                f"interests has {interests.shape[0]} rows, expected {n}"
            )
        norms = np.linalg.norm(interests, axis=1)
        norms = np.where(norms > 0, norms, 1.0)
        directions = interests / norms[:, None]
    else:
        directions = None

    # Dense seed core so early attachment has somewhere to go.
    core = config.seed_core
    for u in range(core):
        for v in range(core):
            if u != v:
                edges.add((u, v))

    in_weight = np.ones(n)
    out_weight = np.ones(n)
    for u, v in edges:
        out_weight[u] += 1
        in_weight[v] += 1

    def _attach(node: int, count: int, weights: np.ndarray, upper: int) -> np.ndarray:
        candidate_weights = weights[:upper].copy()
        if directions is not None and config.homophily > 0:
            similarity = directions[:upper] @ directions[node]
            candidate_weights *= np.exp(config.homophily * similarity)
        probs = candidate_weights / candidate_weights.sum()
        size = min(count, upper)
        return rng.choice(upper, size=size, replace=False, p=probs)

    for node in range(core, n):
        # New node follows popular users (edge popular -> node means the
        # popular user influences the newcomer; the newcomer watches them).
        sources = _attach(node, config.in_edges_per_node, out_weight, node)
        for s in sources:
            s = int(s)
            edges.add((s, node))
            out_weight[s] += 1
            in_weight[node] += 1
            if rng.random() < config.reciprocity:
                edges.add((node, s))
                out_weight[node] += 1
                in_weight[s] += 1
        # Some existing users also follow the newcomer (fresh content).
        targets = _attach(node, config.out_edges_per_node, in_weight, node)
        for t in targets:
            t = int(t)
            edges.add((node, t))
            out_weight[node] += 1
            in_weight[t] += 1
            if rng.random() < config.reciprocity:
                edges.add((t, node))
                out_weight[t] += 1
                in_weight[node] += 1

    return SocialGraph(n, sorted(edges))


# ----------------------------------------------------------------------
# Planted influence parameters
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlantedInfluence:
    """Ground-truth parameters behind a synthetic dataset.

    Attributes
    ----------
    influence_ability:
        Heavy-tailed per-user factor ``s_u`` (mean ≈ 1).
    conformity:
        Heavy-tailed per-user factor ``c_v`` (mean ≈ 1).
    edge_probabilities:
        The true ``P_uv = clip(base * s_u * c_v, 0, cap)`` table used
        to generate the cascades.
    user_interests:
        ``(num_users, interest_dim)`` latent interest vectors.
    item_topics:
        ``(num_items, interest_dim)`` latent topic vectors.
    """

    influence_ability: np.ndarray
    conformity: np.ndarray
    edge_probabilities: EdgeProbabilities
    user_interests: np.ndarray
    item_topics: np.ndarray


@dataclass(frozen=True)
class CascadeConfig:
    """Cascade-simulation parameters.

    ``base_probability`` controls the branching factor and therefore
    the influenced share of adoptions (Fig 3's ``1 - CDF(0)``):
    a branching factor ``R ≈ avg_out_degree * mean(P)`` yields a
    spontaneous share of roughly ``1 - R`` while ``R < 1``.

    ``spread_model`` selects the diffusion substrate: ``"ic"``
    (Independent Cascade, the default) or ``"lt"`` (Linear Threshold,
    where the planted probabilities act as incoming-normalised
    weights scaled by ``lt_saturation``).  The LT variant exists to
    test the paper's claim that Inf2vec makes no spread-model
    assumption.
    """

    num_items: int = 300
    mean_spontaneous: float = 12.0
    base_probability: float = 0.025
    probability_cap: float = 0.8
    interest_dim: int = 8
    interest_temperature: float = 1.0
    pareto_shape: float = 1.6
    spontaneous_window: float = 100.0
    delay_scale: float = 1.0
    max_episode_size: Optional[int] = None
    spread_model: str = "ic"
    lt_saturation: float = 0.6

    def __post_init__(self) -> None:
        check_positive_int("num_items", self.num_items)
        check_positive("mean_spontaneous", self.mean_spontaneous)
        check_probability("base_probability", self.base_probability)
        check_probability("probability_cap", self.probability_cap)
        check_positive_int("interest_dim", self.interest_dim)
        check_positive("interest_temperature", self.interest_temperature)
        check_positive("pareto_shape", self.pareto_shape)
        check_positive("spontaneous_window", self.spontaneous_window)
        check_positive("delay_scale", self.delay_scale)
        if self.max_episode_size is not None:
            check_positive_int("max_episode_size", self.max_episode_size)
        if self.spread_model not in ("ic", "lt"):
            raise DataGenerationError(
                f"spread_model must be 'ic' or 'lt', got {self.spread_model!r}"
            )
        check_probability("lt_saturation", self.lt_saturation)


def _heavy_tailed_factors(
    num_users: int, shape: float, rng: RandomState
) -> np.ndarray:
    """Pareto-distributed positive factors rescaled to mean 1."""
    raw = rng.pareto(shape, size=num_users) + 1.0
    return raw / raw.mean()


def plant_influence(
    graph: SocialGraph,
    config: CascadeConfig,
    rng: RandomState,
    interests: np.ndarray | None = None,
) -> PlantedInfluence:
    """Draw the ground-truth influence parameters for ``graph``.

    ``interests`` lets the caller share one interest matrix between
    graph generation (homophily) and adoption (affinity); fresh vectors
    are drawn when omitted.
    """
    ability = _heavy_tailed_factors(graph.num_nodes, config.pareto_shape, rng)
    conformity = _heavy_tailed_factors(graph.num_nodes, config.pareto_shape, rng)
    edge_array = graph.edge_array()
    if edge_array.shape[0]:
        values = np.clip(
            config.base_probability
            * ability[edge_array[:, 0]]
            * conformity[edge_array[:, 1]],
            0.0,
            config.probability_cap,
        )
    else:
        values = np.empty(0)
    probabilities = EdgeProbabilities(graph, values)
    if interests is None:
        interests = rng.normal(size=(graph.num_nodes, config.interest_dim))
    topics = rng.normal(size=(config.num_items, config.interest_dim))
    return PlantedInfluence(
        influence_ability=ability,
        conformity=conformity,
        edge_probabilities=probabilities,
        user_interests=interests,
        item_topics=topics,
    )


# ----------------------------------------------------------------------
# Cascade simulation
# ----------------------------------------------------------------------


def _sample_spontaneous_adopters(
    affinity: np.ndarray, count: int, rng: RandomState
) -> np.ndarray:
    """Sample ``count`` distinct users weighted by interest affinity."""
    num_users = affinity.shape[0]
    count = min(count, num_users)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    shifted = affinity - affinity.max()
    weights = np.exp(shifted)
    probs = weights / weights.sum()
    return rng.choice(num_users, size=count, replace=False, p=probs)


def simulate_episode(
    planted: PlantedInfluence,
    item: int,
    config: CascadeConfig,
    rng: RandomState,
) -> DiffusionEpisode:
    """Event-driven timed IC cascade for one item.

    Spontaneous adopters (interest-sampled) receive uniform times in
    ``[0, spontaneous_window)``; every adoption then offers each
    not-yet-adopted out-neighbour an exponentially delayed adoption with
    the planted edge probability.  The earliest successful offer wins.
    """
    probabilities = planted.edge_probabilities
    num_users = probabilities.graph.num_nodes
    affinity = (
        planted.user_interests @ planted.item_topics[item]
    ) / config.interest_temperature

    spontaneous_count = int(rng.poisson(config.mean_spontaneous))
    spontaneous_count = max(spontaneous_count, 1)
    seeds = _sample_spontaneous_adopters(affinity, spontaneous_count, rng)

    # Priority queue of (time, tie_breaker, user).
    heap: list[tuple[float, int, int]] = []
    counter = 0
    for user in seeds:
        heapq.heappush(
            heap, (float(rng.uniform(0.0, config.spontaneous_window)), counter, int(user))
        )
        counter += 1

    adopted: dict[int, float] = {}
    cap = config.max_episode_size or num_users
    while heap and len(adopted) < cap:
        time, _, user = heapq.heappop(heap)
        if user in adopted:
            continue
        adopted[user] = time
        targets, probs = probabilities.out_edges(user)
        if targets.shape[0] == 0:
            continue
        coins = rng.random(targets.shape[0])
        hits = coins < probs
        for v in targets[hits]:
            v = int(v)
            if v in adopted:
                continue
            delay = float(rng.exponential(config.delay_scale)) + 1e-6
            heapq.heappush(heap, (time + delay, counter, v))
            counter += 1

    adoptions = sorted(adopted.items(), key=lambda kv: kv[1])
    return DiffusionEpisode(item, adoptions)


def simulate_episode_lt(
    planted: PlantedInfluence,
    item: int,
    config: CascadeConfig,
    rng: RandomState,
) -> DiffusionEpisode:
    """Timed Linear-Threshold cascade for one item.

    The planted probabilities become LT weights by normalising each
    node's incoming values to sum to ``lt_saturation`` (< 1, so not
    every exposure cascades).  Per-episode thresholds are drawn
    ``U[0, 1]``; rounds advance in unit time after the spontaneous
    window.  Exercises the paper's claim that Inf2vec is agnostic to
    the underlying spread model.
    """
    probabilities = planted.edge_probabilities
    graph = probabilities.graph
    num_users = graph.num_nodes
    affinity = (
        planted.user_interests @ planted.item_topics[item]
    ) / config.interest_temperature

    cap = config.max_episode_size or num_users
    spontaneous_count = max(1, int(rng.poisson(config.mean_spontaneous)))
    spontaneous_count = min(spontaneous_count, cap)
    seeds = _sample_spontaneous_adopters(affinity, spontaneous_count, rng)

    incoming_totals = np.zeros(num_users)
    edge_array = graph.edge_array()
    if edge_array.shape[0]:
        np.add.at(incoming_totals, edge_array[:, 1], probabilities.values)

    thresholds = rng.random(num_users)
    adopted: dict[int, float] = {
        int(user): float(rng.uniform(0.0, config.spontaneous_window))
        for user in seeds
    }
    pressure = np.zeros(num_users)
    frontier = list(adopted)
    round_time = config.spontaneous_window
    while frontier and len(adopted) < cap:
        next_frontier: list[int] = []
        for user in frontier:
            targets, values = probabilities.out_edges(user)
            for v, p in zip(targets, values):
                v = int(v)
                if v in adopted or incoming_totals[v] <= 0:
                    continue
                pressure[v] += config.lt_saturation * p / incoming_totals[v]
                if pressure[v] >= thresholds[v]:
                    adopted[v] = round_time + float(rng.random())
                    next_frontier.append(v)
                    if len(adopted) >= cap:
                        break
            if len(adopted) >= cap:
                break
        frontier = next_frontier
        round_time += 1.0

    adoptions = sorted(adopted.items(), key=lambda kv: kv[1])
    return DiffusionEpisode(item, adoptions)


# ----------------------------------------------------------------------
# Dataset façade
# ----------------------------------------------------------------------


@dataclass
class SyntheticSocialDataset:
    """A generated graph + action log + the planted ground truth.

    Use the :meth:`digg_like` / :meth:`flickr_like` presets for the
    paper's two dataset profiles, or :meth:`generate` for full control.
    """

    graph: SocialGraph
    log: ActionLog
    planted: PlantedInfluence
    graph_config: GraphConfig
    cascade_config: CascadeConfig
    name: str = "synthetic"

    @classmethod
    def generate(
        cls,
        graph_config: GraphConfig,
        cascade_config: CascadeConfig,
        seed: SeedLike = None,
        name: str = "synthetic",
    ) -> "SyntheticSocialDataset":
        """Generate a dataset from explicit configuration."""
        rng = ensure_rng(seed)
        interests = rng.normal(
            size=(graph_config.num_users, cascade_config.interest_dim)
        )
        graph = generate_power_law_graph(graph_config, rng, interests=interests)
        planted = plant_influence(graph, cascade_config, rng, interests=interests)
        simulate = (
            simulate_episode_lt
            if cascade_config.spread_model == "lt"
            else simulate_episode
        )
        episodes = []
        for item in range(cascade_config.num_items):
            episode = simulate(planted, item, cascade_config, rng)
            if len(episode) > 0:
                episodes.append(episode)
        log = ActionLog(episodes, graph.num_nodes)
        return cls(
            graph=graph,
            log=log,
            planted=planted,
            graph_config=graph_config,
            cascade_config=cascade_config,
            name=name,
        )

    @classmethod
    def digg_like(
        cls,
        num_users: int = 2000,
        num_items: int = 300,
        seed: SeedLike = None,
        **cascade_overrides,
    ) -> "SyntheticSocialDataset":
        """Digg profile: moderate density, ≈70% spontaneous adoptions.

        Paper's Digg: 68K users, 823K edges (avg out-degree ≈ 12),
        Fig 3 CDF(0) ≈ 0.7.  Scaled to ``num_users`` with the same
        density and branching-factor targets.
        """
        graph_config = GraphConfig(
            num_users=num_users,
            out_edges_per_node=5,
            in_edges_per_node=5,
            reciprocity=0.25,
        )
        cascade_config = replace(
            CascadeConfig(
                num_items=num_items,
                mean_spontaneous=max(6.0, num_users / 25),
                base_probability=0.003,
            ),
            **cascade_overrides,
        )
        return cls.generate(graph_config, cascade_config, seed, name="digg-like")

    @classmethod
    def flickr_like(
        cls,
        num_users: int = 2000,
        num_items: int = 250,
        seed: SeedLike = None,
        **cascade_overrides,
    ) -> "SyntheticSocialDataset":
        """Flickr profile: high density, ≈50% spontaneous adoptions.

        Paper's Flickr: 162K users, 10M edges (avg out-degree ≈ 63,
        much denser than Digg), Fig 3 CDF(0) ≈ 0.5.  The preset uses a
        denser graph and a higher branching factor.
        """
        graph_config = GraphConfig(
            num_users=num_users,
            out_edges_per_node=10,
            in_edges_per_node=10,
            reciprocity=0.35,
        )
        cascade_config = replace(
            CascadeConfig(
                num_items=num_items,
                mean_spontaneous=max(5.0, num_users / 40),
                base_probability=0.007,
                delay_scale=1.5,
            ),
            **cascade_overrides,
        )
        return cls.generate(graph_config, cascade_config, seed, name="flickr-like")

    def statistics(self) -> dict[str, int]:
        """Table-I style row: #users, #edges, #items, #actions."""
        return {
            "num_users": self.graph.num_nodes,
            "num_edges": self.graph.num_edges,
            "num_items": len(self.log),
            "num_actions": self.log.num_actions,
        }

    def __repr__(self) -> str:
        stats = self.statistics()
        return (
            f"SyntheticSocialDataset(name={self.name!r}, "
            f"users={stats['num_users']}, edges={stats['num_edges']}, "
            f"items={stats['num_items']}, actions={stats['num_actions']})"
        )
