"""Action logs and diffusion episodes.

The paper's action log ``A`` is a set of tuples ``(u, i, t)`` — user
``u`` performed action ``i`` (voted on story ``i``, favourited photo
``i``) at time ``t``.  Grouping by item yields one *diffusion episode*
``D_i`` per item: the chronologically ordered list of adopters.

The classes here enforce the invariants the algorithms rely on:

* episode adoptions are sorted by timestamp (ties broken by insertion
  order, matching how a crawl log would be replayed),
* a user adopts an item at most once per episode,
* all users referenced by a log fit inside a declared universe size so
  episodes can be matched against a :class:`repro.data.graph.SocialGraph`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ActionLogError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class Adoption:
    """A single ``(user, time)`` record inside a diffusion episode."""

    user: int
    time: float


class DiffusionEpisode:
    """Chronologically ordered adoptions of one item.

    Parameters
    ----------
    item:
        Item identifier (dense int in generated data; arbitrary int in
        loaded data).
    adoptions:
        Iterable of ``(user, time)`` pairs.  They are sorted by time on
        construction (stable, so equal-time records keep input order).

    Raises
    ------
    ActionLogError
        If a user appears twice or any field is malformed.

    Examples
    --------
    >>> ep = DiffusionEpisode(7, [(3, 2.0), (1, 1.0), (2, 5.0)])
    >>> ep.users.tolist()
    [1, 3, 2]
    >>> ep.position(3)
    1
    """

    __slots__ = ("_item", "_users", "_times", "_positions")

    def __init__(self, item: int, adoptions: Iterable[tuple[int, float]]):
        self._item = int(item)
        records = [(int(u), float(t)) for u, t in adoptions]
        for user, time in records:
            if user < 0:
                raise ActionLogError(f"user IDs must be >= 0, got {user}")
            if not np.isfinite(time):
                raise ActionLogError(f"timestamps must be finite, got {time!r}")
        records.sort(key=lambda record: record[1])
        users = [u for u, _ in records]
        seen: set[int] = set()
        for user in users:
            if user in seen:
                raise ActionLogError(
                    f"user {user} adopts item {item} more than once"
                )
            seen.add(user)
        self._users = np.asarray(users, dtype=np.int64)
        self._times = np.asarray([t for _, t in records], dtype=np.float64)
        self._positions = {user: idx for idx, user in enumerate(users)}

    @property
    def item(self) -> int:
        """Item identifier this episode diffuses."""
        return self._item

    @property
    def users(self) -> np.ndarray:
        """Adopting users in chronological order (int64 array)."""
        return self._users

    @property
    def times(self) -> np.ndarray:
        """Adoption timestamps, non-decreasing (float64 array)."""
        return self._times

    def __len__(self) -> int:
        return int(self._users.shape[0])

    def __iter__(self) -> Iterator[Adoption]:
        for user, time in zip(self._users, self._times):
            yield Adoption(int(user), float(time))

    def __contains__(self, user: int) -> bool:
        return int(user) in self._positions

    def position(self, user: int) -> int:
        """Chronological rank of ``user`` in this episode (0-based)."""
        try:
            return self._positions[int(user)]
        except KeyError:
            raise ActionLogError(
                f"user {user} did not adopt item {self._item}"
            ) from None

    def time_of(self, user: int) -> float:
        """Adoption timestamp of ``user``."""
        return float(self._times[self.position(user)])

    def user_set(self) -> frozenset[int]:
        """Adopters as a frozen set (order-free membership queries)."""
        return frozenset(self._positions)

    def prefix(self, count: int) -> np.ndarray:
        """The first ``count`` adopters in chronological order."""
        if count < 0:
            raise ActionLogError(f"prefix count must be >= 0, got {count}")
        return self._users[:count].copy()

    def __repr__(self) -> str:
        return f"DiffusionEpisode(item={self._item}, size={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiffusionEpisode):
            return NotImplemented
        return (
            self._item == other._item
            and np.array_equal(self._users, other._users)
            and np.array_equal(self._times, other._times)
        )


class ActionLog:
    """A collection of diffusion episodes over a shared user universe.

    Parameters
    ----------
    episodes:
        The diffusion episodes.  Items must be distinct.
    num_users:
        Size of the user universe; every adopter must satisfy
        ``0 <= user < num_users``.  This ties the log to a
        :class:`~repro.data.graph.SocialGraph` of the same size.
    """

    def __init__(self, episodes: Iterable[DiffusionEpisode], num_users: int):
        self._episodes = list(episodes)
        self._num_users = int(num_users)
        if self._num_users < 0:
            raise ActionLogError(f"num_users must be >= 0, got {num_users}")
        items = [ep.item for ep in self._episodes]
        if len(set(items)) != len(items):
            raise ActionLogError("episode items must be distinct")
        for ep in self._episodes:
            if len(ep) and int(ep.users.max()) >= self._num_users:
                raise ActionLogError(
                    f"episode {ep.item} references user {int(ep.users.max())} "
                    f">= num_users={self._num_users}"
                )
        self._by_item = {ep.item: ep for ep in self._episodes}

    @classmethod
    def from_tuples(
        cls, records: Iterable[tuple[int, int, float]], num_users: int
    ) -> "ActionLog":
        """Build a log from raw ``(user, item, time)`` tuples."""
        grouped: dict[int, list[tuple[int, float]]] = {}
        for user, item, time in records:
            grouped.setdefault(int(item), []).append((int(user), float(time)))
        episodes = [
            DiffusionEpisode(item, adoptions)
            for item, adoptions in sorted(grouped.items())
        ]
        return cls(episodes, num_users)

    @property
    def num_users(self) -> int:
        """Size of the user universe."""
        return self._num_users

    @property
    def episodes(self) -> list[DiffusionEpisode]:
        """Episodes in construction order (shallow copy)."""
        return list(self._episodes)

    def __len__(self) -> int:
        return len(self._episodes)

    def __iter__(self) -> Iterator[DiffusionEpisode]:
        return iter(self._episodes)

    def __getitem__(self, item: int) -> DiffusionEpisode:
        try:
            return self._by_item[int(item)]
        except KeyError:
            raise ActionLogError(f"no episode for item {item}") from None

    def items(self) -> list[int]:
        """All item identifiers in construction order."""
        return [ep.item for ep in self._episodes]

    @property
    def num_actions(self) -> int:
        """Total number of ``(user, item, time)`` records."""
        return sum(len(ep) for ep in self._episodes)

    def to_tuples(self) -> list[tuple[int, int, float]]:
        """Flatten back to ``(user, item, time)`` tuples."""
        return [
            (int(adoption.user), ep.item, float(adoption.time))
            for ep in self._episodes
            for adoption in ep
        ]

    def restrict_items(self, items: Sequence[int]) -> "ActionLog":
        """A new log containing only the requested items, in given order."""
        return ActionLog([self[item] for item in items], self._num_users)

    def active_users(self) -> np.ndarray:
        """Sorted array of users appearing in at least one episode."""
        if not self._episodes:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate([ep.users for ep in self._episodes]))

    def user_action_counts(self) -> np.ndarray:
        """Number of adoptions per user, shape ``(num_users,)``."""
        counts = np.zeros(self._num_users, dtype=np.int64)
        for ep in self._episodes:
            counts[ep.users] += 1
        return counts

    def split(
        self,
        fractions: Sequence[float] = (0.8, 0.1, 0.1),
        seed: SeedLike = None,
    ) -> tuple["ActionLog", ...]:
        """Randomly partition episodes into disjoint sub-logs.

        Follows the paper's protocol: "we randomly select 80% episodes
        as training set, 10% as tuning set, and 10% as test set"
        (Section V-A1).  Splitting is by *episode*, never by record.

        Parameters
        ----------
        fractions:
            Positive fractions summing to 1 (within 1e-9).
        seed:
            RNG seed/generator for the episode shuffle.

        Returns
        -------
        tuple of ActionLog
            One log per fraction, partitioning the episodes.
        """
        if not fractions:
            raise ActionLogError("fractions must be non-empty")
        if any(f <= 0 for f in fractions):
            raise ActionLogError(f"fractions must be positive, got {fractions}")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ActionLogError(f"fractions must sum to 1, got {sum(fractions)}")
        rng = ensure_rng(seed)
        order = rng.permutation(len(self._episodes))
        boundaries = np.floor(
            np.cumsum(np.asarray(fractions)) * len(self._episodes)
        ).astype(int)
        boundaries[-1] = len(self._episodes)  # absorb rounding into last split
        parts: list[ActionLog] = []
        start = 0
        for stop in boundaries:
            chosen = [self._episodes[i] for i in order[start:stop]]
            parts.append(ActionLog(chosen, self._num_users))
            start = stop
        return tuple(parts)

    def split_temporal(
        self, fractions: Sequence[float] = (0.8, 0.1, 0.1)
    ) -> tuple["ActionLog", ...]:
        """Partition episodes chronologically by their first adoption.

        A stricter alternative to the paper's random episode split:
        models train on the past and are tested on the future, which
        forbids any leakage through item co-occurrence.  Episodes are
        ordered by their earliest adoption time (empty episodes sort
        first); fractions behave exactly as in :meth:`split`.
        """
        if not fractions:
            raise ActionLogError("fractions must be non-empty")
        if any(f <= 0 for f in fractions):
            raise ActionLogError(f"fractions must be positive, got {fractions}")
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ActionLogError(f"fractions must sum to 1, got {sum(fractions)}")

        def start_time(episode: DiffusionEpisode) -> float:
            return float(episode.times[0]) if len(episode) else -np.inf

        ordered = sorted(self._episodes, key=start_time)
        boundaries = np.floor(
            np.cumsum(np.asarray(fractions)) * len(ordered)
        ).astype(int)
        if boundaries.size:
            boundaries[-1] = len(ordered)
        parts: list[ActionLog] = []
        start = 0
        for stop in boundaries:
            parts.append(ActionLog(ordered[start:stop], self._num_users))
            start = stop
        return tuple(parts)

    def statistics(self) -> Mapping[str, int]:
        """Table-I style summary: users, items, actions."""
        return {
            "num_users": self._num_users,
            "num_items": len(self._episodes),
            "num_actions": self.num_actions,
        }

    def __repr__(self) -> str:
        return (
            f"ActionLog(num_users={self._num_users}, "
            f"num_items={len(self)}, num_actions={self.num_actions})"
        )
