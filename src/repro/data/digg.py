"""Parsers for the public Digg 2009 dataset (Lerman & Ghosh, ICWSM'10).

The crawl the paper uses ships as two quoted CSV files:

* ``digg_friends.csv`` — ``"mutual","friend_date","user_id","friend_id"``:
  ``user_id`` lists ``friend_id`` as a friend, i.e. ``user_id`` watches
  ``friend_id``; influence flows ``friend_id -> user_id``.  When
  ``mutual`` is ``1`` the tie is reciprocal.
* ``digg_votes.csv`` — ``"date","voter_id","story_id"``: one vote per
  line, Unix timestamps.

These parsers accept exactly that layout (with or without header
lines) and emit the library's :class:`SocialGraph` / :class:`ActionLog`
pair, so the real crawl drops into every experiment via::

    graph, log, index = load_digg("digg_friends.csv", "digg_votes.csv")
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.data.loaders import UserIndex
from repro.errors import ActionLogError, GraphError

PathLike = Union[str, Path]


def _read_csv_rows(path: PathLike, expected_fields: int) -> list[list[str]]:
    rows: list[list[str]] = []
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for line_number, row in enumerate(reader, start=1):
            if not row or (len(row) == 1 and not row[0].strip()):
                continue
            if len(row) != expected_fields:
                raise GraphError(
                    f"{path}:{line_number}: expected {expected_fields} "
                    f"fields, got {len(row)}"
                )
            rows.append([field.strip() for field in row])
    return rows


def _looks_like_header(row: list[str]) -> bool:
    """Whether a first row is the documented column-name header."""
    names = {field.lower() for field in row}
    return bool(names & {"mutual", "friend_date", "date", "voter_id", "story_id"})


def load_digg_friends(
    path: PathLike, index: UserIndex | None = None
) -> tuple[SocialGraph, UserIndex]:
    """Parse ``digg_friends.csv`` into a directed influence graph.

    ``user_id`` watches ``friend_id``, so the emitted edge is
    ``friend_id -> user_id`` (influence direction); mutual ties emit
    both directions.
    """
    index = index if index is not None else UserIndex()
    edges: list[tuple[int, int]] = []
    rows = _read_csv_rows(path, 4)
    for row_number, row in enumerate(rows, start=1):
        if row_number == 1 and _looks_like_header(row):
            continue
        mutual_text, _friend_date, user_text, friend_text = row
        try:
            mutual = int(mutual_text)
        except ValueError:
            raise GraphError(
                f"{path}: row {row_number}: bad mutual flag {mutual_text!r}"
            ) from None
        user = index.intern(user_text)
        friend = index.intern(friend_text)
        if user == friend:
            continue
        edges.append((friend, user))
        if mutual:
            edges.append((user, friend))
    return SocialGraph(len(index), edges), index


def load_digg_votes(
    path: PathLike,
    index: UserIndex,
    num_users: int | None = None,
    skip_unknown_users: bool = True,
) -> ActionLog:
    """Parse ``digg_votes.csv`` into an :class:`ActionLog`.

    Repeated votes by the same user on the same story keep the
    earliest timestamp; voters absent from the friendship graph are
    dropped by default (they cannot participate in influence pairs).
    """
    rows = _read_csv_rows(path, 3)
    records: list[tuple[int, int, float]] = []
    story_ids: dict[str, int] = {}
    for row_number, row in enumerate(rows, start=1):
        if row_number == 1 and _looks_like_header(row):
            continue
        date_text, voter_text, story_text = row
        if voter_text not in index:
            if skip_unknown_users:
                continue
            raise ActionLogError(
                f"{path}: row {row_number}: unknown voter {voter_text!r}"
            )
        try:
            timestamp = float(date_text)
        except ValueError:
            raise ActionLogError(
                f"{path}: row {row_number}: bad timestamp {date_text!r}"
            ) from None
        story = story_ids.setdefault(story_text, len(story_ids))
        records.append((index.id_of(voter_text), story, timestamp))

    earliest: dict[tuple[int, int], float] = {}
    for user, item, timestamp in records:
        key = (user, item)
        if key not in earliest or timestamp < earliest[key]:
            earliest[key] = timestamp
    total = num_users if num_users is not None else len(index)
    return ActionLog.from_tuples(
        [(u, i, t) for (u, i), t in earliest.items()], total
    )


def load_digg(
    friends_path: PathLike, votes_path: PathLike
) -> tuple[SocialGraph, ActionLog, UserIndex]:
    """Load the full Digg 2009 dataset (friendship graph + votes)."""
    graph, index = load_digg_friends(friends_path)
    log = load_digg_votes(votes_path, index, num_users=graph.num_nodes)
    return graph, log, index
