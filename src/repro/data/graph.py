"""Directed social-network graph.

The paper models a social network as a directed graph ``G = (V, E)``
where an edge ``(u, v)`` means *v follows u* / *v lists u as a friend*,
so activity flows from ``u`` to ``v`` and ``v`` can be influenced by
``u`` (Section III of the paper).

:class:`SocialGraph` stores the edges twice in CSR (compressed sparse
row) form — once grouped by source for out-neighbour queries, once
grouped by target for in-neighbour queries — because both directions
sit on hot paths: cascade simulation expands *out*-neighbours, while
the activation-prediction protocol and the DE baseline need
*in*-neighbours (who can influence me / my in-degree).

Nodes are dense integer IDs ``0 .. num_nodes-1``; higher layers that
need string user names map them through :class:`repro.data.loaders`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GraphError


class SocialGraph:
    """Immutable directed graph with CSR adjacency in both directions.

    Parameters
    ----------
    num_nodes:
        Number of nodes; node IDs are ``0 .. num_nodes - 1``.
    edges:
        Iterable of ``(source, target)`` pairs.  Duplicate edges are
        collapsed; self-loops are rejected because a user does not
        influence themself in any of the paper's models.

    Examples
    --------
    >>> g = SocialGraph(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
    >>> sorted(g.out_neighbors(0))
    [1, 2]
    >>> sorted(g.in_neighbors(2))
    [0, 1]
    >>> g.has_edge(0, 1), g.has_edge(1, 0)
    (True, False)
    """

    __slots__ = (
        "_num_nodes",
        "_num_edges",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
        "_edge_set",
    )

    def __init__(self, num_nodes: int, edges: Iterable[tuple[int, int]]):
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be >= 0, got {num_nodes}")
        self._num_nodes = int(num_nodes)

        edge_array = self._coerce_edges(edges)
        edge_array = self._validate_and_dedupe(edge_array)
        self._num_edges = int(edge_array.shape[0])

        self._out_indptr, self._out_indices = self._build_csr(
            edge_array[:, 0], edge_array[:, 1]
        )
        self._in_indptr, self._in_indices = self._build_csr(
            edge_array[:, 1], edge_array[:, 0]
        )
        # O(1) membership tests for has_edge(); kept as a Python set of
        # packed ints because edge counts in this library are modest.
        packed = edge_array[:, 0].astype(np.int64) * self._num_nodes + edge_array[:, 1]
        self._edge_set = frozenset(packed.tolist())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _coerce_edges(self, edges: Iterable[tuple[int, int]]) -> np.ndarray:
        if isinstance(edges, np.ndarray):
            edge_array = np.asarray(edges, dtype=np.int64)
            if edge_array.size == 0:
                return np.empty((0, 2), dtype=np.int64)
            if edge_array.ndim != 2 or edge_array.shape[1] != 2:
                raise GraphError(
                    f"edge array must have shape (m, 2), got {edge_array.shape}"
                )
            return edge_array
        edge_list = list(edges)
        if not edge_list:
            return np.empty((0, 2), dtype=np.int64)
        try:
            edge_array = np.asarray(edge_list, dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise GraphError(f"edges must be (int, int) pairs: {exc}") from exc
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphError(
                f"edges must be (source, target) pairs, got shape {edge_array.shape}"
            )
        return edge_array

    def _validate_and_dedupe(self, edge_array: np.ndarray) -> np.ndarray:
        if edge_array.shape[0] == 0:
            return edge_array
        lo = edge_array.min()
        hi = edge_array.max()
        if lo < 0 or hi >= self._num_nodes:
            raise GraphError(
                f"edge endpoints must lie in [0, {self._num_nodes}), "
                f"found range [{lo}, {hi}]"
            )
        if np.any(edge_array[:, 0] == edge_array[:, 1]):
            bad = edge_array[edge_array[:, 0] == edge_array[:, 1]][0, 0]
            raise GraphError(f"self-loops are not allowed (node {bad})")
        return np.unique(edge_array, axis=0)

    def _build_csr(
        self, group_by: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        order = np.argsort(group_by, kind="stable")
        sorted_values = values[order].astype(np.int64)
        counts = np.bincount(group_by, minlength=self._num_nodes).astype(np.int64)
        indptr = np.empty(self._num_nodes + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        return indptr, sorted_values

    @classmethod
    def from_edge_array(cls, num_nodes: int, edge_array: np.ndarray) -> "SocialGraph":
        """Build a graph from an ``(m, 2)`` integer array of edges."""
        return cls(num_nodes, edge_array)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of distinct directed edges ``|E|``."""
        return self._num_edges

    def nodes(self) -> range:
        """All node IDs as a range."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(source, target)`` pairs in source order."""
        for u in range(self._num_nodes):
            start, stop = self._out_indptr[u], self._out_indptr[u + 1]
            for v in self._out_indices[start:stop]:
                yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` int64 array in source order."""
        sources = np.repeat(
            np.arange(self._num_nodes, dtype=np.int64), self.out_degrees()
        )
        return np.column_stack([sources, self._out_indices])

    def _check_node(self, node: int) -> int:
        node = int(node)
        if not 0 <= node < self._num_nodes:
            raise GraphError(
                f"node {node} out of range [0, {self._num_nodes})"
            )
        return node

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``(source, target)`` exists."""
        source = self._check_node(source)
        target = self._check_node(target)
        return source * self._num_nodes + target in self._edge_set

    def out_neighbors(self, node: int) -> np.ndarray:
        """Targets of edges leaving ``node`` (read-only view)."""
        node = self._check_node(node)
        return self._out_indices[self._out_indptr[node] : self._out_indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """Sources of edges entering ``node`` (read-only view)."""
        node = self._check_node(node)
        return self._in_indices[self._in_indptr[node] : self._in_indptr[node + 1]]

    def out_degree(self, node: int) -> int:
        """Number of edges leaving ``node``."""
        node = self._check_node(node)
        return int(self._out_indptr[node + 1] - self._out_indptr[node])

    def in_degree(self, node: int) -> int:
        """Number of edges entering ``node``."""
        node = self._check_node(node)
        return int(self._in_indptr[node + 1] - self._in_indptr[node])

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every node as an int64 array."""
        return np.diff(self._out_indptr)

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node as an int64 array."""
        return np.diff(self._in_indptr)

    def out_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Out-adjacency as raw CSR ``(indptr, indices)`` arrays.

        ``indices[indptr[u]:indptr[u+1]]`` are the out-neighbours of
        ``u``.  Exposed for vectorised consumers (batched random walks,
        bulk pair extraction) that gather many nodes' neighbourhoods
        with fancy indexing instead of per-node method calls.  The
        returned arrays are the live internals — treat them as
        read-only.
        """
        return self._out_indptr, self._out_indices

    def in_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """In-adjacency as raw CSR ``(indptr, indices)`` arrays.

        ``indices[indptr[v]:indptr[v+1]]`` are the in-neighbours of
        ``v``.  See :meth:`out_csr` for the access contract.
        """
        return self._in_indptr, self._in_indices

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph_edges(self, nodes: Sequence[int]) -> np.ndarray:
        """Edges of the subgraph induced by ``nodes`` as an ``(m, 2)`` array.

        Node IDs in the result refer to the *original* graph; callers
        that want a compact relabelled graph can pass the result through
        :class:`repro.core.propagation.PropagationNetwork`-style
        relabelling.
        """
        node_set = {self._check_node(n) for n in nodes}
        found = [
            (u, int(v))
            for u in node_set
            for v in self.out_neighbors(u)
            if int(v) in node_set
        ]
        if not found:
            return np.empty((0, 2), dtype=np.int64)
        return np.asarray(sorted(found), dtype=np.int64)

    def reverse(self) -> "SocialGraph":
        """Return the graph with every edge direction flipped."""
        flipped = self.edge_array()[:, ::-1]
        return SocialGraph(self._num_nodes, np.ascontiguousarray(flipped))

    def __repr__(self) -> str:
        return f"SocialGraph(num_nodes={self._num_nodes}, num_edges={self._num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SocialGraph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._edge_set == other._edge_set
        )

    def __hash__(self) -> int:
        return hash((self._num_nodes, self._edge_set))
