"""Synthetic citation network for the paper's case study (Section V-D).

The original case study uses the DBLP-Citation-network V9 dump
restricted to data-engineering venues: 4,345 papers, 4,259 authors,
and 138,046 author-level influence relationships ("authors of the
cited paper influence authors of the citing paper").  The dump is not
redistributable offline, so this module generates a citation corpus
with the same structural ingredients:

* power-law author productivity (a few prolific authors),
* topical coherence (papers have topics; citations prefer topically
  close earlier papers),
* preferential citation (well-cited papers attract more citations),
* bursty, sparse author-pair observations (most author pairs share a
  single citation — the sparsity that defeats the conventional model).

The output is the exact input shape the case study needs: a
chronological list of author-level influence pairs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DataGenerationError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive_int


@dataclass(frozen=True)
class Paper:
    """One generated paper."""

    paper_id: int
    authors: tuple[int, ...]
    references: tuple[int, ...]
    topic: np.ndarray = field(repr=False, hash=False, compare=False)


@dataclass(frozen=True)
class CitationConfig:
    """Generator parameters.

    Defaults approximate the scale ratios of the DBLP subset used in
    the paper (papers ≈ authors, ≈30 author-level influence pairs per
    paper) at a CI-friendly size.
    """

    num_authors: int = 400
    num_papers: int = 1500
    topic_dim: int = 6
    mean_authors_per_paper: float = 1.8
    mean_references: float = 4.0
    topical_temperature: float = 0.3
    productivity_shape: float = 3.0
    preferential_weight: float = 0.1

    def __post_init__(self) -> None:
        check_positive_int("num_authors", self.num_authors)
        check_positive_int("num_papers", self.num_papers)
        check_positive_int("topic_dim", self.topic_dim)
        if self.mean_authors_per_paper < 1:
            raise DataGenerationError("mean_authors_per_paper must be >= 1")
        if self.mean_references <= 0:
            raise DataGenerationError("mean_references must be > 0")
        if self.topical_temperature <= 0:
            raise DataGenerationError("topical_temperature must be > 0")
        if self.productivity_shape <= 0:
            raise DataGenerationError("productivity_shape must be > 0")
        if self.preferential_weight < 0:
            raise DataGenerationError("preferential_weight must be >= 0")


@dataclass(frozen=True)
class CitationPair:
    """One author-level influence observation: ``source`` is cited by
    (and so influences) ``target``; ``time`` orders observations by the
    citing paper's publication index."""

    source: int
    target: int
    time: int


class CitationDataset:
    """A generated citation corpus plus its author influence pairs."""

    def __init__(
        self,
        config: CitationConfig,
        papers: list[Paper],
        pairs: list[CitationPair],
    ):
        self.config = config
        self.papers = papers
        self.pairs = pairs

    @classmethod
    def generate(
        cls, config: CitationConfig | None = None, seed: SeedLike = None
    ) -> "CitationDataset":
        """Generate papers chronologically and derive influence pairs."""
        config = config if config is not None else CitationConfig()
        rng = ensure_rng(seed)

        author_topics = rng.normal(size=(config.num_authors, config.topic_dim))
        productivity = rng.pareto(config.productivity_shape, config.num_authors) + 1.0
        author_probs = productivity / productivity.sum()

        papers: list[Paper] = []
        pairs: list[CitationPair] = []
        citation_counts = np.zeros(config.num_papers)
        topics = np.zeros((config.num_papers, config.topic_dim))

        for paper_id in range(config.num_papers):
            team_size = max(1, int(rng.poisson(config.mean_authors_per_paper - 1)) + 1)
            team_size = min(team_size, config.num_authors)
            authors = rng.choice(
                config.num_authors, size=team_size, replace=False, p=author_probs
            )
            topic = author_topics[authors].mean(axis=0) + 0.3 * rng.normal(
                size=config.topic_dim
            )
            topics[paper_id] = topic

            references: tuple[int, ...] = ()
            if paper_id > 0:
                candidates = np.arange(paper_id)
                similarity = topics[:paper_id] @ topic / config.topical_temperature
                similarity -= similarity.max()
                weights = np.exp(similarity) * (
                    1.0 + config.preferential_weight * citation_counts[:paper_id]
                )
                probs = weights / weights.sum()
                num_refs = min(
                    paper_id, max(1, int(rng.poisson(config.mean_references)))
                )
                references = tuple(
                    int(r)
                    for r in rng.choice(
                        candidates, size=num_refs, replace=False, p=probs
                    )
                )
                citation_counts[list(references)] += 1

            paper = Paper(
                paper_id=paper_id,
                authors=tuple(int(a) for a in authors),
                references=references,
                topic=topic,
            )
            papers.append(paper)

            # Author-level influence: cited authors -> citing authors.
            for reference in references:
                for cited_author in papers[reference].authors:
                    for citing_author in paper.authors:
                        if cited_author != citing_author:
                            pairs.append(
                                CitationPair(
                                    source=int(cited_author),
                                    target=int(citing_author),
                                    time=paper_id,
                                )
                            )
        return cls(config, papers, pairs)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    @property
    def num_authors(self) -> int:
        """Size of the author universe."""
        return self.config.num_authors

    @property
    def num_pairs(self) -> int:
        """Total author-level influence observations."""
        return len(self.pairs)

    def papers_per_author(self) -> np.ndarray:
        """Number of papers per author (the case study picks the top-3)."""
        counts = np.zeros(self.num_authors, dtype=np.int64)
        for paper in self.papers:
            for author in paper.authors:
                counts[author] += 1
        return counts

    def pair_multiset(self) -> Counter:
        """``Counter`` of ``(source, target)`` pair multiplicities."""
        return Counter((p.source, p.target) for p in self.pairs)

    def split(
        self, train_fraction: float = 0.8, seed: SeedLike = None
    ) -> tuple[list[CitationPair], list[CitationPair]]:
        """Randomly split the influence pairs into train/test lists.

        Matches the paper: "We randomly select 80% as training set, and
        20% as test set."
        """
        check_fraction("train_fraction", train_fraction)
        rng = ensure_rng(seed)
        order = rng.permutation(len(self.pairs))
        cut = int(len(self.pairs) * train_fraction)
        train = [self.pairs[i] for i in order[:cut]]
        test = [self.pairs[i] for i in order[cut:]]
        return train, test

    def statistics(self) -> dict[str, int]:
        """Case-study summary: papers, authors, influence pairs."""
        return {
            "num_papers": len(self.papers),
            "num_authors": self.num_authors,
            "num_pairs": self.num_pairs,
            "num_distinct_pairs": len(self.pair_multiset()),
        }

    def __repr__(self) -> str:
        stats = self.statistics()
        return (
            f"CitationDataset(papers={stats['num_papers']}, "
            f"authors={stats['num_authors']}, pairs={stats['num_pairs']})"
        )
