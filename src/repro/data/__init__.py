"""Data substrates: graphs, action logs, synthetic generators, loaders."""

from repro.data.actionlog import ActionLog, Adoption, DiffusionEpisode
from repro.data.citation import CitationConfig, CitationDataset, CitationPair
from repro.data.digg import load_digg, load_digg_friends, load_digg_votes
from repro.data.graph import SocialGraph
from repro.data.loaders import (
    UserIndex,
    load_action_log,
    load_edge_list,
    write_action_log,
    write_edge_list,
)
from repro.data.serialization import load_dataset, save_dataset
from repro.data.synthetic import (
    CascadeConfig,
    GraphConfig,
    PlantedInfluence,
    SyntheticSocialDataset,
    generate_power_law_graph,
    simulate_episode,
    simulate_episode_lt,
)

__all__ = [
    "ActionLog",
    "Adoption",
    "DiffusionEpisode",
    "CitationConfig",
    "CitationDataset",
    "CitationPair",
    "load_digg",
    "load_digg_friends",
    "load_digg_votes",
    "SocialGraph",
    "UserIndex",
    "load_action_log",
    "load_edge_list",
    "write_action_log",
    "write_edge_list",
    "load_dataset",
    "save_dataset",
    "CascadeConfig",
    "GraphConfig",
    "PlantedInfluence",
    "SyntheticSocialDataset",
    "generate_power_law_graph",
    "simulate_episode",
    "simulate_episode_lt",
]
