"""Wall-clock timing helpers used by the efficiency experiments (Fig 9).

.. deprecated::
    New instrumentation should prefer :mod:`repro.obs` — nestable
    ``span()`` timings plus metrics land in one run manifest instead of
    loose floats.  ``Timer``/``timed`` remain supported for simple
    standalone measurements and for callers that predate ``repro.obs``
    (the Fig 9 experiment itself now reads stage timings from spans).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A single :class:`Timer` can time several non-overlapping intervals;
    ``elapsed`` is their sum.  Used to measure per-iteration training
    cost for the Fig 9 reproduction.

    Examples
    --------
    >>> t = Timer()
    >>> with t.measure():
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    >>> t.intervals
    1
    """

    elapsed: float = 0.0
    intervals: int = 0
    _start: float | None = field(default=None, repr=False)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        """Context manager adding the block's duration to ``elapsed``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.elapsed += time.perf_counter() - start
            self.intervals += 1

    @property
    def mean(self) -> float:
        """Mean interval duration in seconds (0.0 before any interval)."""
        if self.intervals == 0:
            return 0.0
        return self.elapsed / self.intervals

    def reset(self) -> None:
        """Zero the accumulated time and interval count."""
        self.elapsed = 0.0
        self.intervals = 0

    def merge(self, other: "Timer") -> "Timer":
        """Fold another timer's intervals into this one and return self.

        Lets per-worker or per-stage timers be combined into one
        aggregate before reporting, mirroring how span durations roll
        up in :mod:`repro.obs.tracing`.
        """
        self.elapsed += other.elapsed
        self.intervals += other.intervals
        return self


def timed(func: Callable[[], T]) -> tuple[T, float]:
    """Run ``func`` once and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
