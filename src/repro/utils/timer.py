"""Wall-clock timing helpers used by the efficiency experiments (Fig 9)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A single :class:`Timer` can time several non-overlapping intervals;
    ``elapsed`` is their sum.  Used to measure per-iteration training
    cost for the Fig 9 reproduction.

    Examples
    --------
    >>> t = Timer()
    >>> with t.measure():
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    >>> t.intervals
    1
    """

    elapsed: float = 0.0
    intervals: int = 0
    _start: float | None = field(default=None, repr=False)

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        """Context manager adding the block's duration to ``elapsed``."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.elapsed += time.perf_counter() - start
            self.intervals += 1

    @property
    def mean(self) -> float:
        """Mean interval duration in seconds (0.0 before any interval)."""
        if self.intervals == 0:
            return 0.0
        return self.elapsed / self.intervals

    def reset(self) -> None:
        """Zero the accumulated time and interval count."""
        self.elapsed = 0.0
        self.intervals = 0


def timed(func: Callable[[], T]) -> tuple[T, float]:
    """Run ``func`` once and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
