"""Input-validation helpers.

Thin wrappers that turn out-of-range hyper-parameters into clear
:class:`ValueError`/:class:`TypeError` messages at API boundaries,
instead of NaNs deep inside training loops.
"""

from __future__ import annotations

import numbers
from typing import Any

import numpy as np


def _check_real(name: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, numbers.Real):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    as_float = float(value)
    if not np.isfinite(as_float):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return as_float


def check_positive(name: str, value: Any) -> float:
    """Validate that ``value`` is a finite real number > 0 and return it."""
    as_float = _check_real(name, value)
    if as_float <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return as_float


def check_positive_int(name: str, value: Any) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    as_int = int(value)
    if as_int < 1:
        raise ValueError(f"{name} must be >= 1, got {value!r}")
    return as_int


def check_non_negative_int(name: str, value: Any) -> int:
    """Validate that ``value`` is an integer >= 0 and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    as_int = int(value)
    if as_int < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return as_int


def check_probability(name: str, value: Any) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    as_float = _check_real(name, value)
    if not 0.0 <= as_float <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return as_float


def check_fraction(name: str, value: Any) -> float:
    """Validate that ``value`` lies in the half-open interval (0, 1]."""
    as_float = _check_real(name, value)
    if not 0.0 < as_float <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value!r}")
    return as_float


def check_in_range(
    name: str, value: Any, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    as_float = _check_real(name, value)
    if inclusive:
        ok = low <= as_float <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < as_float < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValueError(f"{name} must lie in {bounds}, got {value!r}")
    return as_float
