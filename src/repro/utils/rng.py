"""Deterministic random-number plumbing.

Every stochastic component in this library (cascade simulation, random
walks, negative sampling, SGD shuffling, ...) accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``.  The
helpers here normalise those three spellings so components never call
:func:`numpy.random.default_rng` ad hoc, which keeps experiments
reproducible end to end.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: The canonical RNG type used throughout the library.
RandomState = np.random.Generator

#: Anything :func:`ensure_rng` accepts.
SeedLike = Union[None, int, np.integer, RandomState]


def ensure_rng(seed: SeedLike = None) -> RandomState:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an integer for a fresh deterministic
        generator, or an existing generator which is returned as-is
        (so a caller can thread one generator through a pipeline).

    Raises
    ------
    TypeError
        If ``seed`` is none of the accepted types.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


#: Bit-generator classes a captured state may name (the seeded families
#: the repo's no-global-rng invariant allows).
_BIT_GENERATORS = {
    "PCG64": np.random.PCG64,
    "PCG64DXSM": np.random.PCG64DXSM,
    "MT19937": np.random.MT19937,
    "Philox": np.random.Philox,
    "SFC64": np.random.SFC64,
}


def generator_from_state(state: dict) -> RandomState:
    """Rebuild a :class:`~numpy.random.Generator` from a captured bit-state.

    ``state`` is a ``Generator.bit_generator.state`` dict (as stored in
    checkpoints and shipped to hogwild workers); the matching
    bit-generator class is instantiated and its state installed, so the
    returned generator continues the captured stream exactly.

    Raises
    ------
    ValueError
        If the state does not name a known bit generator.
    """
    if not isinstance(state, dict) or "bit_generator" not in state:
        raise ValueError("RNG state must be a bit-generator state dict")
    name = state["bit_generator"]
    try:
        bit_cls = _BIT_GENERATORS[name]
    except KeyError:
        raise ValueError(f"unknown bit generator {name!r}") from None
    bit = bit_cls()
    bit.state = state
    return np.random.Generator(bit)


def spawn_rngs(seed: SeedLike, count: int) -> list[RandomState]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Uses :meth:`numpy.random.Generator.spawn` so the children are
    independent streams regardless of how many draws the parent makes.

    Parameters
    ----------
    seed:
        Seed or generator for the parent stream.
    count:
        Number of child generators; must be non-negative.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(seed)
    return list(parent.spawn(count))
