"""Logging configuration for the library.

The library only ever attaches a :class:`logging.NullHandler` at import
time (standard library etiquette); applications opt into console output
via :func:`configure_logging`.
"""

from __future__ import annotations

import logging
import sys

PACKAGE_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the package logger.

    ``get_logger("core.inf2vec")`` yields the ``repro.core.inf2vec``
    logger, so one call to :func:`configure_logging` controls the whole
    library.
    """
    if name.startswith(PACKAGE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the package logger (idempotent).

    Returns the package root logger so callers can tweak it further.
    """
    root = logging.getLogger(PACKAGE_LOGGER_NAME)
    root.setLevel(level)
    has_stream_handler = any(
        isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
        for handler in root.handlers
    )
    if not has_stream_handler:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
        root.addHandler(handler)
    return root


def log_epoch_progress(
    log: logging.Logger,
    epoch: int,
    total: int,
    loss: float | None = None,
    elapsed: float | None = None,
    **extras: object,
) -> None:
    """Emit one uniform per-epoch DEBUG progress line.

    All iterative trainers (core model, EM baselines, BPR, per-topic
    extensions) report through this helper so the epoch cadence reads
    identically across the library::

        epoch 3/10: loss=0.412310 elapsed=1.02s lr=0.0225

    ``loss``/``elapsed`` are optional — EM loops that track a
    convergence delta instead pass it via ``extras``.  The message is
    only assembled when DEBUG is actually enabled.
    """
    if not log.isEnabledFor(logging.DEBUG):
        return
    parts = [f"epoch {epoch + 1}/{total}"]
    if loss is not None:
        parts.append(f"loss={loss:.6f}")
    if elapsed is not None:
        parts.append(f"elapsed={elapsed:.2f}s")
    parts.extend(f"{key}={value}" for key, value in extras.items())
    log.debug("%s: %s", parts[0], " ".join(parts[1:]) or "done")


# Library etiquette: silence "No handlers could be found" warnings.
logging.getLogger(PACKAGE_LOGGER_NAME).addHandler(logging.NullHandler())
