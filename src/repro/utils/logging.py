"""Logging configuration for the library.

The library only ever attaches a :class:`logging.NullHandler` at import
time (standard library etiquette); applications opt into console output
via :func:`configure_logging`.
"""

from __future__ import annotations

import logging
import sys

PACKAGE_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"
_DATE_FORMAT = "%H:%M:%S"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the package logger.

    ``get_logger("core.inf2vec")`` yields the ``repro.core.inf2vec``
    logger, so one call to :func:`configure_logging` controls the whole
    library.
    """
    if name.startswith(PACKAGE_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{PACKAGE_LOGGER_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stderr handler to the package logger (idempotent).

    Returns the package root logger so callers can tweak it further.
    """
    root = logging.getLogger(PACKAGE_LOGGER_NAME)
    root.setLevel(level)
    has_stream_handler = any(
        isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
        for handler in root.handlers
    )
    if not has_stream_handler:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt=_DATE_FORMAT))
        root.addHandler(handler)
    return root


# Library etiquette: silence "No handlers could be found" warnings.
logging.getLogger(PACKAGE_LOGGER_NAME).addHandler(logging.NullHandler())
