"""Shared utilities: deterministic RNG plumbing, timers, logging, validation."""

from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "timed",
    "check_fraction",
    "check_in_range",
    "check_non_negative_int",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
