"""``python -m repro`` — delegates to :mod:`repro.cli`.

Makes the documented spellings ``python -m repro serve ...`` and
``python -m repro train ...`` work alongside the original
``python -m repro.cli ...``.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
