"""Experiment F9 — Figure 9: per-iteration training time vs K.

The paper times one training iteration of Inf2vec and of Emb-IC for
K ∈ {10, 25, 50, 100, 200} and shows (a) both grow linearly in K and
(b) Inf2vec is 6× (Digg) / 12× (Flickr) faster at K = 50, because
Emb-IC's EM loop re-estimates responsibilities over every cascade
while Inf2vec performs flat SGD over pre-generated contexts.

The reproduction times one epoch of each at scaled K values and
reports the ratio.  Shape targets: per-iteration time increases with K
for both methods, and Inf2vec's iteration is faster at the paper's
reference dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.baselines.emb_ic import EmbICModel
from repro.core.context import ContextGenerator
from repro.core.inf2vec import Inf2vecModel
from repro.experiments.common import ExperimentScale, get_scale, make_dataset
from repro.obs.run import RunRecorder, active_run
from repro.utils.rng import SeedLike, ensure_rng

#: Scaled stand-ins for the paper's K ∈ {10, 25, 50, 100, 200}.
DEFAULT_DIMENSIONS = (8, 16, 32, 64)


@dataclass(frozen=True)
class EfficiencyPoint:
    """Per-iteration seconds of both methods at one K.

    ``context_seconds`` records Inf2vec's one-off Algorithm 1 cost
    (corpus generation) separately — the paper's Fig 9 clock measures
    the SGD iteration only, and keeping the context cost on the side
    makes that explicit.
    """

    dim: int
    inf2vec_seconds: float
    emb_ic_seconds: float
    context_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Emb-IC time divided by Inf2vec time (>1 means Inf2vec faster)."""
        if self.inf2vec_seconds == 0:
            return float("inf")
        return self.emb_ic_seconds / self.inf2vec_seconds


@dataclass(frozen=True)
class EfficiencyResult:
    """The Figure 9 series for one dataset."""

    dataset: str
    points: Mapping[int, EfficiencyPoint]

    def series(self, method: str) -> dict[int, float]:
        """``{K: seconds}`` for ``"inf2vec"`` or ``"emb_ic"``."""
        attr = f"{method}_seconds"
        return {dim: getattr(p, attr) for dim, p in sorted(self.points.items())}


def _stage_run() -> RunRecorder:
    """The ambient run if telemetry is recording, else a private one.

    Stage durations are read from the spans either way — the CLI's
    ``--trace-out`` flag then sees Fig 9's stage tree for free instead
    of a parallel bespoke-timer universe.
    """
    run = active_run()
    return run if run.enabled else RunRecorder(name="fig9")


def _time_inf2vec_iteration(
    data, dim: int, scale: ExperimentScale, seed
) -> tuple[float, float]:
    """``(context_seconds, train_seconds)`` for Inf2vec's two stages."""
    config = scale.inf2vec_config(dim=dim, epochs=1, lr_decay=False)
    model = Inf2vecModel(config, seed=seed)
    generator = ContextGenerator(data.graph, config.context, seed=seed)
    run = _stage_run()
    with run.span("fig9.contexts", dim=dim) as context_span:
        corpus = generator.generate(data.log)
    # Initialise parameters without timing the setup.
    model.fit_contexts(corpus[:1] if corpus else [], num_users=data.graph.num_nodes)
    with run.span("fig9.iteration", dim=dim) as train_span:
        model.train_epoch(corpus)
    return context_span.duration, train_span.duration


def _time_emb_ic_iteration(data, dim: int, seed) -> float:
    """Seconds for one EM iteration (E-step + M-step) of Emb-IC.

    Uses the published algorithm's exhaustive failed-transmission term
    (every adopter × every non-adopter per cascade) — the cost Fig 9
    measures; the library's accuracy benches use a sampled
    approximation instead.
    """
    model = EmbICModel(
        dim=dim,
        em_iterations=1,
        gradient_epochs=3,
        exhaustive_failures=True,
        seed=seed,
    )
    run = _stage_run()
    with run.span("fig9.emb_ic_iteration", dim=dim) as span:
        model.fit(data.graph, data.log)
    return span.duration


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    dimensions: tuple[int, ...] = DEFAULT_DIMENSIONS,
    profiles: tuple[str, ...] = ("digg", "flickr"),
) -> list[EfficiencyResult]:
    """Time one iteration of both methods at each K."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    results = []
    for profile in profiles:
        data = make_dataset(profile, scale, rng)
        points: dict[int, EfficiencyPoint] = {}
        for dim in dimensions:
            context_seconds, inf2vec_seconds = _time_inf2vec_iteration(
                data, dim, scale, rng
            )
            emb_ic_seconds = _time_emb_ic_iteration(data, dim, rng)
            points[dim] = EfficiencyPoint(
                dim=dim,
                inf2vec_seconds=inf2vec_seconds,
                emb_ic_seconds=emb_ic_seconds,
                context_seconds=context_seconds,
            )
        results.append(EfficiencyResult(dataset=data.name, points=points))
    return results


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Figure 9 reproduction."""
    for result in run(scale, seed):
        print(f"\nFigure 9 — per-iteration time on {result.dataset}")
        print(
            f"{'K':>5}{'Context(s)':>12}{'Inf2vec(s)':>12}"
            f"{'Emb-IC(s)':>12}{'speedup':>9}"
        )
        for dim, point in sorted(result.points.items()):
            print(
                f"{dim:>5}{point.context_seconds:>12.3f}"
                f"{point.inf2vec_seconds:>12.3f}"
                f"{point.emb_ic_seconds:>12.3f}{point.speedup:>9.1f}"
            )


if __name__ == "__main__":
    main()
