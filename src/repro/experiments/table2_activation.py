"""Experiment T2 — Table II: activation prediction on both datasets.

Paper's Table II compares DE, ST, EM, Emb-IC, MF, Node2vec, and
Inf2vec on AUC / MAP / P@10 / P@50 / P@100 for the
activation-prediction task, on Digg and Flickr.  Headline numbers
(Digg): Inf2vec AUC 0.8893 / MAP 0.2744 vs ST 0.8619 / 0.1790,
EM 0.8623 / 0.2071, Emb-IC 0.8072 / 0.1503, MF 0.8568 / 0.1691,
Node2vec 0.6437 / 0.0322, DE 0.4144 / 0.0170.

Reproduction shape targets (synthetic substitution, Section 2 of
DESIGN.md):

* Inf2vec ranks first on AUC and MAP on both profiles,
* the count-based models (ST, EM) clearly beat DE,
* Node2vec (structure only) and DE (no learning) trail the field,
* MF (interest only) is competitive but below Inf2vec.
"""

from __future__ import annotations

from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
    method_grid,
)
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.utils.rng import SeedLike, ensure_rng


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    profiles: tuple[str, ...] = DATASET_PROFILES,
) -> list[ComparisonResult]:
    """Run the Table II comparison on the requested dataset profiles."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    results = []
    for profile in profiles:
        data = make_dataset(profile, scale, rng)
        methods = method_grid(scale, seed=rng)
        results.append(
            run_comparison(
                data, methods, task="activation", scale=scale, split_seed=rng
            )
        )
    return results


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Table II reproduction."""
    for result in run(scale, seed):
        print(f"\nTable II — activation prediction on {result.dataset}")
        print(result.table())
        print(f"best AUC: {result.winner('AUC')}, best MAP: {result.winner('MAP')}")


if __name__ == "__main__":
    main()
