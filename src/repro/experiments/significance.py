"""Experiment S — multi-run standard deviations and significance.

Tables II–III report latent-model results as "the average value of 10
runs", quote Inf2vec's standard deviation per metric (e.g. Digg
activation AUC σ = 0.0003), and state that "all reported improvements
over baseline methods are statistically significant with p-value
< 0.05".  This experiment reproduces that protocol: Inf2vec and a
chosen baseline are retrained ``num_runs`` times with derived seeds on
a fixed split, and the per-metric mean ± σ plus a paired t-test are
reported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import Inf2vecMethod, MFModel
from repro.eval.activation import evaluate_activation
from repro.eval.metrics import EvaluationResult
from repro.eval.protocol import (
    MultiRunResult,
    SignificanceTest,
    paired_significance,
    repeat_evaluation,
)
from repro.experiments.common import ExperimentScale, get_scale, make_dataset
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class SignificanceResult:
    """Multi-run comparison of Inf2vec against one latent baseline."""

    dataset: str
    inf2vec: MultiRunResult
    baseline: MultiRunResult
    baseline_name: str
    tests: dict[str, SignificanceTest]

    def summary_lines(self) -> list[str]:
        """Paper-style `mean (σ)` rows plus the p-values."""
        lines = []
        for name, runs in (
            ("Inf2vec", self.inf2vec),
            (self.baseline_name, self.baseline),
        ):
            cells = [
                f"{metric}={runs.mean(metric):.4f} (σ {runs.std(metric):.4f})"
                for metric in ("AUC", "MAP")
            ]
            lines.append(f"{name:<10} " + "  ".join(cells))
        for metric, test in self.tests.items():
            verdict = "significant" if test.significant() else "not significant"
            lines.append(
                f"paired t-test on {metric}: diff {test.mean_difference:+.4f}, "
                f"p = {test.p_value:.4f} ({verdict} at 0.05)"
            )
        return lines


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    num_runs: int = 5,
    profile: str = "digg",
) -> SignificanceResult:
    """Retrain Inf2vec and MF ``num_runs`` times on one fixed split.

    The dataset and split stay fixed (as in the paper) so run-to-run
    variation isolates model stochasticity; both methods share the same
    derived seed sequence so the t-test is properly paired.
    """
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    data = make_dataset(profile, scale, rng)
    train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=rng)

    def run_inf2vec(model_seed: int) -> EvaluationResult:
        method = Inf2vecMethod(scale.inf2vec_config(), seed=model_seed)
        method.fit(data.graph, train)
        return evaluate_activation(method.predictor(), data.graph, test)

    def run_mf(model_seed: int) -> EvaluationResult:
        model = MFModel(dim=scale.dim, epochs=5, seed=model_seed)
        model.fit(data.graph, train)
        return evaluate_activation(model.predictor(), data.graph, test)

    protocol_seed = int(rng.integers(2**31 - 1))
    inf2vec_runs = repeat_evaluation(run_inf2vec, num_runs=num_runs, seed=protocol_seed)
    mf_runs = repeat_evaluation(run_mf, num_runs=num_runs, seed=protocol_seed)
    tests = {
        metric: paired_significance(inf2vec_runs, mf_runs, metric)
        for metric in ("AUC", "MAP")
    }
    return SignificanceResult(
        dataset=data.name,
        inf2vec=inf2vec_runs,
        baseline=mf_runs,
        baseline_name="MF",
        tests=tests,
    )


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the multi-run protocol reproduction."""
    result = run(scale, seed)
    print(f"Multi-run protocol on {result.dataset} (activation task)")
    for line in result.summary_lines():
        print(f"  {line}")


if __name__ == "__main__":
    main()
