"""Experiment F7 — Figure 7: effect of the embedding dimension K.

The paper sweeps K and plots activation MAP: performance climbs with K
(more capacity to embody influence relations), peaks around K=50–100,
then dips as the parameter count outgrows the sparse observations.

The scaled sweep uses proportionally smaller K values; the shape
target is rise-then-plateau (the final point must not be the global
maximum by a large margin, and the first point must not be the
maximum).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.baselines import Inf2vecMethod
from repro.eval.activation import evaluate_activation
from repro.eval.metrics import EvaluationResult
from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
)
from repro.utils.rng import SeedLike, ensure_rng

#: Scaled stand-ins for the paper's K ∈ {10, 25, 50, 100, 200}.
DEFAULT_DIMENSIONS = (4, 8, 16, 32, 64)


@dataclass(frozen=True)
class DimensionSweep:
    """MAP (and friends) per dimension for one dataset."""

    dataset: str
    rows: Mapping[int, EvaluationResult]

    def series(self, metric: str = "MAP") -> dict[int, float]:
        """``{K: metric}`` — the Figure 7 curve."""
        return {k: r.as_row()[metric] for k, r in sorted(self.rows.items())}

    def best_dimension(self, metric: str = "MAP") -> int:
        """K with the best metric value."""
        series = self.series(metric)
        return max(series, key=series.get)


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    dimensions: tuple[int, ...] = DEFAULT_DIMENSIONS,
    profiles: tuple[str, ...] = DATASET_PROFILES,
) -> list[DimensionSweep]:
    """Sweep K on the activation task for each profile."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    sweeps = []
    for profile in profiles:
        data = make_dataset(profile, scale, rng)
        train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=rng)
        rows: dict[int, EvaluationResult] = {}
        for dim in dimensions:
            method = Inf2vecMethod(scale.inf2vec_config(dim=dim), seed=rng)
            method.fit(data.graph, train)
            rows[dim] = evaluate_activation(method.predictor(), data.graph, test)
        sweeps.append(DimensionSweep(dataset=data.name, rows=rows))
    return sweeps


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Figure 7 reproduction."""
    for sweep in run(scale, seed):
        print(f"\nFigure 7 — MAP vs K on {sweep.dataset}")
        for dim, value in sweep.series().items():
            print(f"  K={dim:<4} MAP={value:.4f}")
        print(f"  best K: {sweep.best_dimension()}")


if __name__ == "__main__":
    main()
