"""Experiments F1/F2 — Figures 1–2: power-law influence-pair frequencies.

The paper plots, for each dataset, how often each user appears as the
*source* (Fig 1) and the *target* (Fig 2) of social influence pairs,
and observes both distributions follow power laws: most users are
never influential, a few are extremely influential.

The reproduction extracts the same histograms from the synthetic
profiles and verifies the shape claim quantitatively: the log–log
histogram must be close to a straight line (R² of the log–log
regression) with a plausible tail exponent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pairs import frequency_histogram, pair_frequencies
from repro.eval.stats import PowerLawFit, fit_power_law
from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
)
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class PowerLawRow:
    """Power-law summary of one (dataset, role) frequency distribution.

    Attributes
    ----------
    dataset:
        ``"digg-like"`` / ``"flickr-like"``.
    role:
        ``"source"`` (Fig 1) or ``"target"`` (Fig 2).
    histogram:
        ``{frequency: user count}`` — the exact points the paper plots.
    fit:
        MLE exponent + log–log R² of the distribution.
    num_active:
        Users with frequency >= 1.
    max_frequency:
        The most extreme user's pair count (the heavy tail's reach).
    """

    dataset: str
    role: str
    histogram: dict[int, int]
    fit: PowerLawFit
    num_active: int
    max_frequency: int


def run(
    scale: str | ExperimentScale = "small", seed: SeedLike = 0
) -> list[PowerLawRow]:
    """Compute the Fig 1 and Fig 2 series for both profiles."""
    scale = get_scale(scale)
    rows: list[PowerLawRow] = []
    for profile in DATASET_PROFILES:
        data = make_dataset(profile, scale, seed)
        frequencies = pair_frequencies(data.graph, data.log)
        for role, counts in (
            ("source", frequencies.source_counts),
            ("target", frequencies.target_counts),
        ):
            positive = counts[counts > 0]
            rows.append(
                PowerLawRow(
                    dataset=data.name,
                    role=role,
                    histogram=frequency_histogram(counts),
                    fit=fit_power_law(positive.tolist()),
                    num_active=int(positive.shape[0]),
                    max_frequency=int(positive.max()) if positive.size else 0,
                )
            )
    return rows


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Figures 1–2 reproduction summary with ASCII scatters."""
    from repro.viz.ascii import loglog_scatter_text

    rows = run(scale, seed)
    print("Figures 1-2 — influence-pair frequency distributions")
    print(
        f"{'Dataset':<14}{'Role':<8}{'users':>7}{'max f':>7}"
        f"{'alpha':>8}{'loglog R^2':>12}"
    )
    for row in rows:
        print(
            f"{row.dataset:<14}{row.role:<8}{row.num_active:>7}"
            f"{row.max_frequency:>7}{row.fit.exponent:>8.2f}"
            f"{row.fit.r_squared:>12.3f}"
        )
    for row in rows:
        print(f"\n{row.dataset} {row.role} users (count vs frequency, log-log):")
        print(loglog_scatter_text(row.histogram))


if __name__ == "__main__":
    main()
