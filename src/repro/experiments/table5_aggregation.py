"""Experiment T5 — Table V: effect of the aggregation function.

Eq. 7 combines the pairwise scores of a candidate's active friends
with an aggregation function.  The paper compares Ave / Sum / Max /
Latest on the activation task and finds Ave best overall (Sum is the
clear loser on MAP and P@N because it confounds influence strength
with friend count), which is why Ave is the default everywhere else.

Reproduction shape targets: Ave ranks first on MAP; Sum ranks last on
MAP and P@N; Max and Latest sit between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.baselines import Inf2vecMethod
from repro.core.aggregation import AGGREGATORS
from repro.eval.activation import evaluate_activation
from repro.eval.metrics import EvaluationResult
from repro.eval.protocol import format_table
from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
)
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class AggregationResult:
    """Aggregator → metric rows for one dataset."""

    dataset: str
    rows: Mapping[str, EvaluationResult]

    def table(self) -> str:
        """Fixed-width comparison table."""
        return format_table(dict(self.rows))

    def best(self, metric: str = "MAP") -> str:
        """Aggregator with the best ``metric``."""
        return max(self.rows, key=lambda name: self.rows[name].as_row()[metric])


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    profiles: tuple[str, ...] = DATASET_PROFILES,
) -> list[AggregationResult]:
    """Train Inf2vec once per profile, evaluate under every aggregator."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    results = []
    for profile in profiles:
        data = make_dataset(profile, scale, rng)
        train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=rng)
        method = Inf2vecMethod(scale.inf2vec_config(), seed=rng).fit(
            data.graph, train
        )
        rows = {
            name: evaluate_activation(
                method.predictor(aggregator=name), data.graph, test
            )
            for name in AGGREGATORS
        }
        results.append(AggregationResult(dataset=data.name, rows=rows))
    return results


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Table V reproduction."""
    for result in run(scale, seed):
        print(f"\nTable V — aggregation functions on {result.dataset}")
        print(result.table())
        print(f"best MAP: {result.best('MAP')}")


if __name__ == "__main__":
    main()
