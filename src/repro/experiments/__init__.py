"""Experiment pipelines — one module per table/figure of the paper.

==========  ====================================  =============================
Experiment  Paper artifact                        Module
==========  ====================================  =============================
T1          Table I  (dataset statistics)         ``table1_stats``
F1/F2       Figures 1–2 (power laws)              ``fig1_2_powerlaw``
F3          Figure 3 (active-friend CDF)          ``fig3_cdf``
T2          Table II (activation prediction)      ``table2_activation``
T3          Table III (diffusion prediction)      ``table3_diffusion``
T4          Table IV (Inf2vec-L ablation)         ``table4_ablation``
T5          Table V  (aggregation functions)      ``table5_aggregation``
F6          Figure 6 (t-SNE visualisation)        ``fig6_visualization``
F7          Figure 7 (dimension K sweep)          ``fig7_dimension``
F8          Figure 8 (context length L sweep)     ``fig8_context_length``
F9          Figure 9 (per-iteration efficiency)   ``fig9_efficiency``
T6          Table VI (citation case study)        ``table6_casestudy``
S           multi-run mean ± σ + p-values         ``significance``
==========  ====================================  =============================

Each module exposes ``run(scale, seed)`` returning structured results
and a ``main()`` that prints the paper-style table; the corresponding
``benchmarks/bench_*.py`` wraps ``run``.
"""

from repro.experiments.common import (
    DATASET_PROFILES,
    MEDIUM,
    SCALES,
    SMALL,
    ExperimentScale,
    get_scale,
    make_dataset,
    method_grid,
)

__all__ = [
    "DATASET_PROFILES",
    "MEDIUM",
    "SCALES",
    "SMALL",
    "ExperimentScale",
    "get_scale",
    "make_dataset",
    "method_grid",
]
