"""Experiment T4 — Table IV: the Inf2vec-L ablation (α = 1.0).

Inf2vec-L spends the whole context budget on the local random walk —
no global user-similarity samples.  The paper reports it consistently
below full Inf2vec on both tasks and both datasets, e.g. activation on
Digg: Inf2vec-L AUC 0.8649 / MAP 0.1837 vs Inf2vec 0.8893 / 0.2744 —
evidence that the global similarity context matters.

Reproduction shape target: Inf2vec ≥ Inf2vec-L on AUC and MAP for both
tasks on both profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.baselines import Inf2vecLocalMethod, Inf2vecMethod
from repro.eval.metrics import EvaluationResult
from repro.eval.protocol import format_table
from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
)
from repro.experiments.comparison import Task, evaluate_method
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class AblationResult:
    """Inf2vec vs Inf2vec-L on one (dataset, task) pair."""

    dataset: str
    task: Task
    rows: Mapping[str, EvaluationResult]

    def table(self) -> str:
        """Fixed-width comparison table."""
        return format_table(dict(self.rows))

    def global_context_helps(self, metric: str = "AUC") -> bool:
        """Whether full Inf2vec beats the local-only ablation."""
        full = self.rows["Inf2vec"].as_row()[metric]
        local = self.rows["Inf2vec-L"].as_row()[metric]
        return full >= local


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    profiles: tuple[str, ...] = DATASET_PROFILES,
    tasks: tuple[Task, ...] = ("activation", "diffusion"),
) -> list[AblationResult]:
    """Run the Table IV ablation over profiles × tasks."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    results = []
    for profile in profiles:
        data = make_dataset(profile, scale, rng)
        train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=rng)
        full = Inf2vecMethod(scale.inf2vec_config(), seed=rng).fit(data.graph, train)
        local = Inf2vecLocalMethod(scale.inf2vec_config(), seed=rng).fit(
            data.graph, train
        )
        for task in tasks:
            rows = {
                "Inf2vec": evaluate_method(full, data, test, task, scale, seed=1),
                "Inf2vec-L": evaluate_method(local, data, test, task, scale, seed=1),
            }
            results.append(AblationResult(dataset=data.name, task=task, rows=rows))
    return results


def run_alpha_sweep(
    alphas: tuple[float, ...] = (0.0, 0.1, 0.5, 1.0),
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    profile: str = "digg",
) -> dict[float, EvaluationResult]:
    """Extended ablation: sweep the component weight α on activation.

    α = 0 uses only the global similarity context (MF-like signal);
    α = 1 is Inf2vec-L; the paper's tuned default is 0.1.
    """
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    data = make_dataset(profile, scale, rng)
    train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=rng)
    results: dict[float, EvaluationResult] = {}
    for alpha in alphas:
        base = scale.inf2vec_config()
        config = replace(base, context=replace(base.context, alpha=alpha))
        method = Inf2vecMethod(config, seed=rng).fit(data.graph, train)
        results[alpha] = evaluate_method(
            method, data, test, "activation", scale, seed=1
        )
    return results


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Table IV reproduction."""
    for result in run(scale, seed):
        print(f"\nTable IV — {result.task} on {result.dataset}")
        print(result.table())
        helps = result.global_context_helps()
        print(f"global context helps (AUC): {helps}")


if __name__ == "__main__":
    main()
