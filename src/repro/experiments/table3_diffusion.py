"""Experiment T3 — Table III: diffusion prediction on both datasets.

Paper's Table III evaluates the same seven methods on the
diffusion-prediction task: the first 5% of each test episode seeds the
cascade and the methods must rank the remaining 95% adopters above
everyone else.  IC-based methods use 5,000 Monte-Carlo simulations;
representation methods use Eq. 7 directly.

Headline numbers (Digg): Inf2vec AUC 0.8904 / MAP 0.1793 vs
MF 0.8677 / 0.1347, EM 0.7095 / 0.1241, ST 0.6874 / 0.1064,
Emb-IC 0.6649 / 0.1047, Node2vec 0.6606 / 0.0219, DE 0.6183 / 0.0173.

Reproduction shape targets:

* Inf2vec ranks first on AUC and MAP on both profiles,
* the representation models dominate the IC-based models on AUC for
  this high-order task (MF's AUC jumps vs Table II, since global
  similarity propagates beyond one hop),
* DE and Node2vec trail on MAP by an order of magnitude.
"""

from __future__ import annotations

from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
    method_grid,
)
from repro.experiments.comparison import ComparisonResult, run_comparison
from repro.utils.rng import SeedLike, ensure_rng


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    profiles: tuple[str, ...] = DATASET_PROFILES,
) -> list[ComparisonResult]:
    """Run the Table III comparison on the requested dataset profiles."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    results = []
    for profile in profiles:
        data = make_dataset(profile, scale, rng)
        methods = method_grid(scale, seed=rng)
        results.append(
            run_comparison(
                data, methods, task="diffusion", scale=scale, split_seed=rng
            )
        )
    return results


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Table III reproduction."""
    for result in run(scale, seed):
        print(f"\nTable III — diffusion prediction on {result.dataset}")
        print(result.table())
        print(f"best AUC: {result.winner('AUC')}, best MAP: {result.winner('MAP')}")


if __name__ == "__main__":
    main()
