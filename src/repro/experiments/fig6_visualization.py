"""Experiment F6 — Figure 6: t-SNE visualisation of learned representations.

The paper selects the nodes of the 10,000 most frequent influence
pairs on Digg (524 nodes), projects each model's representations to
2-D with t-SNE, highlights the top-5 pairs, and argues that only
Inf2vec places both members of every highlighted pair close together.

"Close in the picture" is quantified here as the pair's distance
percentile within all pairwise distances of the layout (see
:mod:`repro.viz.embedding_plot`).  Shape target: Inf2vec's mean
highlighted-pair percentile is the smallest of the four models
(Emb-IC, MF, Node2vec, Inf2vec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.baselines import EmbICModel, Inf2vecMethod, MFModel, Node2vecModel
from repro.core.pairs import pair_frequencies
from repro.experiments.common import ExperimentScale, get_scale, make_dataset
from repro.utils.rng import SeedLike, ensure_rng
from repro.viz.embedding_plot import VisualizationReport, visualization_report
from repro.viz.tsne import TSNEConfig


@dataclass(frozen=True)
class VisualizationResult:
    """Mean highlighted-pair distance percentile per model."""

    dataset: str
    reports: Mapping[str, VisualizationReport]

    def mean_percentiles(self) -> dict[str, float]:
        """``{model: mean pair percentile}`` (lower = pairs closer)."""
        return {
            name: report.mean_pair_percentile
            for name, report in self.reports.items()
        }

    def best_model(self) -> str:
        """Model whose highlighted pairs sit closest together."""
        percentiles = self.mean_percentiles()
        return min(percentiles, key=percentiles.get)


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    num_top_pairs: int = 200,
    highlight: int = 5,
    profile: str = "digg",
    tsne_iterations: int = 300,
) -> VisualizationResult:
    """Train the four models and project their representations.

    ``num_top_pairs`` stands in for the paper's 10,000 (the node count
    scales with the synthetic dataset).
    """
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    data = make_dataset(profile, scale, rng)
    train, _tune, _test = data.log.split((0.8, 0.1, 0.1), seed=rng)
    frequencies = pair_frequencies(data.graph, train)
    top_pairs = frequencies.top_pairs(num_top_pairs)

    inf2vec = Inf2vecMethod(scale.inf2vec_config(), seed=rng).fit(data.graph, train)
    mf = MFModel(dim=scale.dim, epochs=5, seed=rng).fit(data.graph, train)
    node2vec = Node2vecModel(dim=scale.dim, seed=rng).fit(data.graph, train)
    emb_ic = EmbICModel(dim=scale.dim, seed=rng).fit(data.graph, train)

    sender, receiver = emb_ic.representations()
    vectors = {
        "Emb-IC": np.hstack([sender, receiver]),
        "MF": np.hstack([mf.embedding().source, mf.embedding().target]),
        "Node2vec": np.hstack(
            [node2vec.embedding().source, node2vec.embedding().target]
        ),
        "Inf2vec": inf2vec.embedding().combined_vectors(),
    }
    tsne_config = TSNEConfig(num_iterations=tsne_iterations)
    reports = {
        name: visualization_report(
            matrix, top_pairs, highlight=highlight, tsne_config=tsne_config, seed=rng
        )
        for name, matrix in vectors.items()
    }
    return VisualizationResult(dataset=data.name, reports=reports)


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Figure 6 reproduction summary."""
    result = run(scale, seed)
    print(f"Figure 6 — pair proximity in t-SNE layouts ({result.dataset})")
    for name, percentile in sorted(
        result.mean_percentiles().items(), key=lambda kv: kv[1]
    ):
        print(f"  {name:<10} mean top-pair distance percentile: {percentile:.3f}")
    print(f"closest pairs: {result.best_model()}")


if __name__ == "__main__":
    main()
