"""Shared train-and-evaluate runner for the Table II / III comparisons."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Mapping

from repro.baselines import InfluenceModel
from repro.data.synthetic import SyntheticSocialDataset
from repro.eval.activation import evaluate_activation
from repro.eval.diffusion import evaluate_diffusion
from repro.eval.metrics import EvaluationResult
from repro.eval.protocol import format_table
from repro.experiments.common import ExperimentScale
from repro.utils.rng import SeedLike, ensure_rng

Task = Literal["activation", "diffusion"]


@dataclass(frozen=True)
class ComparisonResult:
    """All methods' metric rows on one (dataset, task) pair."""

    dataset: str
    task: Task
    rows: Mapping[str, EvaluationResult]

    def table(self) -> str:
        """The paper-style fixed-width table."""
        return format_table(dict(self.rows))

    def winner(self, metric: str = "AUC") -> str:
        """Method with the best value of ``metric``."""
        return max(self.rows, key=lambda name: self.rows[name].as_row()[metric])


def evaluate_method(
    model: InfluenceModel,
    data: SyntheticSocialDataset,
    test_log,
    task: Task,
    scale: ExperimentScale,
    seed: SeedLike = None,
) -> EvaluationResult:
    """Evaluate one fitted model on one task with scale-appropriate cost."""
    predictor = model.predictor(num_runs=scale.mc_runs, seed=seed)
    if task == "activation":
        return evaluate_activation(predictor, data.graph, test_log)
    return evaluate_diffusion(predictor, data.graph.num_nodes, test_log)


def run_comparison(
    data: SyntheticSocialDataset,
    methods: Mapping[str, Callable[[], InfluenceModel]],
    task: Task,
    scale: ExperimentScale,
    split_seed: SeedLike = 0,
    eval_seed: SeedLike = 1,
) -> ComparisonResult:
    """Train every method on the 80% split, evaluate on the 10% test split."""
    rng = ensure_rng(split_seed)
    train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=rng)
    rows: dict[str, EvaluationResult] = {}
    for name, factory in methods.items():
        model = factory().fit(data.graph, train)
        rows[name] = evaluate_method(model, data, test, task, scale, seed=eval_seed)
    return ComparisonResult(dataset=data.name, task=task, rows=rows)
