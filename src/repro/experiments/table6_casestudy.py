"""Experiment T6 — Table VI + case-study precision (Section V-D).

On the citation network, the paper predicts each test author's top-10
future citers with (a) the embedding model trained on first-order
influence pairs and (b) the conventional ST model scored by
Monte-Carlo simulation.  Reported: average precision@10 of 0.1863
(embedding) vs 0.0616 (conventional) — roughly 3× — plus a showcase
table for the three most prolific authors.

Shape target: embedding precision@10 exceeds conventional precision@10
by a clear margin on the synthetic citation corpus.
"""

from __future__ import annotations

from repro.apps.citation_study import CaseStudyResult, run_case_study
from repro.data.citation import CitationConfig, CitationDataset
from repro.utils.rng import SeedLike, ensure_rng

#: Paper's headline case-study numbers.
PAPER_EMBEDDING_PRECISION = 0.1863
PAPER_CONVENTIONAL_PRECISION = 0.0616


def run(
    scale: str = "small",
    seed: SeedLike = 0,
    mc_runs: int = 300,
) -> CaseStudyResult:
    """Generate a citation corpus and run the Table VI pipeline."""
    sizes = {
        "small": CitationConfig(num_authors=300, num_papers=900),
        "medium": CitationConfig(),  # 400 authors, 1500 papers
    }
    try:
        config = sizes[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(sizes)}")
    rng = ensure_rng(seed)
    dataset = CitationDataset.generate(config, seed=rng)
    return run_case_study(dataset, mc_runs=mc_runs, seed=rng)


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Table VI reproduction."""
    result = run(scale, seed)
    print("Table VI — citation case study")
    print(
        f"embedding    precision@10: {result.embedding_precision:.4f} "
        f"(paper {PAPER_EMBEDDING_PRECISION})"
    )
    print(
        f"conventional precision@10: {result.conventional_precision:.4f} "
        f"(paper {PAPER_CONVENTIONAL_PRECISION})"
    )
    print(f"ratio: {result.precision_ratio:.2f}x (paper ~3x)")
    print(f"test authors: {result.num_test_authors}")
    for row in result.showcase:
        print(
            f"  author {row.author}: embedding {row.embedding_hits}/10, "
            f"conventional {row.conventional_hits}/10"
        )


if __name__ == "__main__":
    main()
