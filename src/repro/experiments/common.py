"""Shared infrastructure for the experiment pipelines (Tables & Figures).

Every experiment module under :mod:`repro.experiments` exposes a
``run(scale, seed)`` function returning a structured result plus a
``main()`` that prints the paper-style table; the pytest benchmarks
wrap the same ``run`` functions.

The paper's experiments use 68K–162K-user crawls and hours of C++
time; :class:`ExperimentScale` defines laptop-scale working points that
preserve the relative comparisons.  ``SMALL`` keeps the benchmark suite
fast; ``MEDIUM`` is the reporting scale used for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping

from repro.baselines import InfluenceModel, make_method
from repro.core.context import ContextConfig
from repro.core.inf2vec import Inf2vecConfig
from repro.data.synthetic import SyntheticSocialDataset
from repro.errors import EvaluationError
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class ExperimentScale:
    """Working-point parameters for an experiment run.

    Attributes mirror the paper's knobs (Section V-A2) at reduced
    size: ``dim`` is the paper's K (50), ``context_length`` its L (50),
    ``alpha`` the component weight (0.1), ``mc_runs`` the Monte-Carlo
    simulation count (5,000).
    """

    name: str
    num_users: int
    num_items: int
    dim: int
    context_length: int
    alpha: float
    learning_rate: float
    epochs: int
    num_negatives: int
    mc_runs: int

    def inf2vec_config(self, **overrides) -> Inf2vecConfig:
        """The Inf2vec configuration at this scale."""
        config = Inf2vecConfig(
            dim=self.dim,
            context=ContextConfig(length=self.context_length, alpha=self.alpha),
            learning_rate=self.learning_rate,
            num_negatives=self.num_negatives,
            epochs=self.epochs,
        )
        return replace(config, **overrides) if overrides else config


SMALL = ExperimentScale(
    name="small",
    num_users=300,
    num_items=120,
    dim=16,
    context_length=20,
    alpha=0.2,
    learning_rate=0.01,
    epochs=15,
    num_negatives=5,
    mc_runs=100,
)

MEDIUM = ExperimentScale(
    name="medium",
    num_users=800,
    num_items=400,
    dim=32,
    context_length=30,
    alpha=0.2,
    learning_rate=0.01,
    epochs=25,
    num_negatives=5,
    mc_runs=300,
)

SCALES: Mapping[str, ExperimentScale] = {"small": SMALL, "medium": MEDIUM}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale by name or pass an explicit one through."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise EvaluationError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None


def make_dataset(
    profile: str, scale: ExperimentScale, seed: SeedLike
) -> SyntheticSocialDataset:
    """Generate the Digg-like or Flickr-like dataset at a scale."""
    if profile == "digg":
        return SyntheticSocialDataset.digg_like(
            num_users=scale.num_users, num_items=scale.num_items, seed=seed
        )
    if profile == "flickr":
        return SyntheticSocialDataset.flickr_like(
            num_users=scale.num_users, num_items=scale.num_items, seed=seed
        )
    raise EvaluationError(f"unknown dataset profile {profile!r}")


#: Both dataset profiles, in the paper's presentation order.
DATASET_PROFILES = ("digg", "flickr")


def method_grid(
    scale: ExperimentScale, seed: SeedLike = 0
) -> dict[str, Callable[[], InfluenceModel]]:
    """Factories for the paper's full method grid at one scale.

    Returned lazily (factories, not instances) so each experiment can
    instantiate fresh models per run/seed.
    """
    def factory(name: str, **kwargs) -> Callable[[], InfluenceModel]:
        return lambda: make_method(name, **kwargs)

    return {
        "DE": factory("DE"),
        "ST": factory("ST"),
        "EM": factory("EM"),
        "Emb-IC": factory("Emb-IC", dim=scale.dim, seed=seed),
        "MF": factory("MF", dim=scale.dim, epochs=5, seed=seed),
        "Node2vec": factory("Node2vec", dim=scale.dim, seed=seed),
        "Inf2vec": factory(
            "Inf2vec", config=scale.inf2vec_config(), seed=seed
        ),
    }
