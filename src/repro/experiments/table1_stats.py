"""Experiment T1 — Table I: dataset statistics.

Paper's Table I:

=======  =======  ==========  ======  =========
Dataset  #User    #Edge       #Item   #Action
=======  =======  ==========  ======  =========
Digg     68,634   823,656     3,553   2,485,976
Flickr   162,663  10,226,532  14,002  2,376,230
=======  =======  ==========  ======  =========

The reproduction generates the two synthetic profiles at the requested
scale and reports the same four columns plus the derived quantities
the paper's analysis relies on (average out-degree, actions per user,
influence-pair count — "7.9M pairs for Digg, 5.3M for Flickr").
The shape expectation is the *Digg/Flickr contrast*: Flickr is an
order denser in edges while having comparable action volume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pairs import pair_frequencies
from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
)
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DatasetStatsRow:
    """One Table I row plus derived statistics."""

    dataset: str
    num_users: int
    num_edges: int
    num_items: int
    num_actions: int
    num_influence_pairs: int

    @property
    def avg_out_degree(self) -> float:
        """Mean edges per user (Digg ≈ 12, Flickr ≈ 63 in the paper)."""
        return self.num_edges / self.num_users if self.num_users else 0.0

    @property
    def actions_per_user(self) -> float:
        """Mean adoptions per user (Digg ≈ 36, Flickr ≈ 15)."""
        return self.num_actions / self.num_users if self.num_users else 0.0


def run(
    scale: str | ExperimentScale = "small", seed: SeedLike = 0
) -> list[DatasetStatsRow]:
    """Generate both profiles and compute their Table I rows."""
    scale = get_scale(scale)
    rows = []
    for profile in DATASET_PROFILES:
        data = make_dataset(profile, scale, seed)
        stats = data.statistics()
        frequencies = pair_frequencies(data.graph, data.log)
        rows.append(
            DatasetStatsRow(
                dataset=data.name,
                num_users=stats["num_users"],
                num_edges=stats["num_edges"],
                num_items=stats["num_items"],
                num_actions=stats["num_actions"],
                num_influence_pairs=frequencies.total_pairs,
            )
        )
    return rows


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Table I reproduction."""
    rows = run(scale, seed)
    print("Table I — dataset statistics (synthetic profiles)")
    header = (
        f"{'Dataset':<14}{'#User':>8}{'#Edge':>10}{'#Item':>8}"
        f"{'#Action':>10}{'#Pairs':>10}{'deg':>8}{'act/u':>8}"
    )
    print(header)
    for row in rows:
        print(
            f"{row.dataset:<14}{row.num_users:>8}{row.num_edges:>10}"
            f"{row.num_items:>8}{row.num_actions:>10}"
            f"{row.num_influence_pairs:>10}{row.avg_out_degree:>8.1f}"
            f"{row.actions_per_user:>8.1f}"
        )


if __name__ == "__main__":
    main()
