"""Experiment F8 — Figure 8: effect of the context length L.

The paper sweeps the length threshold L of Algorithm 1 and plots
activation MAP: more context users mean more training instances, so
MAP rises with L and flattens; on Flickr L=100 dips slightly below
L=50 (over-fitting), and L=50 is chosen as the accuracy/cost
trade-off.

The scaled sweep uses proportionally smaller L values; the shape
target is a rising-then-flat curve — the largest L must not be far
ahead of the middle of the sweep, and the smallest L must trail.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from repro.baselines import Inf2vecMethod
from repro.eval.activation import evaluate_activation
from repro.eval.metrics import EvaluationResult
from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
)
from repro.utils.rng import SeedLike, ensure_rng

#: Scaled stand-ins for the paper's L ∈ {10, 25, 50, 100}.
DEFAULT_LENGTHS = (5, 10, 20, 40)


@dataclass(frozen=True)
class LengthSweep:
    """MAP (and friends) per context length for one dataset."""

    dataset: str
    rows: Mapping[int, EvaluationResult]

    def series(self, metric: str = "MAP") -> dict[int, float]:
        """``{L: metric}`` — the Figure 8 curve."""
        return {length: r.as_row()[metric] for length, r in sorted(self.rows.items())}

    def best_length(self, metric: str = "MAP") -> int:
        """L with the best metric value."""
        series = self.series(metric)
        return max(series, key=series.get)


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    lengths: tuple[int, ...] = DEFAULT_LENGTHS,
    profiles: tuple[str, ...] = DATASET_PROFILES,
) -> list[LengthSweep]:
    """Sweep L on the activation task for each profile."""
    scale = get_scale(scale)
    rng = ensure_rng(seed)
    sweeps = []
    for profile in profiles:
        data = make_dataset(profile, scale, rng)
        train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=rng)
        rows: dict[int, EvaluationResult] = {}
        for length in lengths:
            base = scale.inf2vec_config()
            config = replace(
                base, context=replace(base.context, length=length)
            )
            method = Inf2vecMethod(config, seed=rng).fit(data.graph, train)
            rows[length] = evaluate_activation(
                method.predictor(), data.graph, test
            )
        sweeps.append(LengthSweep(dataset=data.name, rows=rows))
    return sweeps


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Figure 8 reproduction."""
    for sweep in run(scale, seed):
        print(f"\nFigure 8 — MAP vs L on {sweep.dataset}")
        for length, value in sweep.series().items():
            print(f"  L={length:<4} MAP={value:.4f}")
        print(f"  best L: {sweep.best_length()}")


if __name__ == "__main__":
    main()
