"""Experiment F3 — Figure 3: CDF of active friends at adoption time.

The paper computes, per adoption, how many of the adopter's friends
had already performed the action, and plots the CDF:

* Digg:   CDF(0) ≈ 0.7 — 70% of adoptions happen with no active friend,
* Flickr: CDF(0) ≈ 0.5.

This observation motivates the global user-similarity context: most
behaviour is *not* attributable to social influence.  The synthetic
profiles are calibrated to the same two working points, and this
experiment verifies the calibration plus the Digg > Flickr ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.stats import active_friend_cdf
from repro.experiments.common import (
    DATASET_PROFILES,
    ExperimentScale,
    get_scale,
    make_dataset,
)
from repro.utils.rng import SeedLike

#: Paper's Figure 3 reference values for CDF(0).
PAPER_CDF0 = {"digg-like": 0.7, "flickr-like": 0.5}


@dataclass(frozen=True)
class CDFRow:
    """The Figure 3 series for one dataset."""

    dataset: str
    cdf: dict[int, float]
    paper_cdf0: float

    @property
    def cdf0(self) -> float:
        """Measured spontaneous share CDF(0)."""
        return self.cdf[0]


def run(
    scale: str | ExperimentScale = "small",
    seed: SeedLike = 0,
    max_count: int = 10,
) -> list[CDFRow]:
    """Compute the Figure 3 CDF for both profiles."""
    scale = get_scale(scale)
    rows = []
    for profile in DATASET_PROFILES:
        data = make_dataset(profile, scale, seed)
        cdf = active_friend_cdf(data.graph, data.log, max_count=max_count)
        rows.append(
            CDFRow(dataset=data.name, cdf=cdf, paper_cdf0=PAPER_CDF0[data.name])
        )
    return rows


def main(scale: str = "small", seed: int = 0) -> None:
    """Print the Figure 3 reproduction with an ASCII chart."""
    from repro.viz.ascii import line_chart_text, sorted_series

    rows = run(scale, seed)
    print("Figure 3 — CDF of active friends at adoption")
    xs = sorted(rows[0].cdf)
    print(f"{'x':>4}" + "".join(f"{row.dataset:>14}" for row in rows))
    for x in xs:
        print(f"{x:>4}" + "".join(f"{row.cdf[x]:>14.3f}" for row in rows))
    for row in rows:
        print(
            f"{row.dataset}: CDF(0) measured {row.cdf0:.3f} "
            f"(paper {row.paper_cdf0:.1f})"
        )
    print()
    print(
        line_chart_text(
            {row.dataset: sorted_series(row.cdf) for row in rows}
        )
    )


if __name__ == "__main__":
    main()
