"""Checkpoint lifecycle: cadence, retention, and latest-valid discovery.

:class:`CheckpointManager` owns one checkpoint directory.  The training
loop calls :meth:`CheckpointManager.maybe_save` at every epoch end; the
manager decides whether the cadence fires, writes the state atomically
(``ckpt-<epoch>.npz``), prunes beyond the retention budget, and records
checkpoint telemetry (count, bytes, write latency) into the metrics
registry it is handed.

Discovery is defensive: :meth:`CheckpointManager.latest_state` walks the
directory newest-first and *skips* truncated or corrupt files (each with
a logged warning) instead of dying on the first bad one — exactly the
behaviour a crash-recovery path needs, since the file being written at
the moment of the crash is the likeliest casualty.
"""

from __future__ import annotations

import re
import time
from pathlib import Path
from typing import Union

from repro.ckpt.state import TrainingState
from repro.errors import CheckpointError
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.utils.logging import get_logger
from repro.utils.validation import check_positive_int

PathLike = Union[str, Path]

__all__ = ["CheckpointManager", "CKPT_WRITE_LATENCY_BUCKETS"]

logger = get_logger("ckpt.manager")

#: Write-latency histogram edges (seconds): checkpoints are small npz
#: archives, so sub-millisecond to a few seconds brackets every scale.
CKPT_WRITE_LATENCY_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)

_CKPT_PATTERN = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointManager:
    """Every-N-epochs checkpointing with last-K retention for one directory.

    Parameters
    ----------
    directory:
        Where checkpoints live; created if missing.
    every:
        Cadence — save after every ``every``-th completed epoch (the
        training loop additionally forces a save at the final epoch and
        on early convergence).
    keep:
        Retention — after each save, only the ``keep`` newest
        checkpoints (by epoch) are kept on disk.
    """

    def __init__(self, directory: PathLike, every: int = 1, keep: int = 3):
        self.every = check_positive_int("every", every)
        self.keep = check_positive_int("keep", keep)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------

    def path_for_epoch(self, epoch: int) -> Path:
        """The canonical checkpoint path for ``epoch``."""
        return self.directory / f"ckpt-{epoch:08d}.npz"

    def maybe_save(
        self,
        model: object,
        epoch: int,
        entry_rng_state: dict | None = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
        force: bool = False,
        worker_topology: dict | None = None,
    ) -> Path | None:
        """Save at the configured cadence; returns the path or ``None``.

        ``force`` bypasses the cadence (used for the final epoch and for
        early-convergence exits, so the terminal state is always on
        disk).  ``worker_topology`` is stamped into the state by the
        parallel trainer (see :class:`~repro.ckpt.state.TrainingState`).
        """
        if not force and (epoch + 1) % self.every != 0:
            return None
        return self.save(
            model,
            epoch,
            entry_rng_state=entry_rng_state,
            metrics=metrics,
            worker_topology=worker_topology,
        )

    def save(
        self,
        model: object,
        epoch: int,
        entry_rng_state: dict | None = None,
        metrics: MetricsRegistry = NULL_REGISTRY,
        worker_topology: dict | None = None,
    ) -> Path:
        """Capture, atomically write, prune, and record one checkpoint."""
        state = TrainingState.capture(
            model,
            epoch,
            entry_rng_state=entry_rng_state,
            worker_topology=worker_topology,
        )
        path = self.path_for_epoch(epoch)
        started = time.perf_counter()
        path = state.save(path)
        elapsed = time.perf_counter() - started
        size = path.stat().st_size
        if metrics.enabled:
            metrics.counter("ckpt.saves", "checkpoints written").inc()
            metrics.counter(
                "ckpt.bytes_written", "total checkpoint bytes written"
            ).inc(size)
            metrics.histogram(
                "ckpt.write_seconds",
                CKPT_WRITE_LATENCY_BUCKETS,
                "atomic checkpoint write latency",
            ).observe(elapsed)
        logger.debug(
            "checkpoint epoch %d -> %s (%d bytes, %.3fs)",
            epoch, path, size, elapsed,
        )
        self._prune(metrics)
        return path

    def _prune(self, metrics: MetricsRegistry = NULL_REGISTRY) -> None:
        """Delete all but the ``keep`` newest checkpoints."""
        paths = self.checkpoint_paths()
        for path in paths[: -self.keep]:
            path.unlink(missing_ok=True)
            logger.debug("pruned checkpoint %s", path)
            if metrics.enabled:
                metrics.counter(
                    "ckpt.pruned", "checkpoints removed by retention"
                ).inc()

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def checkpoint_paths(self) -> list[Path]:
        """Managed checkpoint files, sorted by epoch ascending.

        Only committed files match (``ckpt-NNNNNNNN.npz``); in-flight
        atomic temp files are hidden dotfiles and never listed.
        """
        found = []
        for path in self.directory.iterdir():
            match = _CKPT_PATTERN.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return [path for _epoch, path in sorted(found)]

    def latest_path(self) -> Path | None:
        """Newest checkpoint file by epoch, without validating it."""
        paths = self.checkpoint_paths()
        return paths[-1] if paths else None

    def latest_state(self) -> TrainingState | None:
        """Load the newest checkpoint that validates.

        Corrupt or truncated files (e.g. a pre-atomic-era leftover, or
        bit rot) are skipped with a warning; ``None`` means no usable
        checkpoint exists.
        """
        for path in reversed(self.checkpoint_paths()):
            try:
                return TrainingState.load(path)
            except CheckpointError as exc:
                logger.warning("skipping unusable checkpoint %s: %s", path, exc)
        return None

    def __repr__(self) -> str:
        return (
            f"CheckpointManager({str(self.directory)!r}, "
            f"every={self.every}, keep={self.keep})"
        )
