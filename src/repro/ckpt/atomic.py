"""Atomic file persistence: temp file + fsync + ``os.replace``.

Every persistence path in this library (checkpoints, embedding and
dataset archives, run manifests, span traces) writes through the
helpers here so a crash — SIGKILL, power loss, a full disk raising
mid-write — can never leave a partially written file at the final
destination.  The contract:

1. data is written to a temporary file *in the same directory* as the
   destination (``os.replace`` is only atomic within a filesystem);
2. the temp file is fsynced so the bytes are durable before the rename;
3. ``os.replace`` atomically installs the temp file at the destination;
4. the directory entry is fsynced (best effort) so the rename itself
   survives a crash.

On any failure the temp file is unlinked and the destination is left
exactly as it was — either the previous complete version or absent.

Temp names keep the destination's suffix (``.data.<rand>.tmp.npz``)
because :func:`numpy.savez` silently appends ``.npz`` to paths that
lack it, which would otherwise break the rename; they start with a dot
so checkpoint discovery and ``*.npz`` globs never pick up an
uncommitted file.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Union

PathLike = Union[str, Path]

__all__ = [
    "atomic_output",
    "atomic_write_bytes",
    "atomic_write_text",
    "ensure_suffix",
]


def ensure_suffix(path: PathLike, suffix: str) -> Path:
    """Append ``suffix`` unless ``path`` already ends with it.

    Normalises the extension asymmetry around :func:`numpy.savez`,
    which appends ``.npz`` to bare paths at save time while
    :func:`numpy.load` does not at load time — both sides of a
    round trip must agree on the final name.
    """
    path = Path(path)
    if path.name.endswith(suffix):
        return path
    return path.with_name(path.name + suffix)


def _fsync_path(path: Path) -> None:
    """Flush a written file's bytes to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(directory: Path) -> None:
    """Best-effort fsync of a directory entry (not all OSes allow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_output(path: PathLike) -> Iterator[Path]:
    """Yield a temp path that atomically becomes ``path`` on success.

    Usage::

        with atomic_output("run/model.npz") as tmp:
            np.savez_compressed(tmp, **arrays)
        # crash anywhere above: run/model.npz untouched

    The parent directory is created if missing.  The yielded path lives
    in the destination's directory and carries the destination's suffix;
    write the complete payload to it inside the block.  On normal exit
    the temp file is fsynced and renamed over ``path``; on exception it
    is removed and the exception propagates.
    """
    final = Path(path)
    directory = final.parent
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=f".{final.name}.", suffix=".tmp" + final.suffix
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        yield tmp
        _fsync_path(tmp)
        os.replace(tmp, final)
        _fsync_dir(directory)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Atomically write ``data`` to ``path``; returns the final path."""
    final = Path(path)
    with atomic_output(final) as tmp:
        tmp.write_bytes(data)
    return final


def atomic_write_text(
    path: PathLike, text: str, encoding: str = "utf-8"
) -> Path:
    """Atomically write ``text`` to ``path``; returns the final path."""
    return atomic_write_bytes(path, text.encode(encoding))
