"""repro.ckpt — crash-safe checkpointing and atomic persistence.

Three pieces:

* :mod:`repro.ckpt.atomic` — the atomic-write primitive (temp file in
  the destination directory + fsync + ``os.replace``) shared by every
  persistence path in the library;
* :mod:`repro.ckpt.state` — :class:`TrainingState`, the full training
  snapshot (parameter arrays, epoch counter, loss history, config
  fingerprint, and the numpy ``Generator`` bit-states) that makes a
  resumed run bitwise-identical to an uninterrupted one;
* :mod:`repro.ckpt.manager` — :class:`CheckpointManager`, the
  every-N-epochs cadence, last-K retention, and corrupt-file-skipping
  latest-valid discovery.

Quickstart::

    from repro import Inf2vecModel, Inf2vecConfig
    from repro.ckpt import CheckpointManager

    manager = CheckpointManager("run/ckpt", every=5, keep=3)
    model = Inf2vecModel(Inf2vecConfig(epochs=20), seed=0)
    model.fit(graph, log, checkpoint=manager)

    # after a crash, an identical invocation picks up where it stopped:
    model = Inf2vecModel(Inf2vecConfig(epochs=20), seed=0)
    model.fit(graph, log, checkpoint=manager, resume=True)
"""

from repro.ckpt.atomic import (
    atomic_output,
    atomic_write_bytes,
    atomic_write_text,
    ensure_suffix,
)
from repro.ckpt.state import CHECKPOINT_VERSION, TrainingState
from repro.ckpt.manager import CKPT_WRITE_LATENCY_BUCKETS, CheckpointManager
from repro.errors import CheckpointError

__all__ = [
    "atomic_output",
    "atomic_write_bytes",
    "atomic_write_text",
    "ensure_suffix",
    "CHECKPOINT_VERSION",
    "TrainingState",
    "CheckpointManager",
    "CKPT_WRITE_LATENCY_BUCKETS",
    "CheckpointError",
]
