"""Full training-state serialization for :class:`repro.core.inf2vec.Inf2vecModel`.

A checkpoint must let a resumed run continue *bitwise-identically* to
an uninterrupted one, so :class:`TrainingState` captures everything the
epoch loop consumes:

* all four parameter arrays (``S``, ``T``, ``b``, ``b̃``);
* the index of the last completed epoch and the loss history through it;
* the config fingerprint (resume refuses a mismatched config);
* the numpy ``Generator`` bit-state at the end of that epoch, so the
  resumed shuffles and negative draws replay the original stream;
* the bit-state at ``fit()`` entry, so resume can regenerate the exact
  same context corpus before fast-forwarding the stream.

Checkpoints are single ``.npz`` archives written through
:func:`repro.ckpt.atomic.atomic_output`; :meth:`TrainingState.load`
validates structure and version and raises
:class:`~repro.errors.CheckpointError` for anything it cannot trust —
a truncated file, an empty file, a foreign format version, mismatched
array shapes — instead of letting the corruption surface later as a
cryptic numpy error.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.ckpt.atomic import atomic_output, ensure_suffix
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.embeddings import InfluenceEmbedding
    from repro.core.inf2vec import Inf2vecModel

PathLike = Union[str, Path]

__all__ = ["CHECKPOINT_VERSION", "TrainingState"]

#: Format version stamped into every checkpoint archive.
CHECKPOINT_VERSION = 1

#: Keys every checkpoint archive must contain.
_REQUIRED_KEYS = (
    "checkpoint_version",
    "source",
    "target",
    "source_bias",
    "target_bias",
    "epoch",
    "loss_history",
    "config_fingerprint",
    "rng_state",
    "entry_rng_state",
)


def _json_default(value: object) -> object:
    """JSON fallback for RNG-state members (ndarrays, numpy ints)."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.integer):
        return int(value)
    raise TypeError(f"cannot encode RNG state member {type(value).__name__}")


def _encode_rng_state(state: dict) -> str:
    """JSON-encode a ``Generator.bit_generator.state`` dict.

    PCG64 state is plain (big) ints; MT19937 carries a uint32 key array
    — both serialise through the ndarray-to-list fallback.
    """
    return json.dumps(state, default=_json_default)


def _rebuild_rng_state(state: object) -> dict:
    """Validate a decoded RNG state (rebuilding MT19937's key array)."""
    if not isinstance(state, dict) or "bit_generator" not in state:
        raise CheckpointError("checkpoint RNG state is not a bit-generator dict")
    if state.get("bit_generator") == "MT19937":
        inner = state.get("state", {})
        if isinstance(inner, dict) and isinstance(inner.get("key"), list):
            inner["key"] = np.asarray(inner["key"], dtype=np.uint32)
    return state


def _decode_rng_state(text: str) -> dict:
    """Invert :func:`_encode_rng_state`."""
    return _rebuild_rng_state(json.loads(text))


def _encode_worker_topology(topology: dict | None) -> str:
    """JSON-encode the optional parallel-trainer worker topology.

    Consistency is enforced here, at write time, so an inconsistent
    topology (worker count not matching the per-worker state lists)
    can never reach disk and poison a future resume.
    """
    if topology is None:
        return "null"
    workers = int(topology.get("workers", 0))
    if (
        workers < 1
        or len(topology.get("entry_rng_states", ())) != workers
        or len(topology.get("rng_states", ())) != workers
    ):
        raise CheckpointError(
            "worker topology is inconsistent: workers must be >= 1 and "
            "match the per-worker RNG state lists"
        )
    return json.dumps(topology, default=_json_default)


def _decode_worker_topology(text: str) -> dict | None:
    """Invert :func:`_encode_worker_topology`, validating the shape."""
    data = json.loads(text)
    if data is None:
        return None
    if not isinstance(data, dict):
        raise CheckpointError("checkpoint worker topology is not a mapping")
    try:
        topology = {
            "workers": int(data["workers"]),
            "entry_rng_states": [
                _rebuild_rng_state(state) for state in data["entry_rng_states"]
            ],
            "rng_states": [
                _rebuild_rng_state(state) for state in data["rng_states"]
            ],
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint worker topology is malformed: {exc}"
        ) from exc
    return topology


def _as_text(value: np.ndarray) -> str:
    """Decode a 0-d bytes array stored by :func:`numpy.savez`."""
    return bytes(value).decode("utf-8")


@dataclass(frozen=True)
class TrainingState:
    """Everything needed to resume an ``Inf2vecModel`` training run.

    Attributes
    ----------
    source, target, source_bias, target_bias:
        The four parameter arrays at the end of ``epoch``.
    epoch:
        Index of the last completed epoch (0-based); resume continues
        at ``epoch + 1``.
    loss_history:
        Mean per-positive loss of epochs ``0..epoch`` inclusive.
    config_fingerprint:
        Fingerprint of the training config (see
        :func:`repro.obs.run.config_fingerprint`); resume refuses a
        checkpoint whose fingerprint differs from the live config's.
    rng_state:
        ``Generator.bit_generator.state`` at the end of ``epoch``.
    entry_rng_state:
        The bit-state at ``fit()`` entry, before context generation —
        resume replays it so the regenerated corpus is identical.
    worker_topology:
        ``None`` for single-process checkpoints.  Checkpoints written
        by the hogwild parallel trainer carry a mapping with
        ``workers`` (the worker count), ``entry_rng_states`` (each
        worker's spawn-derived birth state, replayed so workers
        regenerate their exact shard corpora), and ``rng_states`` (each
        worker's stream at the end of ``epoch``).  Resume-equivalence
        is *per worker count*: the parallel trainer refuses a topology
        whose worker count differs from its own, and the single-process
        engine refuses parallel checkpoints outright.  The key is
        optional on load, so pre-topology checkpoints remain readable.
    """

    source: np.ndarray
    target: np.ndarray
    source_bias: np.ndarray
    target_bias: np.ndarray
    epoch: int
    loss_history: tuple[float, ...]
    config_fingerprint: str
    rng_state: dict = field(repr=False)
    entry_rng_state: dict = field(repr=False)
    worker_topology: dict | None = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Capture / restore
    # ------------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        model: "Inf2vecModel",
        epoch: int,
        entry_rng_state: dict | None = None,
        worker_topology: dict | None = None,
    ) -> "TrainingState":
        """Snapshot a fitted model at the end of ``epoch``.

        Arrays are copied so continued training never mutates the
        captured state.  ``entry_rng_state`` defaults to the model's
        *current* bit-state, which is only correct for corpora that are
        not regenerated from an earlier stream position — the training
        loop always passes the true fit-entry state.
        """
        from repro.obs.run import config_fingerprint

        embedding = model.embedding
        rng_state = copy.deepcopy(model.rng.bit_generator.state)
        if entry_rng_state is None:
            entry_rng_state = copy.deepcopy(rng_state)
        _, fingerprint = config_fingerprint(model.config)
        return cls(
            source=embedding.source.copy(),
            target=embedding.target.copy(),
            source_bias=embedding.source_bias.copy(),
            target_bias=embedding.target_bias.copy(),
            epoch=int(epoch),
            loss_history=tuple(float(x) for x in model.loss_history),
            config_fingerprint=fingerprint,
            rng_state=rng_state,
            entry_rng_state=copy.deepcopy(entry_rng_state),
            worker_topology=copy.deepcopy(worker_topology),
        )

    def to_embedding(self) -> "InfluenceEmbedding":
        """The captured parameters as a fresh :class:`InfluenceEmbedding`."""
        from repro.core.embeddings import InfluenceEmbedding

        return InfluenceEmbedding(
            self.source.copy(),
            self.target.copy(),
            self.source_bias.copy(),
            self.target_bias.copy(),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: PathLike) -> Path:
        """Atomically write the state as an ``.npz`` archive.

        Returns the final path (with the ``.npz`` suffix normalised).
        A crash mid-write leaves at most a hidden temp file behind,
        never a truncated checkpoint at the destination.
        """
        final = ensure_suffix(path, ".npz")
        with atomic_output(final) as tmp:
            np.savez_compressed(
                tmp,
                checkpoint_version=np.int64(CHECKPOINT_VERSION),
                source=self.source,
                target=self.target,
                source_bias=self.source_bias,
                target_bias=self.target_bias,
                epoch=np.int64(self.epoch),
                loss_history=np.asarray(self.loss_history, dtype=np.float64),
                config_fingerprint=np.bytes_(
                    self.config_fingerprint.encode("utf-8")
                ),
                rng_state=np.bytes_(
                    _encode_rng_state(self.rng_state).encode("utf-8")
                ),
                entry_rng_state=np.bytes_(
                    _encode_rng_state(self.entry_rng_state).encode("utf-8")
                ),
                worker_topology=np.bytes_(
                    _encode_worker_topology(self.worker_topology).encode(
                        "utf-8"
                    )
                ),
            )
        return final

    @classmethod
    def load(cls, path: PathLike) -> "TrainingState":
        """Load and validate a checkpoint written by :meth:`save`.

        Raises
        ------
        CheckpointError
            If the file is missing, truncated, empty, carries a foreign
            format version, or fails structural validation.
        """
        final = ensure_suffix(path, ".npz")
        try:
            archive = np.load(final)
        except CheckpointError:
            raise
        except Exception as exc:  # zipfile/OSError/pickle zoo — one boundary
            raise CheckpointError(
                f"cannot read checkpoint {final}: {exc}"
            ) from exc
        try:
            with archive as data:
                missing = [k for k in _REQUIRED_KEYS if k not in data.files]
                if missing:
                    raise CheckpointError(
                        f"checkpoint {final} is missing fields {missing}"
                    )
                version = int(data["checkpoint_version"])
                if version != CHECKPOINT_VERSION:
                    raise CheckpointError(
                        f"unsupported checkpoint version {version} in {final} "
                        f"(this library writes version {CHECKPOINT_VERSION})"
                    )
                state = cls(
                    source=np.asarray(data["source"], dtype=np.float64),
                    target=np.asarray(data["target"], dtype=np.float64),
                    source_bias=np.asarray(
                        data["source_bias"], dtype=np.float64
                    ),
                    target_bias=np.asarray(
                        data["target_bias"], dtype=np.float64
                    ),
                    epoch=int(data["epoch"]),
                    loss_history=tuple(
                        float(x) for x in data["loss_history"]
                    ),
                    config_fingerprint=_as_text(data["config_fingerprint"]),
                    rng_state=_decode_rng_state(_as_text(data["rng_state"])),
                    entry_rng_state=_decode_rng_state(
                        _as_text(data["entry_rng_state"])
                    ),
                    # Optional: absent from pre-parallel checkpoints.
                    worker_topology=(
                        _decode_worker_topology(
                            _as_text(data["worker_topology"])
                        )
                        if "worker_topology" in data.files
                        else None
                    ),
                )
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint {final} is corrupt: {exc}"
            ) from exc
        state.validate(source=str(final))
        return state

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self, source: str = "checkpoint") -> None:
        """Structural consistency checks; raises :class:`CheckpointError`."""
        if self.source.ndim != 2 or self.source.shape != self.target.shape:
            raise CheckpointError(
                f"{source}: source shape {self.source.shape} does not match "
                f"target shape {self.target.shape}"
            )
        num_users = self.source.shape[0]
        if (
            self.source_bias.shape != (num_users,)
            or self.target_bias.shape != (num_users,)
        ):
            raise CheckpointError(
                f"{source}: bias shapes {self.source_bias.shape}/"
                f"{self.target_bias.shape} do not match {num_users} users"
            )
        if self.epoch < 0:
            raise CheckpointError(f"{source}: negative epoch {self.epoch}")
        if len(self.loss_history) != self.epoch + 1:
            raise CheckpointError(
                f"{source}: loss history has {len(self.loss_history)} entries "
                f"for epoch {self.epoch} (expected {self.epoch + 1})"
            )
        if not self.config_fingerprint:
            raise CheckpointError(f"{source}: empty config fingerprint")
        if self.worker_topology is not None:
            topology = self.worker_topology
            workers = int(topology.get("workers", 0))
            entry_states = topology.get("entry_rng_states", ())
            states = topology.get("rng_states", ())
            if (
                workers < 1
                or len(entry_states) != workers
                or len(states) != workers
            ):
                raise CheckpointError(
                    f"{source}: worker topology is inconsistent "
                    f"(workers={workers}, {len(entry_states)} entry states, "
                    f"{len(states)} states)"
                )

    @property
    def num_users(self) -> int:
        """Size of the captured user universe."""
        return int(self.source.shape[0])

    @property
    def dim(self) -> int:
        """Captured embedding dimensionality."""
        return int(self.source.shape[1])
