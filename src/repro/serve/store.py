"""Memory-mapped embedding store: raw ``.npy`` shards + a JSON manifest.

Training persists an :class:`~repro.core.embeddings.InfluenceEmbedding`
as one compressed ``.npz`` archive — great for archival, useless for
serving: every worker process that opens it decompresses a private copy
of all four arrays.  :class:`EmbeddingStore` is the read-optimized
layout instead: each parameter array is written as an *uncompressed*
raw ``.npy`` shard (via :func:`repro.ckpt.atomic.atomic_output`, so a
crash mid-save never corrupts a live store) and opened with
``np.load(mmap_mode="r")``.  Opening is O(1) — no bytes are read until
a block is scanned — and because the mapping is shared and read-only,
every worker process on the host serves from the *same* physical pages.

Layout of a store directory::

    store/
      store.json           # manifest: version, shapes, dtype, shard names
      source.npy           # S      (num_users, dim)
      target.npy           # T      (num_users, dim)
      source_bias.npy      # b      (num_users,)
      target_bias.npy      # b̃      (num_users,)

Top-k indices persisted by :class:`repro.serve.index.TopKIndex` live in
the same directory, next to the shards they were computed from.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.ckpt.atomic import atomic_output, atomic_write_text
from repro.core.embeddings import InfluenceEmbedding
from repro.errors import ServingError

__all__ = [
    "EmbeddingStore",
    "STORE_FORMAT_VERSION",
    "STORE_MANIFEST_FILENAME",
]

PathLike = Union[str, Path]

#: Bumped on any incompatible change to the on-disk layout.
STORE_FORMAT_VERSION = 1

#: Manifest file name inside a store directory.
STORE_MANIFEST_FILENAME = "store.json"

#: Shard base names, in manifest order.
_SHARDS = ("source", "target", "source_bias", "target_bias")


class EmbeddingStore:
    """Read-only, memory-mapped view of a persisted embedding.

    Instances come from :meth:`open` (or :meth:`save`, which persists
    and immediately reopens).  The four parameter attributes mirror
    :class:`~repro.core.embeddings.InfluenceEmbedding`, so a store can
    be handed directly to every blocked kernel in
    :mod:`repro.serve.scoring`.
    """

    def __init__(
        self,
        directory: Path,
        source: np.ndarray,
        target: np.ndarray,
        source_bias: np.ndarray,
        target_bias: np.ndarray,
    ):
        self.directory = directory
        self.source = source
        self.target = target
        self.source_bias = source_bias
        self.target_bias = target_bias

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @classmethod
    def save(
        cls, embedding: InfluenceEmbedding, directory: PathLike
    ) -> "EmbeddingStore":
        """Persist ``embedding`` as a store and return the opened store.

        Each shard is written through ``atomic_output`` (temp + fsync +
        rename), and the manifest is written *last* — a reader either
        sees a complete, consistent store or, if the saver crashed, the
        previous manifest still describing the previous complete shards.
        """
        directory = Path(directory)
        arrays = {
            "source": embedding.source,
            "target": embedding.target,
            "source_bias": embedding.source_bias,
            "target_bias": embedding.target_bias,
        }
        manifest: dict[str, object] = {
            "format_version": STORE_FORMAT_VERSION,
            "num_users": embedding.num_users,
            "dim": embedding.dim,
            "dtype": "float64",
            "shards": {},
        }
        for name in _SHARDS:
            filename = f"{name}.npy"
            with atomic_output(directory / filename) as tmp:
                np.save(tmp, np.ascontiguousarray(arrays[name], dtype=np.float64))
            manifest["shards"][name] = filename  # type: ignore[index]
        atomic_write_text(
            directory / STORE_MANIFEST_FILENAME,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
        return cls.open(directory)

    @classmethod
    def open(cls, directory: PathLike) -> "EmbeddingStore":
        """Open a store with every shard memory-mapped read-only."""
        directory = Path(directory)
        manifest_path = directory / STORE_MANIFEST_FILENAME
        if not manifest_path.is_file():
            raise ServingError(
                f"not an embedding store: missing {manifest_path}"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ServingError(f"corrupt store manifest {manifest_path}: {exc}")
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ServingError(
                f"unsupported store format_version {version!r} "
                f"(expected {STORE_FORMAT_VERSION})"
            )
        shards = manifest.get("shards", {})
        arrays: dict[str, np.ndarray] = {}
        for name in _SHARDS:
            filename = shards.get(name)
            if filename is None:
                raise ServingError(f"store manifest lists no {name!r} shard")
            path = directory / filename
            if not path.is_file():
                raise ServingError(f"missing store shard {path}")
            arrays[name] = np.load(path, mmap_mode="r")
        cls._validate_shapes(manifest, arrays)
        return cls(directory, **arrays)

    @staticmethod
    def _validate_shapes(
        manifest: dict[str, object], arrays: dict[str, np.ndarray]
    ) -> None:
        """Cross-check shard shapes against the manifest."""
        num_users = int(manifest.get("num_users", -1))
        dim = int(manifest.get("dim", -1))
        expected = {
            "source": (num_users, dim),
            "target": (num_users, dim),
            "source_bias": (num_users,),
            "target_bias": (num_users,),
        }
        for name, shape in expected.items():
            if arrays[name].shape != shape:
                raise ServingError(
                    f"store shard {name!r} has shape {arrays[name].shape}, "
                    f"manifest says {shape}"
                )

    # ------------------------------------------------------------------
    # Shape / views
    # ------------------------------------------------------------------

    @property
    def num_users(self) -> int:
        """Size of the user universe."""
        return int(self.source.shape[0])

    @property
    def dim(self) -> int:
        """Embedding dimensionality ``K``."""
        return int(self.source.shape[1])

    def embedding(self) -> InfluenceEmbedding:
        """A zero-copy :class:`InfluenceEmbedding` over the mapped shards.

        The wrapped arrays stay memory-mapped and read-only; use
        :meth:`InfluenceEmbedding.copy` if mutable arrays are needed.
        """
        return InfluenceEmbedding(
            self.source, self.target, self.source_bias, self.target_bias
        )

    def __repr__(self) -> str:
        return (
            f"EmbeddingStore(directory={str(self.directory)!r}, "
            f"num_users={self.num_users}, dim={self.dim})"
        )
