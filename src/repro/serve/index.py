"""Precomputed top-k influence indices, persisted next to the store.

A serving deployment that answers the same "top influenced / top
influencers" questions at request rate should not rescan the embedding
per query.  :class:`TopKIndex` materialises the exact answer for
*every* user once (through the blocked :class:`~repro.serve.topk.
TopKEngine`, so the build itself never allocates a dense score matrix)
and persists it as two raw ``.npy`` shards — ``(num_users, k)`` ids and
scores — plus a JSON manifest, all written atomically.  Opened with
``np.load(mmap_mode="r")``, a lookup is two row slices of shared
read-only pages: O(k), independent of ``num_users``.

Because the index is built by the same engine the scan path uses, an
index lookup with ``k' ≤ k`` returns bitwise-identical results to a
live blocked scan — the service exploits that to route queries.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.ckpt.atomic import atomic_output, atomic_write_text
from repro.errors import ServingError
from repro.serve.topk import TopKEngine, TopKResult
from repro.utils.validation import check_positive_int

__all__ = ["TopKIndex", "INDEX_FORMAT_VERSION", "INDEX_DIRECTIONS"]

PathLike = Union[str, Path]

#: Bumped on any incompatible change to the on-disk layout.
INDEX_FORMAT_VERSION = 1

#: The two query directions an index can be built for.
INDEX_DIRECTIONS = ("influenced", "influencers")


def _manifest_name(direction: str) -> str:
    return f"topk_{direction}.json"


def _shard_name(direction: str, part: str) -> str:
    return f"topk_{direction}_{part}.npy"


def _check_direction(direction: str) -> str:
    if direction not in INDEX_DIRECTIONS:
        raise ServingError(
            f"unknown index direction {direction!r}; "
            f"expected one of {INDEX_DIRECTIONS}"
        )
    return direction


class TopKIndex:
    """Materialised exact top-k answers for one query direction.

    Parameters
    ----------
    direction:
        ``"influenced"`` (rows rank targets of each source) or
        ``"influencers"`` (rows rank sources of each target).
    indices / scores:
        ``(num_users, k)`` ranked user ids and scores, row ``u`` being
        the full answer for query user ``u``.
    """

    def __init__(self, direction: str, indices: np.ndarray, scores: np.ndarray):
        self.direction = _check_direction(direction)
        if indices.shape != scores.shape or indices.ndim != 2:
            raise ServingError(
                f"index shards disagree: ids {indices.shape}, "
                f"scores {scores.shape}"
            )
        self.indices = indices
        self.scores = scores

    @property
    def num_users(self) -> int:
        """Number of query users covered (one row each)."""
        return int(self.indices.shape[0])

    @property
    def k(self) -> int:
        """Depth of the precomputed ranking."""
        return int(self.indices.shape[1])

    # ------------------------------------------------------------------
    # Build / query
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        engine: TopKEngine,
        k: int,
        direction: str = "influenced",
        batch_size: int = 64,
    ) -> "TopKIndex":
        """Precompute the exact top-k for every user via ``engine``.

        Queries run in batches of ``batch_size`` users; each batch is a
        blocked scan, so peak memory stays bounded by the engine's
        ``block_size`` regardless of ``num_users``.
        """
        _check_direction(direction)
        k = check_positive_int("k", k)
        batch_size = check_positive_int("batch_size", batch_size)
        query = (
            engine.top_influenced_batch
            if direction == "influenced"
            else engine.top_influencers_batch
        )
        num_users = engine.num_users
        indices = np.empty((num_users, min(k, num_users)), dtype=np.int64)
        scores = np.empty_like(indices, dtype=np.float64)
        for start in range(0, num_users, batch_size):
            users = np.arange(
                start, min(start + batch_size, num_users), dtype=np.int64
            )
            result = query(users, min(k, num_users))
            indices[start : start + users.shape[0]] = result.indices
            scores[start : start + users.shape[0]] = result.scores
        return cls(direction, indices, scores)

    def query(self, user: int, k: int | None = None) -> TopKResult:
        """The precomputed ranking for ``user``, cut to ``k`` entries."""
        user = int(user)
        if not 0 <= user < self.num_users:
            raise ServingError(
                f"user {user} outside [0, {self.num_users})"
            )
        depth = self.k if k is None else check_positive_int("k", k)
        if depth > self.k:
            raise ServingError(
                f"k={depth} exceeds the precomputed index depth {self.k}"
            )
        return TopKResult(
            indices=np.asarray(self.indices[user, :depth]),
            scores=np.asarray(self.scores[user, :depth]),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, directory: PathLike) -> Path:
        """Persist the index into a store directory, manifest last."""
        directory = Path(directory)
        with atomic_output(directory / _shard_name(self.direction, "ids")) as tmp:
            np.save(tmp, np.ascontiguousarray(self.indices, dtype=np.int64))
        with atomic_output(
            directory / _shard_name(self.direction, "scores")
        ) as tmp:
            np.save(tmp, np.ascontiguousarray(self.scores, dtype=np.float64))
        manifest = {
            "format_version": INDEX_FORMAT_VERSION,
            "direction": self.direction,
            "num_users": self.num_users,
            "k": self.k,
            "shards": {
                "ids": _shard_name(self.direction, "ids"),
                "scores": _shard_name(self.direction, "scores"),
            },
        }
        return atomic_write_text(
            directory / _manifest_name(self.direction),
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )

    @classmethod
    def open(cls, directory: PathLike, direction: str = "influenced") -> "TopKIndex":
        """Open a persisted index with memory-mapped shards."""
        directory = Path(directory)
        manifest_path = directory / _manifest_name(_check_direction(direction))
        if not manifest_path.is_file():
            raise ServingError(f"no persisted {direction!r} index in {directory}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ServingError(
                f"corrupt index manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("format_version") != INDEX_FORMAT_VERSION:
            raise ServingError(
                f"unsupported index format_version "
                f"{manifest.get('format_version')!r}"
            )
        shards = manifest.get("shards", {})
        arrays = {}
        for part in ("ids", "scores"):
            filename = shards.get(part)
            if filename is None or not (directory / filename).is_file():
                raise ServingError(
                    f"missing index shard {part!r} for direction {direction!r}"
                )
            arrays[part] = np.load(directory / filename, mmap_mode="r")
        index = cls(direction, arrays["ids"], arrays["scores"])
        if index.num_users != int(manifest.get("num_users", -1)) or index.k != int(
            manifest.get("k", -1)
        ):
            raise ServingError(
                f"index shards disagree with manifest {manifest_path}"
            )
        return index

    @staticmethod
    def exists(directory: PathLike, direction: str = "influenced") -> bool:
        """Whether a persisted index manifest is present."""
        return (Path(directory) / _manifest_name(_check_direction(direction))).is_file()

    def __repr__(self) -> str:
        return (
            f"TopKIndex(direction={self.direction!r}, "
            f"num_users={self.num_users}, k={self.k})"
        )
