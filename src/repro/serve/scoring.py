"""Blocked, deterministic scoring primitives for the serving layer.

The influence score ``x(u, v) = S_u · T_v + b_u + b̃_v`` (Section IV-C)
decomposes into a plain inner product over *bias-augmented* vectors::

    x(u, v) = [S_u ; b_u ; 1] · [T_v ; 1 ; b̃_v]

so every "who does u influence / who influences v" question is a
max-inner-product search (MIPS) over one augmented matrix — no score
matrix ever needs to be materialised.  The helpers here build the
augmented queries and scan the opposite side in fixed-size blocks, so
peak scratch memory is ``O(block_size × dim)`` regardless of
``num_users``.

Determinism contract
--------------------
Every kernel in this module computes scores with
``np.einsum(..., optimize=False)`` rather than BLAS ``@``.  BLAS picks
different kernels (and therefore different floating-point summation
orders) depending on operand shapes, so a blocked scan through ``@``
would *not* be bitwise-identical to a full-matrix scan.  ``einsum``
reduces each output element independently in a fixed loop order, which
makes every function here invariant to both the block size and the
number of queries in a batch — the property the serving tests pin
bitwise.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence, Union

import numpy as np

from repro.errors import ServingError
from repro.utils.validation import check_positive_int

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "EmbeddingLike",
    "augment_sources",
    "augment_targets",
    "score_block",
    "iter_blocks",
    "iter_source_rows",
    "aggregated_scores",
]

#: Default number of database rows scanned per block.
DEFAULT_BLOCK_SIZE = 1024


class EmbeddingLike:
    """Structural type for anything exposing the four parameter arrays.

    Both :class:`repro.core.embeddings.InfluenceEmbedding` and
    :class:`repro.serve.store.EmbeddingStore` satisfy it; the scoring
    kernels only touch ``source``, ``target``, ``source_bias`` and
    ``target_bias``, so memory-mapped stores are scanned without ever
    copying a full matrix.
    """

    source: np.ndarray
    target: np.ndarray
    source_bias: np.ndarray
    target_bias: np.ndarray


def _validate_users(users: Sequence[int], num_users: int) -> np.ndarray:
    """Normalise user ids to an int64 array and bounds-check them."""
    ids = np.atleast_1d(np.asarray(users, dtype=np.int64))
    if ids.ndim != 1:
        raise ServingError(f"user ids must be scalar or 1-D, got shape {ids.shape}")
    if ids.size and (ids.min() < 0 or ids.max() >= num_users):
        raise ServingError(
            f"user ids must lie in [0, {num_users}), got range "
            f"[{ids.min()}, {ids.max()}]"
        )
    return ids


def augment_sources(
    embedding: EmbeddingLike, users: Sequence[int] | None = None
) -> np.ndarray:
    """Bias-augmented source rows ``[S_u ; b_u ; 1]``.

    With ``users=None`` every user is augmented (the database side of a
    ``top_influencers`` scan); otherwise only the requested rows are
    built (the query side of a ``top_influenced`` scan).
    """
    source = embedding.source
    bias = embedding.source_bias
    if users is not None:
        ids = _validate_users(users, source.shape[0])
        source = source[ids]
        bias = bias[ids]
    out = np.empty((source.shape[0], source.shape[1] + 2), dtype=np.float64)
    out[:, :-2] = source
    out[:, -2] = bias
    out[:, -1] = 1.0
    return out


def augment_targets(
    embedding: EmbeddingLike, users: Sequence[int] | None = None
) -> np.ndarray:
    """Bias-augmented target rows ``[T_v ; 1 ; b̃_v]``."""
    target = embedding.target
    bias = embedding.target_bias
    if users is not None:
        ids = _validate_users(users, target.shape[0])
        target = target[ids]
        bias = bias[ids]
    out = np.empty((target.shape[0], target.shape[1] + 2), dtype=np.float64)
    out[:, :-2] = target
    out[:, -2] = 1.0
    out[:, -1] = bias
    return out


def score_block(queries: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Pairwise augmented inner products, ``(m, d+2) × (b, d+2) → (m, b)``.

    The one scoring kernel everything in :mod:`repro.serve` goes
    through.  ``optimize=False`` keeps ``einsum`` on its fixed-order
    reduction path (no BLAS dispatch), which is what makes blocked
    results bitwise-identical to a full scan — see the module
    docstring.
    """
    return np.einsum("kj,ij->ki", queries, block, optimize=False)


def iter_blocks(
    matrix: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(start_row, matrix[start:start + block_size])`` slices."""
    block_size = check_positive_int("block_size", block_size)
    for start in range(0, matrix.shape[0], block_size):
        yield start, matrix[start : start + block_size]


def iter_source_rows(
    embedding: EmbeddingLike,
    sources: Sequence[int] | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Stream full score rows ``x(u, ·)`` in bounded row chunks.

    Yields ``(user_ids, rows)`` where ``rows[i]`` is the complete
    ``(num_users,)`` score row of ``user_ids[i]``.  Callers that need a
    whole-row statistic (a median, a per-row top-k mass) consume the
    stream instead of materialising the dense ``(num_users, num_users)``
    matrix; at most ``max(1, block_size × (dim + 2) / num_users)`` rows
    are in flight, so scratch memory stays ``O(block_size × dim)``.
    """
    block_size = check_positive_int("block_size", block_size)
    num_users = embedding.source.shape[0]
    ids = (
        np.arange(num_users, dtype=np.int64)
        if sources is None
        else _validate_users(sources, num_users)
    )
    dim = embedding.source.shape[1]
    rows_per_chunk = max(1, (block_size * (dim + 2)) // max(num_users, 1))
    targets = augment_targets(embedding)
    for start in range(0, ids.shape[0], rows_per_chunk):
        chunk = ids[start : start + rows_per_chunk]
        queries = augment_sources(embedding, chunk)
        rows = np.empty((chunk.shape[0], num_users), dtype=np.float64)
        for col_start, block in iter_blocks(targets, block_size):
            rows[:, col_start : col_start + block.shape[0]] = score_block(
                queries, block
            )
        yield chunk, rows


#: Aggregators with a vectorised per-block form (Eq. 7 names).
_BUILTIN_AGGREGATES: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "ave": lambda block: block.mean(axis=0),
    "sum": lambda block: block.sum(axis=0),
    "max": lambda block: block.max(axis=0),
    "latest": lambda block: block[-1],
}

AggregatorLike = Union[str, Callable[[np.ndarray], float]]


def aggregated_scores(
    embedding: EmbeddingLike,
    sources: Sequence[int],
    aggregator: AggregatorLike,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> np.ndarray:
    """Aggregate ``x(u, v)`` over sources ``u`` for every target ``v``.

    The blocked replacement for the old dense
    ``(num_sources, num_users)`` matrix in
    :meth:`repro.core.prediction.EmbeddingPredictor.diffusion_scores`:
    each target block of at most ``block_size`` columns is scored and
    reduced before the next is touched.  ``aggregator`` is either a
    builtin name (``"ave"``/``"sum"``/``"max"``/``"latest"``, applied
    vectorised) or any callable mapping a 1-D per-target score column
    to a float (applied per column via ``np.apply_along_axis``).
    """
    block_size = check_positive_int("block_size", block_size)
    num_users = embedding.source.shape[0]
    ids = _validate_users(sources, num_users)
    if ids.shape[0] == 0:
        raise ServingError("aggregated_scores requires at least one source")
    if isinstance(aggregator, str):
        try:
            reduce = _BUILTIN_AGGREGATES[aggregator.lower()]
        except KeyError:
            raise ServingError(
                f"unknown aggregator {aggregator!r}; expected one of "
                f"{sorted(_BUILTIN_AGGREGATES)} or a callable"
            ) from None
    else:
        custom = aggregator

        def reduce(block: np.ndarray) -> np.ndarray:
            return np.apply_along_axis(custom, 0, block)
    queries = augment_sources(embedding, ids)
    targets = augment_targets(embedding)
    out = np.empty(num_users, dtype=np.float64)
    for col_start, block in iter_blocks(targets, block_size):
        pairwise = score_block(queries, block)  # (num_sources, b)
        out[col_start : col_start + block.shape[0]] = reduce(pairwise)
    return out
