"""repro.serve — the read-optimized influence serving layer.

Turns trained :class:`~repro.core.embeddings.InfluenceEmbedding`
parameters into a query subsystem that answers "who does ``u``
influence" / "who influences ``v``" without ever materialising the
dense ``(num_users, num_users)`` score matrix:

* :mod:`repro.serve.store` — :class:`EmbeddingStore`: raw ``.npy``
  shards written atomically, opened with ``np.load(mmap_mode="r")`` so
  all worker processes share the same read-only pages;
* :mod:`repro.serve.scoring` — blocked, bitwise-deterministic scoring
  kernels over the bias-augmented MIPS decomposition
  ``x(u, v) = [S_u ; b_u ; 1] · [T_v ; 1 ; b̃_v]``;
* :mod:`repro.serve.topk` — :class:`TopKEngine`: exact blocked top-k
  scans, single and batched, both directions;
* :mod:`repro.serve.index` — :class:`TopKIndex`: precomputed per-user
  rankings persisted next to the store for O(k) lookups;
* :mod:`repro.serve.service` — :class:`InfluenceService`: the facade a
  request handler holds, with ``repro.obs`` metrics/span telemetry.

Quickstart::

    from repro.serve import EmbeddingStore, InfluenceService

    EmbeddingStore.save(model.embedding, "run/store")
    service = InfluenceService.open("run/store")
    service.precompute(k=10)                  # optional O(k) index
    result = service.top_influenced(user=42, k=10)
    print(result.indices, result.scores)
"""

from repro.serve.index import INDEX_DIRECTIONS, INDEX_FORMAT_VERSION, TopKIndex
from repro.serve.scoring import (
    DEFAULT_BLOCK_SIZE,
    EmbeddingLike,
    aggregated_scores,
    augment_sources,
    augment_targets,
    iter_blocks,
    iter_source_rows,
    score_block,
)
from repro.serve.service import SERVE_LATENCY_BUCKETS, InfluenceService
from repro.serve.store import (
    STORE_FORMAT_VERSION,
    STORE_MANIFEST_FILENAME,
    EmbeddingStore,
)
from repro.serve.topk import TopKEngine, TopKResult

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "EmbeddingLike",
    "EmbeddingStore",
    "INDEX_DIRECTIONS",
    "INDEX_FORMAT_VERSION",
    "InfluenceService",
    "SERVE_LATENCY_BUCKETS",
    "STORE_FORMAT_VERSION",
    "STORE_MANIFEST_FILENAME",
    "TopKEngine",
    "TopKIndex",
    "TopKResult",
    "aggregated_scores",
    "augment_sources",
    "augment_targets",
    "iter_blocks",
    "iter_source_rows",
    "score_block",
]
