"""The influence serving facade: store + engine + optional indices.

:class:`InfluenceService` is what a request handler holds: it opens a
memory-mapped :class:`~repro.serve.store.EmbeddingStore`, discovers any
top-k indices persisted next to it, and routes each query to the
cheapest exact path — an O(k) index lookup when the precomputed depth
covers the request, a blocked scan otherwise.  Both paths return
bitwise-identical rankings (the index is built by the same engine), so
routing is purely a latency decision.

Telemetry follows the repo's null-default contract: inside a
``with recording(run):`` scope every query increments
``serve.queries`` (labelled by direction and path), observes its
latency into both the ``serve.query.seconds`` histogram and the
``serve.query.latency`` streaming-quantile summary (live p50/p95/p99
without retaining samples), and failed queries increment the
``serve.query.errors`` counter (labelled by direction and error type)
before the exception propagates; outside a scope the cost is one
attribute check.  Batch entry points additionally open a span, and a
``trace_sample_rate`` > 0 head-samples single queries into
``serve.query`` spans (direction, path, k, latency) cheap enough to
leave on under load.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.errors import ServingError
from repro.obs.run import active_metrics, active_run
from repro.obs.tracing import HeadSampler
from repro.serve.index import INDEX_DIRECTIONS, TopKIndex
from repro.serve.scoring import DEFAULT_BLOCK_SIZE
from repro.serve.store import EmbeddingStore
from repro.serve.topk import TopKEngine, TopKResult

__all__ = ["InfluenceService", "SERVE_LATENCY_BUCKETS"]

PathLike = Union[str, Path]

#: Query-latency histogram edges in seconds: sub-millisecond index hits
#: up to multi-second cold full scans.
SERVE_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    5.0,
)


def _record_query(direction: str, path: str, seconds: float) -> None:
    """Record one served query into the ambient metrics registry."""
    metrics = active_metrics()
    if not metrics.enabled:
        return
    metrics.counter(
        "serve.queries", "top-k influence queries served"
    ).inc(direction=direction, path=path)
    metrics.histogram(
        "serve.query.seconds", SERVE_LATENCY_BUCKETS, "per-query latency"
    ).observe(seconds, direction=direction, path=path)
    metrics.summary(
        "serve.query.latency",
        description="live per-query latency quantiles (seconds)",
    ).observe(seconds, direction=direction, path=path)


def _record_error(direction: str, error: BaseException) -> None:
    """Count one failed query (the exception still propagates)."""
    metrics = active_metrics()
    if not metrics.enabled:
        return
    metrics.counter(
        "serve.query.errors", "failed top-k influence queries"
    ).inc(direction=direction, error=type(error).__name__)


class InfluenceService:
    """Read-optimized top-k influence queries over a persisted store.

    Parameters
    ----------
    store:
        An opened (memory-mapped) embedding store.
    block_size:
        Block size for live scans (see :class:`TopKEngine`).
    indices:
        Pre-opened top-k indices by direction; :meth:`open` discovers
        persisted ones automatically.
    trace_sample_rate:
        Fraction of single queries to emit as ``serve.query`` spans
        (head-based, seeded; 0 disables sampling entirely).
    trace_seed:
        Seed for the sampling Generator (no-global-rng invariant).
    """

    def __init__(
        self,
        store: EmbeddingStore,
        block_size: int = DEFAULT_BLOCK_SIZE,
        indices: dict[str, TopKIndex] | None = None,
        trace_sample_rate: float = 0.0,
        trace_seed: int = 0,
    ):
        self.store = store
        self.engine = TopKEngine(store, block_size=block_size)
        self.indices = dict(indices or {})
        self.sampler = HeadSampler(trace_sample_rate, seed=trace_seed)

    @classmethod
    def open(
        cls,
        directory: PathLike,
        block_size: int = DEFAULT_BLOCK_SIZE,
        trace_sample_rate: float = 0.0,
        trace_seed: int = 0,
    ) -> "InfluenceService":
        """Open the store at ``directory`` plus any persisted indices."""
        store = EmbeddingStore.open(directory)
        indices = {
            direction: TopKIndex.open(directory, direction)
            for direction in INDEX_DIRECTIONS
            if TopKIndex.exists(directory, direction)
        }
        return cls(
            store,
            block_size=block_size,
            indices=indices,
            trace_sample_rate=trace_sample_rate,
            trace_seed=trace_seed,
        )

    @property
    def num_users(self) -> int:
        """Size of the user universe being served."""
        return self.store.num_users

    # ------------------------------------------------------------------
    # Single-user queries
    # ------------------------------------------------------------------

    def top_influenced(self, user: int, k: int) -> TopKResult:
        """The ``k`` users most influenced by ``user``, best first."""
        return self._query("influenced", user, k)

    def top_influencers(self, user: int, k: int) -> TopKResult:
        """The ``k`` users most influencing ``user``, best first."""
        return self._query("influencers", user, k)

    def _check_user(self, user: int) -> int:
        """Validate a user id against the served universe."""
        user = int(user)
        if not 0 <= user < self.num_users:
            raise ServingError(
                f"user {user} outside served universe "
                f"[0, {self.num_users})"
            )
        return user

    def _check_users(self, users: np.ndarray) -> np.ndarray:
        """Validate a batch of user ids against the served universe.

        Negative ids would otherwise wrap silently through numpy fancy
        indexing on the index path and return the wrong users' rows.
        """
        if users.ndim != 1 or users.shape[0] == 0:
            raise ServingError(
                "at least one query user is required (1-D id array)"
            )
        bad = (users < 0) | (users >= self.num_users)
        if bad.any():
            raise ServingError(
                f"user {int(users[bad][0])} outside served universe "
                f"[0, {self.num_users})"
            )
        return users

    def _check_k(self, k: int) -> int:
        """Validate ``k`` once, before path routing.

        Both backends reject bad depths (the scan via
        ``TopKEngine._check_k``, the index via its depth check), but
        routing happens first — an unchecked ``k`` picks the path, and
        the index path's numpy slicing would quietly truncate
        ``k > num_users`` instead of failing like the scan does.
        Validating here makes the two paths raise identically.
        """
        k = int(k)
        if k < 1:
            raise ServingError(f"k must be a positive integer, got {k}")
        if k > self.num_users:
            raise ServingError(
                f"k={k} exceeds num_users={self.num_users}"
            )
        return k

    def _query(self, direction: str, user: int, k: int) -> TopKResult:
        run = active_run()
        sampled = run.enabled and self.sampler.sample()
        span_cm = (
            run.span("serve.query", direction=direction, user=int(user), k=int(k))
            if sampled
            else nullcontext(None)
        )
        start = time.perf_counter()
        with span_cm as span:
            try:
                user = self._check_user(user)
                k = self._check_k(k)
                index = self.indices.get(direction)
                if index is not None and k <= index.k:
                    result = index.query(user, k)
                    path = "index"
                else:
                    scan = (
                        self.engine.top_influenced
                        if direction == "influenced"
                        else self.engine.top_influencers
                    )
                    result = scan(user, k)
                    path = "scan"
            except BaseException as exc:
                _record_error(direction, exc)
                raise
            seconds = time.perf_counter() - start
            if span is not None:
                span.set_attribute("path", path)
                span.set_attribute("latency_s", seconds)
        _record_query(direction, path, seconds)
        return result

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------

    def top_influenced_batch(self, users: Sequence[int], k: int) -> TopKResult:
        """Batched :meth:`top_influenced`, one ranked row per user."""
        return self._query_batch("influenced", users, k)

    def top_influencers_batch(self, users: Sequence[int], k: int) -> TopKResult:
        """Batched :meth:`top_influencers`, one ranked row per user."""
        return self._query_batch("influencers", users, k)

    def _query_batch(
        self, direction: str, users: Sequence[int], k: int
    ) -> TopKResult:
        users = np.asarray(users, dtype=np.int64)
        start = time.perf_counter()
        index = self.indices.get(direction)
        with active_run().span(
            f"serve.batch.{direction}", num_queries=int(users.shape[0]), k=k
        ) as span:
            try:
                users = self._check_users(users)
                k = self._check_k(k)
                if index is not None and k <= index.k:
                    result = TopKResult(
                        indices=np.asarray(index.indices[users, :k]),
                        scores=np.asarray(index.scores[users, :k]),
                    )
                    path = "index"
                else:
                    scan = (
                        self.engine.top_influenced_batch
                        if direction == "influenced"
                        else self.engine.top_influencers_batch
                    )
                    result = scan(users, k)
                    path = "scan"
            except BaseException as exc:
                _record_error(direction, exc)
                raise
            span.set_attribute("path", path)
        _record_query(direction, path, time.perf_counter() - start)
        return result

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    def precompute(
        self,
        k: int,
        directions: Sequence[str] = ("influenced",),
        batch_size: int = 64,
        persist: bool = True,
    ) -> dict[str, TopKIndex]:
        """Build (and by default persist) top-k indices for ``directions``.

        Built indices immediately serve subsequent queries; with
        ``persist=True`` they are also written next to the store so
        future :meth:`open` calls pick them up.
        """
        built: dict[str, TopKIndex] = {}
        for direction in directions:
            with active_run().span(
                f"serve.precompute.{direction}", k=k
            ):
                index = TopKIndex.build(
                    self.engine, k, direction=direction, batch_size=batch_size
                )
            if persist:
                index.save(self.store.directory)
                # Reopen mapped so served pages are shared, like open().
                index = TopKIndex.open(self.store.directory, direction)
            self.indices[direction] = index
            built[direction] = index
        return built

    def index_batch_query(self, direction: str, users: Sequence[int]) -> TopKResult:
        """Full-depth index rows for ``users`` (index must exist)."""
        index = self.indices.get(direction)
        if index is None:
            error = ServingError(f"no {direction!r} index is loaded")
            _record_error(direction, error)
            raise error
        users = np.asarray(users, dtype=np.int64)
        try:
            users = self._check_users(users)
        except ServingError as exc:
            _record_error(direction, exc)
            raise
        return TopKResult(
            indices=np.asarray(index.indices[users]),
            scores=np.asarray(index.scores[users]),
        )

    def __repr__(self) -> str:
        loaded = sorted(self.indices)
        return (
            f"InfluenceService(num_users={self.num_users}, "
            f"indices={loaded})"
        )
