"""Blocked exact top-k engine over the augmented-vector MIPS decomposition.

Answers the two serving questions at bounded memory:

* ``top_influenced(u, k)`` — the ``k`` users ``v`` maximising
  ``x(u, v)``: a max-inner-product scan of the augmented *target* rows
  with query ``[S_u ; b_u ; 1]``;
* ``top_influencers(v, k)`` — the ``k`` users ``u`` maximising
  ``x(u, v)``: the symmetric scan of the augmented *source* rows with
  query ``[T_v ; 1 ; b̃_v]``.

The database side is scanned in fixed-size row blocks
(:func:`repro.serve.scoring.iter_blocks`); after each block the running
candidates are merged and cut back to ``k``, so the engine never holds
more than ``O(block_size × dim)`` scratch — the dense
``(num_users, num_users)`` score matrix of the pre-serving code paths
is gone.  Results are *exact* and bitwise-identical to a brute-force
full-scan argsort: scores come from the deterministic ``einsum`` kernel
(see :mod:`repro.serve.scoring`) and ties are broken by the smaller
user id, which makes the ranking a total order independent of blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ServingError
from repro.serve.scoring import (
    DEFAULT_BLOCK_SIZE,
    EmbeddingLike,
    augment_sources,
    augment_targets,
    iter_blocks,
    score_block,
)
from repro.utils.validation import check_positive_int

__all__ = ["TopKResult", "TopKEngine"]


@dataclass(frozen=True)
class TopKResult:
    """Ranked answer to one (or a batch of) top-k queries.

    Attributes
    ----------
    indices:
        User ids in rank order — shape ``(k,)`` for a single query,
        ``(m, k)`` for a batch.
    scores:
        The matching influence scores ``x(u, v)``, same shape.
    """

    indices: np.ndarray
    scores: np.ndarray

    @property
    def k(self) -> int:
        """Number of ranked results per query."""
        return int(self.indices.shape[-1])


def _rank_topk(
    scores: np.ndarray, indices: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-k of candidate ``(scores, indices)``, ties to low id.

    ``np.lexsort`` orders each row by ``(-score, index)`` — descending
    score, ascending user id on exact ties — which is a deterministic
    total order, so cutting to ``k`` after every merge step commutes
    with cutting once at the end (the property the bitwise tests pin).
    """
    order = np.lexsort((indices, -scores), axis=-1)[..., :k]
    return (
        np.take_along_axis(scores, order, axis=-1),
        np.take_along_axis(indices, order, axis=-1),
    )


class TopKEngine:
    """Exact blocked top-k queries over an embedding or embedding store.

    Parameters
    ----------
    embedding:
        Anything exposing ``source``/``target``/``source_bias``/
        ``target_bias`` — an in-memory
        :class:`~repro.core.embeddings.InfluenceEmbedding` or a
        memory-mapped :class:`~repro.serve.store.EmbeddingStore`.
    block_size:
        Database rows scored per block; caps scratch memory at
        ``block_size × (dim + 2)`` floats per scan.
    """

    def __init__(
        self,
        embedding: EmbeddingLike,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ):
        self.embedding = embedding
        self.block_size = check_positive_int("block_size", block_size)

    @property
    def num_users(self) -> int:
        """Size of the user universe being served."""
        return int(self.embedding.source.shape[0])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def top_influenced(self, user: int, k: int) -> TopKResult:
        """The ``k`` users most influenced by ``user``, best first."""
        batch = self.top_influenced_batch([user], k)
        return TopKResult(batch.indices[0], batch.scores[0])

    def top_influencers(self, user: int, k: int) -> TopKResult:
        """The ``k`` users most influencing ``user``, best first."""
        batch = self.top_influencers_batch([user], k)
        return TopKResult(batch.indices[0], batch.scores[0])

    def top_influenced_batch(
        self, users: Sequence[int], k: int
    ) -> TopKResult:
        """Batched :meth:`top_influenced` — one ranked row per query user."""
        queries = augment_sources(self.embedding, users)
        database = augment_targets(self.embedding)
        return self._scan(queries, database, k)

    def top_influencers_batch(
        self, users: Sequence[int], k: int
    ) -> TopKResult:
        """Batched :meth:`top_influencers` — one ranked row per query user."""
        queries = augment_targets(self.embedding, users)
        database = augment_sources(self.embedding)
        return self._scan(queries, database, k)

    # ------------------------------------------------------------------
    # Core scan
    # ------------------------------------------------------------------

    def _check_k(self, k: int) -> int:
        k = check_positive_int("k", k)
        if k > self.num_users:
            raise ServingError(
                f"k={k} exceeds num_users={self.num_users}"
            )
        return k

    def _scan(
        self, queries: np.ndarray, database: np.ndarray, k: int
    ) -> TopKResult:
        """Blocked exact MIPS: merge running top-k after every block."""
        k = self._check_k(k)
        if queries.shape[0] == 0:
            raise ServingError("at least one query user is required")
        num_queries = queries.shape[0]
        best_scores = np.empty((num_queries, 0), dtype=np.float64)
        best_indices = np.empty((num_queries, 0), dtype=np.int64)
        for start, block in iter_blocks(database, self.block_size):
            block_scores = score_block(queries, block)
            block_indices = np.broadcast_to(
                np.arange(start, start + block.shape[0], dtype=np.int64),
                block_scores.shape,
            )
            best_scores, best_indices = _rank_topk(
                np.concatenate([best_scores, block_scores], axis=1),
                np.concatenate([best_indices, block_indices], axis=1),
                k,
            )
        return TopKResult(indices=best_indices, scores=best_scores)
