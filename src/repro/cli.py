"""Command-line interface: ``python -m repro.cli <experiment> [options]``.

Runs any of the paper's experiment pipelines and prints the
corresponding table/figure, e.g.::

    python -m repro.cli table2 --scale small --seed 0
    python -m repro.cli fig3
    python -m repro.cli all --scale small

``all`` runs every experiment in paper order — the one-command full
reproduction.  ``--metrics-out`` / ``--trace-out`` turn on the
``repro.obs`` telemetry for the whole invocation and write the run
manifest / span trace afterwards — including on SIGTERM, via the
flush-on-exit hooks in :mod:`repro.obs.export`.  ``--telemetry-dir``
additionally starts a :class:`~repro.obs.export.PeriodicExporter`
that atomically rewrites a Prometheus-text exposition snapshot plus
manifest/trace into the directory every ``--export-every`` seconds
while the command runs.

The ``train`` command runs one crash-safe Inf2vec training job with
checkpointing::

    python -m repro.cli train --epochs 20 --checkpoint-dir run/ckpt \
        --checkpoint-every 5 --out run/embedding.npz

After an interruption (SIGKILL, OOM, power loss), re-running the same
command with ``--resume`` continues from the latest valid checkpoint to
the same final embeddings an uninterrupted run would have produced.

``--workers N`` switches training to the hogwild shared-memory engine
(:mod:`repro.parallel`): N processes update one shared parameter block
lock-free, and ``--stream-chunk E`` additionally streams each worker's
corpus in E-episode chunks so memory stays bounded as ``--num-users``
grows.  Checkpoints written with ``--workers`` resume only at the same
worker count (see DESIGN.md §14 for the determinism contract).

The ``serve`` command builds and queries the read-optimized influence
serving layer (:mod:`repro.serve`)::

    python -m repro serve --embedding run/embedding.npz --store-dir run/store
    python -m repro serve --store-dir run/store --precompute-k 10
    python -m repro serve --store-dir run/store --query 42 --top-k 10

The first call converts a trained ``.npz`` embedding into a
memory-mapped store; the second persists an exact top-k index next to
it; the third answers "who does user 42 influence most" from the store
(``--direction influencers`` asks the reverse question).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import Callable, Mapping

from repro.ckpt import CheckpointManager
from repro.obs import RunRecorder, recording
from repro.obs.export import PeriodicExporter, on_process_exit
from repro.experiments import (
    fig1_2_powerlaw,
    fig3_cdf,
    fig6_visualization,
    fig7_dimension,
    fig8_context_length,
    fig9_efficiency,
    significance,
    table1_stats,
    table2_activation,
    table3_diffusion,
    table4_ablation,
    table5_aggregation,
    table6_casestudy,
)

#: Experiment name -> (description, main callable).
EXPERIMENTS: Mapping[str, tuple[str, Callable[[str, int], None]]] = {
    "table1": ("Table I — dataset statistics", table1_stats.main),
    "fig1-2": ("Figures 1-2 — power-law pair frequencies", fig1_2_powerlaw.main),
    "fig3": ("Figure 3 — active-friend CDF", fig3_cdf.main),
    "table2": ("Table II — activation prediction", table2_activation.main),
    "table3": ("Table III — diffusion prediction", table3_diffusion.main),
    "table4": ("Table IV — Inf2vec-L ablation", table4_ablation.main),
    "table5": ("Table V — aggregation functions", table5_aggregation.main),
    "fig6": ("Figure 6 — t-SNE visualisation", fig6_visualization.main),
    "fig7": ("Figure 7 — dimension sweep", fig7_dimension.main),
    "fig8": ("Figure 8 — context-length sweep", fig8_context_length.main),
    "fig9": ("Figure 9 — per-iteration efficiency", fig9_efficiency.main),
    "table6": ("Table VI — citation case study", table6_casestudy.main),
    "sigma": ("Multi-run mean ± σ + significance protocol", significance.main),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Inf2vec (ICDE 2018).",
    )
    choices = list(EXPERIMENTS) + ["all", "train", "serve", "influence-max"]
    parser.add_argument(
        "experiment",
        choices=choices,
        help=(
            "which table/figure to regenerate ('all' runs everything; "
            "'train' runs one checkpointed training job; 'serve' builds "
            "and queries the influence serving layer; 'influence-max' "
            "selects viral-marketing seeds by MC greedy or RIS sketches)"
        ),
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("small", "medium"),
        help="working-point size (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master RNG seed (default: 0)"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="record telemetry and write the run manifest JSON here",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record telemetry and write the span trace JSONL here",
    )
    parser.add_argument(
        "--telemetry-dir",
        metavar="DIR",
        help="record telemetry and periodically export a Prometheus-text "
        "snapshot + manifest + trace into this directory while running",
    )
    parser.add_argument(
        "--export-every",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="exposition rewrite cadence for --telemetry-dir (default: 5)",
    )

    training = parser.add_argument_group(
        "training options (train command only)"
    )
    training.add_argument(
        "--epochs", type=int, default=10, help="training epochs (default: 10)"
    )
    training.add_argument(
        "--dim", type=int, default=16, help="embedding dimension (default: 16)"
    )
    training.add_argument(
        "--num-users",
        type=int,
        default=200,
        help="synthetic dataset size (default: 200; ignored with --dataset)",
    )
    training.add_argument(
        "--num-items",
        type=int,
        default=40,
        help="synthetic item count (default: 40; ignored with --dataset)",
    )
    training.add_argument(
        "--dataset",
        metavar="PATH",
        help="train on a dataset archive written by save_dataset() "
        "instead of generating a synthetic one",
    )
    training.add_argument(
        "--out",
        metavar="PATH",
        help="write the final embedding .npz here",
    )
    training.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="checkpoint training state into this directory",
    )
    training.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint cadence in epochs (default: 1)",
    )
    training.add_argument(
        "--checkpoint-keep",
        type=int,
        default=3,
        metavar="K",
        help="retain the K newest checkpoints (default: 3)",
    )
    training.add_argument(
        "--resume",
        action="store_true",
        help="resume from the latest valid checkpoint in --checkpoint-dir",
    )
    training.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="train with N hogwild worker processes over shared-memory "
        "parameters (default: single-process engine; N=1 runs the "
        "parallel engine deterministically)",
    )
    training.add_argument(
        "--stream-chunk",
        type=int,
        default=None,
        metavar="EPISODES",
        help="stream the training corpus in chunks of this many episodes "
        "per worker instead of materialising it (requires --workers and "
        "uniform negative sampling)",
    )

    influence = parser.add_argument_group(
        "influence-maximisation options (influence-max command only)"
    )
    influence.add_argument(
        "--method",
        choices=("mc", "ris", "ris-pruned"),
        default="ris",
        help="seed-selection engine: Monte-Carlo CELF greedy, RIS/IMM "
        "sketches, or RIS over an embedding-pruned candidate pool "
        "(default: ris)",
    )
    influence.add_argument(
        "--preset",
        choices=("digg", "flickr"),
        default="digg",
        help="synthetic dataset profile (default: digg); sized by "
        "--num-users/--num-items, probabilities are the planted "
        "ground truth",
    )
    influence.add_argument(
        "--num-seeds",
        type=int,
        default=10,
        metavar="K",
        help="seed-set size to select (default: 10)",
    )
    influence.add_argument(
        "--mc-runs",
        type=int,
        default=100,
        metavar="N",
        help="Monte-Carlo simulations per spread estimate for --method mc "
        "(default: 100)",
    )
    influence.add_argument(
        "--mc-candidates",
        type=int,
        default=100,
        metavar="N",
        help="restrict MC greedy to the N highest-out-degree candidates; "
        "0 scans every node (default: 100)",
    )
    influence.add_argument(
        "--epsilon",
        type=float,
        default=None,
        metavar="EPS",
        help="IMM approximation slack for the RIS methods "
        "(default: library default)",
    )
    influence.add_argument(
        "--max-sketches",
        type=int,
        default=None,
        metavar="N",
        help="hard cap on the RIS sketch pool (default: library default)",
    )
    influence.add_argument(
        "--num-candidates",
        type=int,
        default=None,
        metavar="N",
        help="embedding-pruned candidate pool size for --method ris-pruned "
        "(default: max(64, 16·K))",
    )
    influence.add_argument(
        "--eval-runs",
        type=int,
        default=500,
        metavar="N",
        help="Monte-Carlo simulations for the final spread evaluation of "
        "the chosen seeds; 0 skips it (default: 500)",
    )

    serving = parser.add_argument_group("serving options (serve command only)")
    serving.add_argument(
        "--store-dir",
        metavar="DIR",
        help="embedding store directory to build and/or query",
    )
    serving.add_argument(
        "--embedding",
        metavar="PATH",
        help="build the store from this trained embedding .npz "
        "(as written by train --out)",
    )
    serving.add_argument(
        "--precompute-k",
        type=int,
        metavar="K",
        help="precompute and persist an exact top-K index for --direction",
    )
    serving.add_argument(
        "--query",
        type=int,
        action="append",
        metavar="USER",
        help="user id to query (repeatable)",
    )
    serving.add_argument(
        "--top-k",
        type=int,
        default=10,
        metavar="K",
        help="results per query (default: 10)",
    )
    serving.add_argument(
        "--direction",
        choices=("influenced", "influencers"),
        default="influenced",
        help="rank who a user influences, or who influences them "
        "(default: influenced)",
    )
    serving.add_argument(
        "--block-size",
        type=int,
        default=None,
        metavar="ROWS",
        help="rows scanned per block on the live-scan path",
    )
    serving.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="fraction of single queries emitted as serve.query spans "
        "(head-based, seeded; default: 0)",
    )
    return parser


def _run_training(args: argparse.Namespace) -> int:
    """The ``train`` command: one checkpointed training job."""
    from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
    from repro.data.serialization import load_dataset
    from repro.data.synthetic import SyntheticSocialDataset

    if args.dataset:
        dataset = load_dataset(args.dataset)
    else:
        dataset = SyntheticSocialDataset.digg_like(
            num_users=args.num_users, num_items=args.num_items, seed=args.seed
        )
    manager = None
    if args.checkpoint_dir:
        manager = CheckpointManager(
            args.checkpoint_dir,
            every=args.checkpoint_every,
            keep=args.checkpoint_keep,
        )
        if args.resume:
            state = manager.latest_state()
            if state is None:
                print(
                    f"no usable checkpoint in {args.checkpoint_dir}; "
                    "starting fresh"
                )
            else:
                print(f"resuming from checkpoint at epoch {state.epoch}")
    if args.stream_chunk is not None and args.workers is None:
        raise SystemExit("--stream-chunk requires --workers")
    config = Inf2vecConfig(dim=args.dim, epochs=args.epochs)
    if args.workers is not None:
        from repro.parallel import HogwildTrainer

        trainer = HogwildTrainer(
            config,
            workers=args.workers,
            seed=args.seed,
            stream_chunk=args.stream_chunk,
        )
        model = trainer.fit(
            dataset.graph, dataset.log, checkpoint=manager, resume=args.resume
        )
    else:
        model = Inf2vecModel(config, seed=args.seed)
        model.fit(
            dataset.graph, dataset.log, checkpoint=manager, resume=args.resume
        )
    losses = model.loss_history
    if losses:
        workers_note = (
            f" with {args.workers} workers" if args.workers is not None else ""
        )
        print(
            f"trained dim={args.dim} over {len(losses)} epochs "
            f"on {dataset.graph.num_nodes} users{workers_note}; "
            f"final loss {losses[-1]:.6f}"
        )
    else:
        print("trained (no epochs ran)")
    if args.out:
        model.embedding.save(args.out)
        print(f"embedding written to {args.out}")
    return 0


def _run_serving(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``serve`` command: build, index, and query a store."""
    from repro.core.embeddings import InfluenceEmbedding
    from repro.serve import DEFAULT_BLOCK_SIZE, EmbeddingStore, InfluenceService

    if not args.store_dir:
        parser.error("serve requires --store-dir")
    if args.embedding:
        store = EmbeddingStore.save(
            InfluenceEmbedding.load(args.embedding), args.store_dir
        )
        print(
            f"store built at {args.store_dir}: "
            f"{store.num_users} users, dim {store.dim}"
        )
    service = InfluenceService.open(
        args.store_dir,
        block_size=args.block_size or DEFAULT_BLOCK_SIZE,
        trace_sample_rate=args.trace_sample,
        trace_seed=args.seed,
    )
    if args.precompute_k:
        service.precompute(args.precompute_k, directions=(args.direction,))
        print(
            f"precomputed top-{args.precompute_k} {args.direction} index "
            f"for {service.num_users} users"
        )
    verb = "influenced by" if args.direction == "influenced" else "influencing"
    for user in args.query or []:
        result = (
            service.top_influenced(user, args.top_k)
            if args.direction == "influenced"
            else service.top_influencers(user, args.top_k)
        )
        print(f"top {result.k} users {verb} user {user}:")
        for rank, (other, score) in enumerate(
            zip(result.indices, result.scores), start=1
        ):
            print(f"  {rank:>3}. user {int(other):<8} x = {float(score):+.6f}")
    if not args.embedding and not args.precompute_k and not args.query:
        print(
            f"opened store at {args.store_dir}: {service.num_users} users, "
            f"dim {service.store.dim}, indices {sorted(service.indices) or 'none'}"
        )
    return 0


def _run_influence_max(args: argparse.Namespace) -> int:
    """The ``influence-max`` command: select and evaluate viral seeds."""
    import time

    import numpy as np

    from repro.apps.influence_max import (
        greedy_influence_maximization,
        ris_influence_maximization,
        ris_pruned_influence_maximization,
    )
    from repro.data.synthetic import SyntheticSocialDataset
    from repro.diffusion.montecarlo import spread_with_standard_error

    maker = (
        SyntheticSocialDataset.digg_like
        if args.preset == "digg"
        else SyntheticSocialDataset.flickr_like
    )
    dataset = maker(
        num_users=args.num_users, num_items=args.num_items, seed=args.seed
    )
    probabilities = dataset.planted.edge_probabilities
    print(
        f"{args.preset} preset: {dataset.graph.num_nodes} users, "
        f"{dataset.graph.num_edges} edges, planted probabilities"
    )

    sketch_kwargs: dict[str, object] = {}
    if args.epsilon is not None:
        sketch_kwargs["epsilon"] = args.epsilon
    if args.max_sketches is not None:
        sketch_kwargs["max_sketches"] = args.max_sketches

    start = time.perf_counter()
    if args.method == "mc":
        candidates = None
        if args.mc_candidates:
            pool = min(args.mc_candidates, dataset.graph.num_nodes)
            out_degrees = np.diff(dataset.graph.out_csr()[0])
            candidates = np.sort(np.argsort(-out_degrees)[:pool])
            print(
                f"mc greedy over the {pool} highest-out-degree candidates "
                f"({args.mc_runs} runs per estimate)"
            )
        selection = greedy_influence_maximization(
            probabilities,
            args.num_seeds,
            num_runs=args.mc_runs,
            seed=args.seed,
            candidates=candidates,
        )
    elif args.method == "ris":
        selection = ris_influence_maximization(
            probabilities, args.num_seeds, seed=args.seed, **sketch_kwargs
        )
    else:
        from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel

        config = Inf2vecConfig(dim=args.dim, epochs=args.epochs)
        model = Inf2vecModel(config, seed=args.seed)
        model.fit(dataset.graph, dataset.log)
        print(
            f"trained pruning embedding dim={args.dim} "
            f"over {args.epochs} epochs"
        )
        selection = ris_pruned_influence_maximization(
            probabilities,
            model.embedding,
            args.num_seeds,
            num_candidates=args.num_candidates,
            seed=args.seed,
            **sketch_kwargs,
        )
    elapsed = time.perf_counter() - start

    print(
        f"{args.method} selected {len(selection.seeds)} seeds "
        f"in {elapsed:.3f}s (internal estimate "
        f"{selection.expected_spread:.2f})"
    )
    print("  seeds: " + " ".join(str(s) for s in selection.seeds))
    if args.eval_runs:
        spread, stderr = spread_with_standard_error(
            probabilities,
            selection.seeds,
            num_runs=args.eval_runs,
            seed=args.seed + 1,
        )
        print(
            f"  MC-evaluated spread over {args.eval_runs} runs: "
            f"{spread:.2f} +/- {stderr:.2f}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, (description, _main) in EXPERIMENTS.items():
            print(f"{name:<10} {description}")
        return 0

    if args.resume and not args.checkpoint_dir:
        parser.error("--resume requires --checkpoint-dir")

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    else:
        names = [args.experiment]

    telemetry = (
        args.metrics_out is not None
        or args.trace_out is not None
        or args.telemetry_dir is not None
    )
    run = RunRecorder(name=args.experiment) if telemetry else None
    if run is not None:
        run.annotate(scale=args.scale, seed=args.seed)

    exporter: PeriodicExporter | None = None
    unregister = None
    try:
        with recording(run) if run is not None else nullcontext():
            if run is not None:
                if args.metrics_out or args.trace_out:
                    # A killed run (SIGTERM) still flushes its files.
                    # Registered before the exporter starts so that once
                    # any telemetry file is observable on disk, every
                    # flush hook is in place.
                    unregister = on_process_exit(
                        lambda: _write_telemetry(run, args, announce=False)
                    )
                if args.telemetry_dir:
                    exporter = PeriodicExporter(
                        run, args.telemetry_dir, every=args.export_every
                    )
                    exporter.start()
            if args.experiment == "train":
                exit_code = _run_training(args)
            elif args.experiment == "serve":
                exit_code = _run_serving(args, parser)
            elif args.experiment == "influence-max":
                exit_code = _run_influence_max(args)
            else:
                exit_code = 0
                for name in names:
                    description, runner = EXPERIMENTS[name]
                    print(
                        f"=== {description} "
                        f"(scale={args.scale}, seed={args.seed}) ==="
                    )
                    if run is not None:
                        with run.span(f"experiment.{name}", scale=args.scale):
                            runner(args.scale, args.seed)
                    else:
                        runner(args.scale, args.seed)
                    print()
    finally:
        if exporter is not None:
            exporter.stop()
        if unregister is not None:
            unregister()

    _write_telemetry(run, args)
    return exit_code


def _write_telemetry(
    run: RunRecorder | None, args: argparse.Namespace, announce: bool = True
) -> None:
    """Write the manifest/trace files when telemetry was requested."""
    if run is None:
        return
    if args.metrics_out:
        run.write(args.metrics_out)
        if announce:
            print(f"run manifest written to {args.metrics_out}")
    if args.trace_out:
        run.write_trace(args.trace_out)
        if announce:
            print(f"span trace written to {args.trace_out}")


if __name__ == "__main__":
    sys.exit(main())
