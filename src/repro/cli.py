"""Command-line interface: ``python -m repro.cli <experiment> [options]``.

Runs any of the paper's experiment pipelines and prints the
corresponding table/figure, e.g.::

    python -m repro.cli table2 --scale small --seed 0
    python -m repro.cli fig3
    python -m repro.cli all --scale small

``all`` runs every experiment in paper order — the one-command full
reproduction.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Mapping

from repro.experiments import (
    fig1_2_powerlaw,
    fig3_cdf,
    fig6_visualization,
    fig7_dimension,
    fig8_context_length,
    fig9_efficiency,
    significance,
    table1_stats,
    table2_activation,
    table3_diffusion,
    table4_ablation,
    table5_aggregation,
    table6_casestudy,
)

#: Experiment name -> (description, main callable).
EXPERIMENTS: Mapping[str, tuple[str, Callable[[str, int], None]]] = {
    "table1": ("Table I — dataset statistics", table1_stats.main),
    "fig1-2": ("Figures 1-2 — power-law pair frequencies", fig1_2_powerlaw.main),
    "fig3": ("Figure 3 — active-friend CDF", fig3_cdf.main),
    "table2": ("Table II — activation prediction", table2_activation.main),
    "table3": ("Table III — diffusion prediction", table3_diffusion.main),
    "table4": ("Table IV — Inf2vec-L ablation", table4_ablation.main),
    "table5": ("Table V — aggregation functions", table5_aggregation.main),
    "fig6": ("Figure 6 — t-SNE visualisation", fig6_visualization.main),
    "fig7": ("Figure 7 — dimension sweep", fig7_dimension.main),
    "fig8": ("Figure 8 — context-length sweep", fig8_context_length.main),
    "fig9": ("Figure 9 — per-iteration efficiency", fig9_efficiency.main),
    "table6": ("Table VI — citation case study", table6_casestudy.main),
    "sigma": ("Multi-run mean ± σ + significance protocol", significance.main),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Inf2vec (ICDE 2018).",
    )
    choices = list(EXPERIMENTS) + ["all"]
    parser.add_argument(
        "experiment",
        choices=choices,
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("small", "medium"),
        help="working-point size (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master RNG seed (default: 0)"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, (description, _main) in EXPERIMENTS.items():
            print(f"{name:<10} {description}")
        return 0

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    else:
        names = [args.experiment]

    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"=== {description} (scale={args.scale}, seed={args.seed}) ===")
        runner(args.scale, args.seed)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
