"""Command-line interface: ``python -m repro.cli <experiment> [options]``.

Runs any of the paper's experiment pipelines and prints the
corresponding table/figure, e.g.::

    python -m repro.cli table2 --scale small --seed 0
    python -m repro.cli fig3
    python -m repro.cli all --scale small

``all`` runs every experiment in paper order — the one-command full
reproduction.  ``--metrics-out`` / ``--trace-out`` turn on the
``repro.obs`` telemetry for the whole invocation and write the run
manifest / span trace afterwards.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import Callable, Mapping

from repro.obs import RunRecorder, recording
from repro.experiments import (
    fig1_2_powerlaw,
    fig3_cdf,
    fig6_visualization,
    fig7_dimension,
    fig8_context_length,
    fig9_efficiency,
    significance,
    table1_stats,
    table2_activation,
    table3_diffusion,
    table4_ablation,
    table5_aggregation,
    table6_casestudy,
)

#: Experiment name -> (description, main callable).
EXPERIMENTS: Mapping[str, tuple[str, Callable[[str, int], None]]] = {
    "table1": ("Table I — dataset statistics", table1_stats.main),
    "fig1-2": ("Figures 1-2 — power-law pair frequencies", fig1_2_powerlaw.main),
    "fig3": ("Figure 3 — active-friend CDF", fig3_cdf.main),
    "table2": ("Table II — activation prediction", table2_activation.main),
    "table3": ("Table III — diffusion prediction", table3_diffusion.main),
    "table4": ("Table IV — Inf2vec-L ablation", table4_ablation.main),
    "table5": ("Table V — aggregation functions", table5_aggregation.main),
    "fig6": ("Figure 6 — t-SNE visualisation", fig6_visualization.main),
    "fig7": ("Figure 7 — dimension sweep", fig7_dimension.main),
    "fig8": ("Figure 8 — context-length sweep", fig8_context_length.main),
    "fig9": ("Figure 9 — per-iteration efficiency", fig9_efficiency.main),
    "table6": ("Table VI — citation case study", table6_casestudy.main),
    "sigma": ("Multi-run mean ± σ + significance protocol", significance.main),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Inf2vec (ICDE 2018).",
    )
    choices = list(EXPERIMENTS) + ["all"]
    parser.add_argument(
        "experiment",
        choices=choices,
        help="which table/figure to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("small", "medium"),
        help="working-point size (default: small)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="master RNG seed (default: 0)"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiments and exit"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="record telemetry and write the run manifest JSON here",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="record telemetry and write the span trace JSONL here",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name, (description, _main) in EXPERIMENTS.items():
            print(f"{name:<10} {description}")
        return 0

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    else:
        names = [args.experiment]

    telemetry = args.metrics_out is not None or args.trace_out is not None
    run = RunRecorder(name=args.experiment) if telemetry else None
    if run is not None:
        run.annotate(scale=args.scale, seed=args.seed)

    with recording(run) if run is not None else nullcontext():
        for name in names:
            description, runner = EXPERIMENTS[name]
            print(
                f"=== {description} (scale={args.scale}, seed={args.seed}) ==="
            )
            if run is not None:
                with run.span(f"experiment.{name}", scale=args.scale):
                    runner(args.scale, args.seed)
            else:
                runner(args.scale, args.seed)
            print()

    if run is not None:
        if args.metrics_out:
            run.write(args.metrics_out)
            print(f"run manifest written to {args.metrics_out}")
        if args.trace_out:
            run.write_trace(args.trace_out)
            print(f"span trace written to {args.trace_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
