"""Aggregation functions for multi-influencer likelihoods (Eq. 7).

A candidate user ``v`` may be influenced by several already-active
users ``S_v``.  Latent-representation models combine the pairwise
scores ``x(u, v)`` with an aggregation function ``F``:

* ``Ave`` — mean of all scores (the paper's default and Table V winner),
* ``Sum`` — their sum,
* ``Max`` — the strongest single influencer,
* ``Latest`` — only the most recently activated influencer.

``Latest`` depends on activation order, so aggregators receive scores
in the order the influencers activated (earliest first).
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.errors import EvaluationError

#: Signature shared by all aggregators: scores (earliest-activated
#: influencer first) -> combined likelihood.
Aggregator = Callable[[np.ndarray], float]


def _require_scores(scores: np.ndarray) -> np.ndarray:
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise EvaluationError(f"scores must be 1-D, got shape {scores.shape}")
    if scores.shape[0] == 0:
        raise EvaluationError("cannot aggregate an empty score list")
    return scores


def ave(scores: np.ndarray) -> float:
    """Mean of all influencer scores."""
    return float(_require_scores(scores).mean())


def total(scores: np.ndarray) -> float:
    """Sum of all influencer scores (the paper's ``Sum``)."""
    return float(_require_scores(scores).sum())


def maximum(scores: np.ndarray) -> float:
    """The single strongest influencer score (the paper's ``Max``)."""
    return float(_require_scores(scores).max())


def latest(scores: np.ndarray) -> float:
    """Score of the most recently activated influencer (``x_n``)."""
    return float(_require_scores(scores)[-1])


AGGREGATORS: Mapping[str, Aggregator] = {
    "ave": ave,
    "sum": total,
    "max": maximum,
    "latest": latest,
}


def get_aggregator(name: str) -> Aggregator:
    """Look up an aggregator by its paper name (case-insensitive)."""
    key = name.strip().lower()
    try:
        return AGGREGATORS[key]
    except KeyError:
        raise EvaluationError(
            f"unknown aggregator {name!r}; choose from {sorted(AGGREGATORS)}"
        ) from None
