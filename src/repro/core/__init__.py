"""The paper's primary contribution: Inf2vec and its building blocks."""

from repro.core.aggregation import AGGREGATORS, get_aggregator
from repro.core.context import (
    ContextConfig,
    ContextGenerator,
    InfluenceContext,
    batched_random_walk_with_restart,
    generate_context,
    generate_episode_contexts,
    generate_episode_contexts_batched,
    random_walk_with_restart,
)
from repro.core.embeddings import InfluenceEmbedding
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.core.negative import NegativeSampler
from repro.core.pairs import (
    InfluencePair,
    PairFrequencies,
    extract_all_pairs,
    extract_episode_pairs,
    frequency_histogram,
    pair_frequencies,
)
from repro.core.prediction import EmbeddingPredictor, ICPredictor, InfluencePredictor
from repro.core.propagation import (
    PropagationNetwork,
    build_propagation_networks,
    cached_propagation_networks,
)

__all__ = [
    "AGGREGATORS",
    "get_aggregator",
    "ContextConfig",
    "ContextGenerator",
    "InfluenceContext",
    "batched_random_walk_with_restart",
    "generate_context",
    "generate_episode_contexts",
    "generate_episode_contexts_batched",
    "random_walk_with_restart",
    "InfluenceEmbedding",
    "Inf2vecConfig",
    "Inf2vecModel",
    "NegativeSampler",
    "InfluencePair",
    "PairFrequencies",
    "extract_all_pairs",
    "extract_episode_pairs",
    "frequency_histogram",
    "pair_frequencies",
    "EmbeddingPredictor",
    "ICPredictor",
    "InfluencePredictor",
    "PropagationNetwork",
    "build_propagation_networks",
    "cached_propagation_networks",
]
