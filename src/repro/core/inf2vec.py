"""The Inf2vec training algorithm (Algorithm 2 of the paper).

Training proceeds in two stages:

1. **Context generation** (lines 3–8): every episode's propagation
   network is extracted and Algorithm 1 produces one
   ``(u, C_u^i)`` tuple per adopter — see
   :class:`repro.core.context.ContextGenerator`.

2. **Representation learning** (lines 9–17): skip-gram with negative
   sampling maximises Eq. 2.  For each context member ``v`` of user
   ``u`` and each sampled negative ``w``:

   .. math::

      \\log \\Pr(v|u) \\approx \\log\\sigma(z_v) + \\sum_{w \\in N} \\log\\sigma(-z_w),
      \\qquad z_x = S_u \\cdot T_x + b_u + \\tilde b_x

   with the gradient updates of Eq. 6 applied by SGD (Eq. 5).

The reference implementation is C++ and updates one ``(u, v)``
observation at a time; this implementation applies the same gradients
*per micro-batch of context tuples* (``Inf2vecConfig.batch_size``
tuples, each with all of ``C_u^i`` and its negatives, in one fused
vectorised step), which is mathematically a micro-batched SGD — the
standard trick for word2vec-family models in numpy; the variance
difference is negligible at the paper's context length of 50 and the
default batch size.  ``engine="sequential"`` selects the original
one-context-at-a-time loop, kept as the reference implementation for
benchmarks and equivalence tests.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Literal, Sequence

import numpy as np
from scipy import sparse
from scipy.special import expit, log_expit

from repro.core.context import ContextConfig, ContextGenerator, InfluenceContext
from repro.core.embeddings import InfluenceEmbedding
from repro.core.negative import NegativeSampler
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import CheckpointError, NotFittedError, TrainingError
from repro.obs.metrics import NULL_REGISTRY
from repro.obs.run import NULL_RUN, RunRecorder, active_run, config_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing-only (avoids an import cycle)
    from multiprocessing.connection import Connection

    from repro.ckpt.manager import CheckpointManager
    from repro.ckpt.state import TrainingState
    from repro.parallel.shared import SharedEmbeddingSpec
from repro.utils.logging import get_logger, log_epoch_progress
from repro.utils.rng import SeedLike, ensure_rng, generator_from_state
from repro.utils.validation import check_positive, check_positive_int

logger = get_logger("core.inf2vec")


def _scatter_add_outer(
    dest: np.ndarray,
    rows: np.ndarray,
    weights: np.ndarray,
    vectors_index: np.ndarray,
    vectors: np.ndarray,
) -> None:
    """Accumulate ``weights[j] * vectors[vectors_index[j]]`` into ``dest[rows[j]]``.

    Semantically this is ``np.add.at(dest, rows, weights[:, None] *
    vectors[vectors_index])`` — the Eq. 6 rank-1 updates with duplicate
    rows summed — but phrased as one sparse-times-dense product
    ``dest += M @ vectors`` with ``M[rows[j], vectors_index[j]] +=
    weights[j]``, which never materialises the per-observation update
    buffer and runs an order of magnitude faster than ``ufunc.at``.
    """
    matrix = sparse.coo_matrix(
        (weights, (rows, vectors_index)),
        shape=(dest.shape[0], vectors.shape[0]),
    )
    dest += matrix @ vectors

def loss_converged(previous_loss: float, loss: float, tol: float) -> bool:
    """Early-stopping test: has the loss *improved* by less than ``tol``?

    Convergence means the relative decrease
    ``(previous_loss - loss) / |previous_loss|`` lies in ``[0, tol)`` —
    training settled without getting worse.  A loss *increase* (negative
    decrease) is divergence, not convergence, and returns ``False`` so
    training continues (or the schedule anneals the step size down).
    ``tol <= 0`` disables the test, as does a non-finite previous loss
    (the first epoch has nothing to compare against).

    Shared by the in-process epoch loop and the hogwild parent, so both
    engines stop on identical criteria.
    """
    if tol <= 0 or not np.isfinite(previous_loss):
        return False
    if previous_loss == 0:
        return loss == 0
    decrease = (previous_loss - loss) / abs(previous_loss)
    return 0.0 <= decrease < tol


def annealed_learning_rate(
    base: float, epoch: int, total_epochs: int, decay: bool = True
) -> float:
    """Word2vec-style linear annealing to 1% of ``base`` over the budget.

    ``total_epochs`` is the *effective* budget of the current loop —
    ``config.epochs`` for a full fit, the ``epochs`` override for
    ``partial_fit(epochs=N)`` — so the schedule always reaches its
    floor on the loop's final epoch regardless of which entry point
    drives it.
    """
    if not decay or total_epochs <= 1:
        return base
    progress = epoch / max(1, total_epochs - 1)
    floor = 0.01 * base
    return floor + (base - floor) * (1.0 - progress)


NegativeDistribution = Literal["unigram", "uniform"]

TrainingEngine = Literal["batched", "sequential"]


@dataclass(frozen=True)
class Inf2vecConfig:
    """Hyper-parameters of Algorithm 2.

    Defaults follow Section V-A2 of the paper: ``K = 50``, ``L = 50``,
    ``alpha = 0.1``, ``learning_rate = 0.005``, 5–10 negatives, and
    10–20 iterations to convergence.

    Attributes
    ----------
    dim:
        Embedding dimensionality ``K``.
    context:
        Algorithm 1 settings (length ``L``, weight ``alpha``, restart).
    learning_rate:
        SGD step size ``gamma``.
    num_negatives:
        Negatives ``|N|`` sampled per positive observation.
    epochs:
        Number of passes over the generated corpus ``P`` (the paper's
        iteration count ``I``).
    negative_distribution:
        ``"uniform"`` (default) draws negatives uniformly over the user
        universe — the literal reading of the paper's "randomly
        generate several negative instances", and measurably stronger
        on the evaluation tasks because it keeps user popularity inside
        the embeddings; ``"unigram"`` is word2vec's distorted-unigram
        alternative, kept as an ablation knob.
    use_biases:
        Learn ``b_u`` / ``b̃_v``?  Disabling them is the bias ablation.
    regenerate_contexts:
        If true, rerun Algorithm 1 every epoch instead of reusing the
        corpus generated once up front (the paper generates once;
        regeneration is a variance-reduction extension).
    convergence_tol:
        Relative improvement of mean epoch loss under which training
        stops early; ``0`` disables early stopping.
    lr_decay:
        Linearly anneal the learning rate to 1% of its initial value
        over the epoch budget, word2vec's standard schedule.  Keeps
        high learning rates stable.
    max_norm:
        Row-norm cap applied to the embedding rows touched by each
        update — a safety valve against SGD divergence; ``None``
        disables it.
    engine:
        ``"batched"`` (default) runs the fused epoch loop: contexts
        are grouped into micro-batches of ``batch_size`` tuples, all
        negatives of a batch come from one
        :meth:`~repro.core.negative.NegativeSampler.sample_matrix`
        call, and the Eq. 6 updates are applied with ``np.add.at``-style
        scatter-accumulation.  ``"sequential"`` is the original
        one-context-at-a-time SGD, kept as the reference
        implementation for speedup benchmarks and equivalence tests.
    batch_size:
        Micro-batch size (contexts per fused update) of the batched
        engine.  ``1`` reproduces the sequential engine's RNG stream
        and parameter trajectory exactly; larger batches trade SGD
        staleness (gradients of a batch are evaluated at its entry
        parameters) for vectorisation, the standard word2vec-in-numpy
        compromise.  The effective batch is additionally capped at
        ``num_users / 8`` contexts so tiny universes keep
        sequential-quality dynamics.
    telemetry:
        Opt into :mod:`repro.obs` run recording: ``fit()`` creates a
        :class:`~repro.obs.run.RunRecorder` (exposed as
        ``model.run_recorder``) capturing per-epoch metrics and the
        fit → epoch → sgd span tree.  Off by default — training then
        records nothing and pays only a cheap enabled-check.  An
        ambient ``with recording(run):`` scope takes precedence over
        this flag either way.
    """

    dim: int = 50
    context: ContextConfig = field(default_factory=ContextConfig)
    learning_rate: float = 0.005
    num_negatives: int = 5
    epochs: int = 10
    negative_distribution: NegativeDistribution = "uniform"
    use_biases: bool = True
    regenerate_contexts: bool = False
    convergence_tol: float = 0.0
    lr_decay: bool = True
    max_norm: float | None = 10.0
    engine: TrainingEngine = "batched"
    batch_size: int = 64
    telemetry: bool = False

    def __post_init__(self) -> None:
        check_positive_int("dim", self.dim)
        check_positive("learning_rate", self.learning_rate)
        check_positive_int("num_negatives", self.num_negatives)
        check_positive_int("epochs", self.epochs)
        check_positive_int("batch_size", self.batch_size)
        if self.engine not in ("batched", "sequential"):
            raise TrainingError(
                f"engine must be 'batched' or 'sequential', got {self.engine!r}"
            )
        if self.negative_distribution not in ("unigram", "uniform"):
            raise TrainingError(
                "negative_distribution must be 'unigram' or 'uniform', "
                f"got {self.negative_distribution!r}"
            )
        if self.convergence_tol < 0:
            raise TrainingError(
                f"convergence_tol must be >= 0, got {self.convergence_tol}"
            )
        if self.max_norm is not None and self.max_norm <= 0:
            raise TrainingError(f"max_norm must be positive, got {self.max_norm}")


class Inf2vecModel:
    """Social influence embedding learned by Inf2vec.

    Examples
    --------
    >>> from repro.data.synthetic import SyntheticSocialDataset
    >>> dataset = SyntheticSocialDataset.digg_like(num_users=60, num_items=20,
    ...                                            seed=0)
    >>> model = Inf2vecModel(Inf2vecConfig(dim=8, epochs=2), seed=0)
    >>> model = model.fit(dataset.graph, dataset.log)
    >>> score = model.embedding.score(0, 1)  # x(0, 1)
    """

    def __init__(self, config: Inf2vecConfig | None = None, seed: SeedLike = None):
        self.config = config if config is not None else Inf2vecConfig()
        self._rng = ensure_rng(seed)
        self._embedding: InfluenceEmbedding | None = None
        self._loss_history: list[float] = []
        self._seed_text = None if seed is None else str(seed)
        self._run_recorder: RunRecorder | None = None
        self._metrics = NULL_REGISTRY

    @property
    def _batched(self) -> bool:
        return self.config.engine == "batched"

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    @property
    def run_recorder(self) -> RunRecorder | None:
        """The model-owned recorder (``config.telemetry`` runs only).

        ``None`` unless ``telemetry=True`` and no ambient
        ``recording`` scope supplied a recorder instead.
        """
        return self._run_recorder

    def _resolve_obs(self, fresh: bool = False) -> RunRecorder:
        """The recorder instrumented methods should write to.

        Resolution order: ambient ``recording`` scope, then a
        model-owned recorder when ``config.telemetry`` is set
        (``fresh`` starts a new one — each ``fit`` is one run),
        otherwise the shared null recorder.
        """
        run = active_run()
        if run.enabled:
            return run
        if not self.config.telemetry:
            return NULL_RUN
        if fresh or self._run_recorder is None:
            self._run_recorder = RunRecorder(name="inf2vec.fit")
        return self._run_recorder

    def _record_run_header(self, run: RunRecorder, **dataset: object) -> None:
        if not run.enabled:
            return
        run.set_config(self.config)
        run.set_dataset(**dataset)
        if self._seed_text is not None:
            run.annotate(seed=self._seed_text)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(
        self,
        graph: SocialGraph,
        log: ActionLog,
        checkpoint: "CheckpointManager | None" = None,
        resume: bool = False,
    ) -> "Inf2vecModel":
        """Run Algorithm 2 end to end and return ``self``.

        Parameters
        ----------
        graph:
            The social network ``G``.
        log:
            Training action log ``A`` (typically the 80% episode split).
        checkpoint:
            Optional :class:`repro.ckpt.CheckpointManager`; when given,
            training state is saved atomically at the manager's cadence
            (and always at the final epoch and on early convergence).
        resume:
            Continue from the manager's latest valid checkpoint instead
            of starting fresh.  The checkpoint's config fingerprint must
            match this model's config; the resumed run replays the
            original RNG stream, so its final parameters are
            bitwise-identical to an uninterrupted run's.  With no
            usable checkpoint on disk, training starts from scratch.
        """
        state = self._resume_state(checkpoint, resume)
        run = self._resolve_obs(fresh=True)
        with run.span("fit", engine=self.config.engine):
            self._record_run_header(
                run,
                num_users=graph.num_nodes,
                num_edges=graph.num_edges,
                num_episodes=len(log),
            )
            if state is not None:
                # Rewind to the original fit's entry state so context
                # generation reproduces the exact corpus the
                # interrupted run trained on.
                self._rng.bit_generator.state = copy.deepcopy(
                    state.entry_rng_state
                )
            entry_rng_state = copy.deepcopy(self._rng.bit_generator.state)
            generator = ContextGenerator(
                graph,
                self.config.context,
                self._rng,
                batched=self._batched,
                metrics=run.metrics,
            )
            with run.span("contexts") as span:
                corpus = generator.generate(log)
                span.set_attribute("num_contexts", len(corpus))
            if not corpus and len(log) > 0:
                logger.warning(
                    "context generation produced an empty corpus "
                    "(no multi-adopter episodes?)"
                )
            return self._fit_loop(
                corpus,
                num_users=graph.num_nodes,
                generator=(
                    generator if self.config.regenerate_contexts else None
                ),
                log=log,
                run=run,
                checkpoint=checkpoint,
                entry_rng_state=entry_rng_state,
                resume_state=state,
            )

    def fit_contexts(
        self,
        corpus: Sequence[InfluenceContext],
        num_users: int,
        generator: ContextGenerator | None = None,
        log: ActionLog | None = None,
        checkpoint: "CheckpointManager | None" = None,
        resume: bool = False,
    ) -> "Inf2vecModel":
        """Learn representations from a pre-generated corpus ``P``.

        Exposed separately so the efficiency experiment (Fig 9) can
        time pure learning, and so the citation case study can train on
        first-order influence pairs without random walks.

        Parameters
        ----------
        corpus:
            The ``(u, C_u^i)`` tuples.
        num_users:
            Size of the user universe (``|V|``).
        generator, log:
            Only needed when ``config.regenerate_contexts`` is set; the
            corpus is regenerated from them each epoch.
        checkpoint, resume:
            Same contract as :meth:`fit`.  Bitwise-identical resume
            additionally requires the caller to pass the same
            pre-generated corpus.
        """
        state = self._resume_state(checkpoint, resume)
        run = self._resolve_obs(fresh=True)
        with run.span("fit", engine=self.config.engine):
            self._record_run_header(
                run, num_users=num_users, num_contexts=len(corpus)
            )
            if state is not None:
                self._rng.bit_generator.state = copy.deepcopy(
                    state.entry_rng_state
                )
            entry_rng_state = copy.deepcopy(self._rng.bit_generator.state)
            return self._fit_loop(
                corpus, num_users=num_users, generator=generator, log=log,
                run=run, checkpoint=checkpoint,
                entry_rng_state=entry_rng_state, resume_state=state,
            )

    def _resume_state(
        self, checkpoint: "CheckpointManager | None", resume: bool
    ) -> "TrainingState | None":
        """Resolve the checkpoint to resume from (``None`` = fresh start)."""
        if not resume:
            return None
        if checkpoint is None:
            raise TrainingError("resume=True requires a checkpoint manager")
        state = checkpoint.latest_state()
        if state is None:
            logger.info(
                "no usable checkpoint under %s; starting fresh",
                checkpoint.directory,
            )
            return None
        _, fingerprint = config_fingerprint(self.config)
        if state.config_fingerprint != fingerprint:
            raise CheckpointError(
                f"checkpoint fingerprint {state.config_fingerprint} does not "
                f"match this config's {fingerprint}; resume requires the "
                "identical hyper-parameter configuration"
            )
        if state.worker_topology is not None:
            raise CheckpointError(
                "checkpoint carries hogwild worker topology; resume it with "
                "repro.parallel.HogwildTrainer at the same worker count"
            )
        logger.info(
            "resuming from checkpoint at epoch %d (%s)",
            state.epoch,
            checkpoint.directory,
        )
        return state

    def _restore_state(self, state: "TrainingState", num_users: int) -> None:
        """Install a checkpoint's parameters, history, and RNG stream."""
        if state.source.shape != (num_users, self.config.dim):
            raise CheckpointError(
                f"checkpoint holds a ({state.num_users}, {state.dim}) "
                f"embedding but this fit needs ({num_users}, "
                f"{self.config.dim})"
            )
        self._embedding = state.to_embedding()
        self._loss_history = [float(x) for x in state.loss_history]
        try:
            self._rng.bit_generator.state = copy.deepcopy(state.rng_state)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint RNG state is incompatible with this model's "
                f"bit generator: {exc}"
            ) from exc

    def _fit_loop(
        self,
        corpus: Sequence[InfluenceContext],
        num_users: int,
        generator: ContextGenerator | None,
        log: ActionLog | None,
        run: RunRecorder,
        checkpoint: "CheckpointManager | None" = None,
        entry_rng_state: dict | None = None,
        resume_state: "TrainingState | None" = None,
        epochs: int | None = None,
    ) -> "Inf2vecModel":
        """The epoch loop shared by :meth:`fit` and :meth:`fit_contexts`.

        ``epochs`` overrides the configured budget for this loop; the
        learning-rate anneal, terminal forced checkpoint, and loop
        bound all follow the effective budget.
        """
        num_users = check_positive_int("num_users", num_users)
        budget = epochs if epochs is not None else self.config.epochs
        if resume_state is not None:
            self._restore_state(resume_state, num_users)
            start_epoch = resume_state.epoch + 1
            if run.metrics.enabled:
                run.metrics.counter(
                    "ckpt.resumes", "training runs resumed from a checkpoint"
                ).inc()
        else:
            self._embedding = InfluenceEmbedding.initialize(
                num_users, self.config.dim, self._rng
            )
            self._loss_history = []
            start_epoch = 0
        sampler = self._build_sampler(corpus, num_users)
        corpus = list(corpus)
        previous_loss = (
            self._loss_history[-1] if self._loss_history else np.inf
        )
        for epoch in range(start_epoch, budget):
            # Regenerate the corpus at the top of every epoch after the
            # first (not after the last, which would waste a generation
            # pass whose output nobody trains on).
            if epoch > 0 and self.config.regenerate_contexts and generator is not None:
                if log is None:
                    raise TrainingError(
                        "regenerate_contexts requires the action log"
                    )
                with run.span("contexts"):
                    corpus = list(generator.generate(log))
                sampler = self._build_sampler(corpus, num_users)
            learning_rate = self._epoch_learning_rate(epoch, budget)
            with run.span("epoch", epoch=epoch) as epoch_span:
                started = time.perf_counter()
                with run.span("sgd"):
                    loss = self.train_epoch(
                        corpus, sampler, learning_rate=learning_rate
                    )
                self._record_epoch(
                    run, epoch_span, epoch, loss, learning_rate,
                    corpus, started,
                )
            self._loss_history.append(loss)
            converged = self._converged(previous_loss, loss)
            if checkpoint is not None:
                # Epoch-end hook: force a save at terminal epochs so the
                # state that fit() returns is always recoverable.
                checkpoint.maybe_save(
                    self,
                    epoch,
                    entry_rng_state=entry_rng_state,
                    metrics=run.metrics,
                    force=converged or epoch == budget - 1,
                )
            log_epoch_progress(
                logger,
                epoch,
                budget,
                loss=loss,
                elapsed=time.perf_counter() - started,
                lr=f"{learning_rate:.4g}",
            )
            if converged:
                logger.info("converged after %d epochs", epoch + 1)
                break
            previous_loss = loss
        return self

    def _record_epoch(
        self,
        run: RunRecorder,
        epoch_span,
        epoch: int,
        loss: float,
        learning_rate: float,
        corpus: Sequence[InfluenceContext],
        started: float,
    ) -> None:
        """Per-epoch telemetry: loss, learning rate, examples/sec."""
        metrics = run.metrics
        if not metrics.enabled:
            return
        elapsed = time.perf_counter() - started
        examples = sum(len(context) for context in corpus)
        examples_per_sec = examples / elapsed if elapsed > 0 else 0.0
        metrics.counter("train.epochs", "completed training epochs").inc()
        metrics.gauge("train.epoch.loss", "mean per-positive loss").set(
            loss, epoch=epoch
        )
        metrics.gauge("train.epoch.learning_rate", "annealed SGD step").set(
            learning_rate, epoch=epoch
        )
        metrics.gauge(
            "train.epoch.examples_per_sec", "positive observations per second"
        ).set(examples_per_sec, epoch=epoch)
        epoch_span.set_attribute("loss", loss)
        epoch_span.set_attribute("examples_per_sec", examples_per_sec)

    def _epoch_learning_rate(
        self, epoch: int, total_epochs: int | None = None
    ) -> float:
        """Annealed step size for ``epoch`` of a ``total_epochs`` loop.

        ``total_epochs`` defaults to the configured budget; loops with
        an epoch override (``partial_fit(epochs=N)``) pass their
        effective budget so the anneal uses the right denominator.
        """
        if total_epochs is None:
            total_epochs = self.config.epochs
        return annealed_learning_rate(
            self.config.learning_rate, epoch, total_epochs, self.config.lr_decay
        )

    def partial_fit(
        self,
        graph: SocialGraph,
        new_log: ActionLog,
        epochs: int | None = None,
        checkpoint: "CheckpointManager | None" = None,
    ) -> "Inf2vecModel":
        """Incrementally update a fitted model with new episodes.

        Supports streaming logs: Algorithm 1 runs on the new episodes
        only and the existing parameters take ``epochs`` additional SGD
        passes over the new contexts, with the learning rate annealed
        over that effective budget — ``partial_fit(epochs=N)`` follows
        the same schedule a fresh fit configured with ``epochs=N``
        would.  Users must already be inside the fitted universe;
        growing the universe requires a fresh :meth:`fit`.

        Parameters
        ----------
        graph:
            The social network (same universe as the original fit).
        new_log:
            Episodes not seen by the original fit.
        epochs:
            Passes over the new contexts (defaults to the configured
            epoch budget), and the denominator of the learning-rate
            anneal for this call.  ``0`` is an explicit no-op — the
            fitted parameters are left untouched; negative values
            raise.
        checkpoint:
            Optional :class:`repro.ckpt.CheckpointManager`; the
            incremental epochs checkpoint at its cadence under the
            cumulative epoch counter (``len(loss_history) - 1``), so
            streaming updates extend the same checkpoint series the
            original :meth:`fit` produced.
        """
        if self._embedding is None:
            raise NotFittedError(
                "partial_fit extends a fitted model; call fit() first"
            )
        budget = epochs if epochs is not None else self.config.epochs
        if budget < 0:
            raise TrainingError(f"epochs must be >= 0, got {budget}")
        if graph.num_nodes != self._embedding.num_users:
            raise TrainingError(
                f"graph has {graph.num_nodes} nodes but the model was fitted "
                f"for {self._embedding.num_users} users"
            )
        if budget == 0:
            return self
        run = self._resolve_obs()
        with run.span("partial_fit", engine=self.config.engine):
            entry_rng_state = copy.deepcopy(self._rng.bit_generator.state)
            generator = ContextGenerator(
                graph,
                self.config.context,
                self._rng,
                batched=self._batched,
                metrics=run.metrics,
            )
            with run.span("contexts"):
                corpus = generator.generate(new_log)
            if not corpus:
                return self
            sampler = self._build_sampler(corpus, self._embedding.num_users)
            for epoch in range(budget):
                learning_rate = self._epoch_learning_rate(epoch, budget)
                with run.span("epoch", epoch=epoch) as epoch_span:
                    started = time.perf_counter()
                    with run.span("sgd"):
                        loss = self.train_epoch(
                            corpus, sampler, learning_rate=learning_rate
                        )
                    self._record_epoch(
                        run, epoch_span, epoch, loss, learning_rate, corpus,
                        started,
                    )
                self._loss_history.append(loss)
                if checkpoint is not None:
                    checkpoint.maybe_save(
                        self,
                        len(self._loss_history) - 1,
                        entry_rng_state=entry_rng_state,
                        metrics=run.metrics,
                        force=epoch == budget - 1,
                    )
        return self

    def train_epoch(
        self,
        corpus: Sequence[InfluenceContext],
        sampler: NegativeSampler | None = None,
        learning_rate: float | None = None,
        batch_size: int | None = None,
    ) -> float:
        """One pass over the corpus (lines 10–16); returns mean loss.

        The loss is the negative of Eq. 4 averaged over positive
        observations — lower is better, and a decreasing sequence
        across epochs is the convergence signal.

        Dispatches to the fused micro-batched loop or to the
        sequential reference loop according to ``config.engine`` (see
        :class:`Inf2vecConfig`); both shuffle the corpus with the same
        permutation draw, and at ``batch_size=1`` the two trajectories
        coincide.

        Parameters
        ----------
        corpus, sampler:
            The training tuples and negative sampler.
        learning_rate:
            Step size for this epoch; defaults to the configured
            (undecayed) rate when called directly.
        batch_size:
            Micro-batch override for this epoch (batched engine only);
            defaults to ``config.batch_size``.
        """
        if self._embedding is None:
            raise NotFittedError(
                "call fit()/fit_contexts() before train_epoch(); the "
                "parameter store is not initialised"
            )
        if sampler is None:
            sampler = self._build_sampler(corpus, self._embedding.num_users)
        if not corpus:
            return 0.0
        if learning_rate is None:
            learning_rate = self.config.learning_rate
        # One ambient-recorder lookup per epoch; the per-batch hooks
        # below are no-ops against the null registry.
        self._metrics = self._resolve_obs().metrics
        if not self._batched:
            return self.train_epoch_sequential(corpus, sampler, learning_rate)
        if batch_size is None:
            batch_size = self.config.batch_size
        batch_size = check_positive_int("batch_size", batch_size)
        # Cap the micro-batch relative to the universe: in a tiny
        # universe a large batch hits every embedding row many times
        # with gradients evaluated at the batch's entry parameters,
        # which multiplies the effective per-row step size and
        # destabilises SGD.  num_users/8 keeps per-row accumulation in
        # the regime where micro-batched and sequential SGD match.
        batch_size = min(batch_size, max(1, self._embedding.num_users // 8))

        order = self._rng.permutation(len(corpus))
        user_ids = np.fromiter(
            (context.user for context in corpus), dtype=np.int64, count=len(corpus)
        )
        positive_arrays = [
            np.asarray(context.users, dtype=np.int64) for context in corpus
        ]
        sizes = np.fromiter(
            (array.shape[0] for array in positive_arrays),
            dtype=np.int64,
            count=len(corpus),
        )
        # Flatten the permuted epoch once; each micro-batch is then a
        # pair of views into these arrays instead of a fresh concat.
        ordered_sizes = sizes[order]
        offsets = np.concatenate(([0], np.cumsum(ordered_sizes)))
        total_positives = int(offsets[-1])
        if total_positives == 0:
            return 0.0
        flat_positives = np.concatenate(
            [positive_arrays[int(i)] for i in order]
        )
        flat_users = np.repeat(user_ids[order], ordered_sizes)
        total_loss = 0.0
        for start in range(0, order.shape[0], batch_size):
            lo = int(offsets[start])
            hi = int(offsets[min(start + batch_size, order.shape[0])])
            if hi == lo:
                continue
            total_loss += self._update_batch(
                flat_users[lo:hi], flat_positives[lo:hi], sampler, learning_rate
            )
        return total_loss / total_positives

    def train_epoch_sequential(
        self,
        corpus: Sequence[InfluenceContext],
        sampler: NegativeSampler | None = None,
        learning_rate: float | None = None,
    ) -> float:
        """One epoch of the original one-context-at-a-time SGD loop.

        This is the seed implementation the batched engine is measured
        against (``benchmarks/bench_training_throughput.py``) and the
        reference for the equivalence tests; semantics are identical
        to :meth:`train_epoch` with ``engine="sequential"``.
        """
        if self._embedding is None:
            raise NotFittedError(
                "call fit()/fit_contexts() before train_epoch(); the "
                "parameter store is not initialised"
            )
        if sampler is None:
            sampler = self._build_sampler(corpus, self._embedding.num_users)
        if not corpus:
            return 0.0
        if learning_rate is None:
            learning_rate = self.config.learning_rate
        self._metrics = self._resolve_obs().metrics
        order = self._rng.permutation(len(corpus))
        total_loss = 0.0
        total_positives = 0
        for index in order:
            context = corpus[index]
            positives = np.asarray(context.users, dtype=np.int64)
            if positives.shape[0] == 0:
                continue
            loss = self._update_context(
                context.user, positives, sampler, learning_rate
            )
            total_loss += loss
            total_positives += positives.shape[0]
        if total_positives == 0:
            return 0.0
        return total_loss / total_positives

    # ------------------------------------------------------------------
    # SGD update (Eq. 5 / Eq. 6)
    # ------------------------------------------------------------------

    def _update_context(
        self,
        user: int,
        positives: np.ndarray,
        sampler: NegativeSampler,
        lr: float,
    ) -> float:
        emb = self._embedding
        assert emb is not None  # guarded by callers
        num_neg = self.config.num_negatives
        u = int(user)

        # A negative drawn equal to the center user or to the row's own
        # positive would receive a gradient contradicting the positive
        # update; mask-and-resample such collisions.
        exclude = np.stack(
            [np.full_like(positives, u), positives], axis=1
        )
        negatives = sampler.sample_matrix(
            positives.shape[0], num_neg, self._rng, exclude=exclude,
            metrics=self._metrics,
        )
        flat_negatives = negatives.ravel()

        s_u = emb.source[u]
        t_pos = emb.target[positives]  # (p, K)
        t_neg = emb.target[flat_negatives]  # (p * n, K)

        z_pos = t_pos @ s_u + emb.source_bias[u] + emb.target_bias[positives]
        z_neg = (
            t_neg @ s_u + emb.source_bias[u] + emb.target_bias[flat_negatives]
        )

        g_pos = 1.0 - expit(z_pos)  # d/dz log sigma(z)
        g_neg = -expit(z_neg)  # d/dz log sigma(-z)

        # Loss before the update: -(log sigma(z_v) + sum log sigma(-z_w)).
        loss = -(
            log_expit(z_pos).sum() + log_expit(-z_neg).sum()
        )

        # Gradient ascent per Eq. 6.  All gradients are evaluated at the
        # pre-update parameters: t_pos/t_neg are fancy-indexed copies,
        # and s_u is a view into emb.source so the source row must be
        # updated only after the target updates that consume it.
        grad_s_u = g_pos @ t_pos + g_neg @ t_neg
        # Positives/negatives can repeat inside one context; np.add.at
        # accumulates duplicate rows instead of overwriting them.
        np.add.at(emb.target, positives, lr * g_pos[:, None] * s_u[None, :])
        np.add.at(
            emb.target, flat_negatives, lr * g_neg[:, None] * s_u[None, :]
        )
        emb.source[u] += lr * grad_s_u
        if self.config.use_biases:
            emb.source_bias[u] += lr * (g_pos.sum() + g_neg.sum())
            np.add.at(emb.target_bias, positives, lr * g_pos)
            np.add.at(emb.target_bias, flat_negatives, lr * g_neg)
        self._clip_norms(emb, u, positives, flat_negatives)
        return float(loss)

    def _update_batch(
        self,
        users: np.ndarray,
        positives: np.ndarray,
        sampler: NegativeSampler,
        lr: float,
    ) -> float:
        """Fused Eq. 6 update over a micro-batch of contexts.

        ``users`` and ``positives`` are aligned flat arrays — one entry
        per positive observation, with each context's center user
        repeated over its context members.  All negatives for the
        batch come from a single ``sample_matrix`` call, every z-score
        is computed with one gather + einsum per parameter family, and
        the scatter-accumulated writes (``np.add.at`` semantics,
        implemented via :func:`_scatter_add_outer`) handle repeated rows
        (the same user appearing in several contexts of the batch)
        exactly like the sequential loop's duplicate handling.
        All gradients are evaluated at the batch's entry parameters —
        micro-batched SGD, the standard word2vec-in-numpy semantics.
        """
        emb = self._embedding
        assert emb is not None  # guarded by callers
        num_neg = self.config.num_negatives
        num_pos = positives.shape[0]

        exclude = np.stack([users, positives], axis=1)
        negatives = sampler.sample_matrix(
            num_pos, num_neg, self._rng, exclude=exclude,
            metrics=self._metrics,
        )
        flat_negatives = negatives.ravel()

        s = emb.source[users]  # (p, K)
        t_pos = emb.target[positives]  # (p, K)
        t_neg = emb.target[flat_negatives].reshape(num_pos, num_neg, -1)

        source_bias = emb.source_bias[users]
        z_pos = (
            np.einsum("pk,pk->p", s, t_pos)
            + source_bias
            + emb.target_bias[positives]
        )
        z_neg = (
            np.einsum("pk,pnk->pn", s, t_neg)
            + source_bias[:, None]
            + emb.target_bias[negatives]
        )

        g_pos = 1.0 - expit(z_pos)  # d/dz log sigma(z)
        g_neg = -expit(z_neg)  # d/dz log sigma(-z)

        loss = -(log_expit(z_pos).sum() + log_expit(-z_neg).sum())

        # Fold the step size into the (small) gradient coefficients once
        # so every scatter below is already step-sized.
        g_pos *= lr
        g_neg *= lr
        grad_s = g_pos[:, None] * t_pos + np.einsum("pn,pnk->pk", g_neg, t_neg)
        # One fused scatter over all touched target rows (positives and
        # negatives together): every target update is a weighted copy of
        # its observation's source row, so the whole batch is a single
        # sparse-times-dense product against ``s``.
        target_rows = np.concatenate([positives, flat_negatives])
        g_all = np.concatenate([g_pos, g_neg.ravel()])
        observation = np.arange(num_pos)
        target_observation = np.concatenate(
            [observation, np.repeat(observation, num_neg)]
        )
        _scatter_add_outer(emb.target, target_rows, g_all, target_observation, s)
        _scatter_add_outer(
            emb.source, users, np.ones(num_pos), observation, grad_s
        )
        if self.config.use_biases:
            num_users = emb.source_bias.shape[0]
            emb.source_bias += np.bincount(
                users, weights=g_pos + g_neg.sum(axis=1), minlength=num_users
            )
            emb.target_bias += np.bincount(
                target_rows, weights=g_all, minlength=num_users
            )
        self._clip_norm_rows(emb, users, positives, flat_negatives)
        return float(loss)

    def _clip_norms(
        self,
        emb: InfluenceEmbedding,
        user: int,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> None:
        """Rescale rows touched by the last update that exceed ``max_norm``."""
        cap = self.config.max_norm
        if cap is None:
            return
        clipped = 0
        source_norm = float(np.linalg.norm(emb.source[user]))
        if source_norm > cap:
            emb.source[user] *= cap / source_norm
            clipped += 1
        touched = np.unique(np.concatenate([positives, negatives]))
        norms = np.linalg.norm(emb.target[touched], axis=1)
        over = norms > cap
        if np.any(over):
            rows = touched[over]
            emb.target[rows] *= (cap / norms[over])[:, None]
            clipped += int(rows.shape[0])
        if clipped and self._metrics.enabled:
            self._metrics.counter(
                "train.clip.rows", "embedding rows rescaled by max_norm"
            ).inc(clipped)

    def _clip_norm_rows(
        self,
        emb: InfluenceEmbedding,
        users: np.ndarray,
        positives: np.ndarray,
        negatives: np.ndarray,
    ) -> None:
        """Batch variant of :meth:`_clip_norms` for many source rows."""
        cap = self.config.max_norm
        if cap is None:
            return
        clipped = 0
        # Deduplicate touched rows with a membership mask — O(|V| + rows)
        # beats np.unique's sort at batch sizes in the thousands.
        mask = np.zeros(emb.source.shape[0], dtype=bool)
        mask[users] = True
        source_rows = np.nonzero(mask)[0]
        source_norms = np.linalg.norm(emb.source[source_rows], axis=1)
        over = source_norms > cap
        if np.any(over):
            rows = source_rows[over]
            emb.source[rows] *= (cap / source_norms[over])[:, None]
            clipped += int(rows.shape[0])
        mask = np.zeros(emb.target.shape[0], dtype=bool)
        mask[positives] = True
        mask[negatives] = True
        touched = np.nonzero(mask)[0]
        target_norms = np.linalg.norm(emb.target[touched], axis=1)
        over = target_norms > cap
        if np.any(over):
            rows = touched[over]
            emb.target[rows] *= (cap / target_norms[over])[:, None]
            clipped += int(rows.shape[0])
        if clipped and self._metrics.enabled:
            self._metrics.counter(
                "train.clip.rows", "embedding rows rescaled by max_norm"
            ).inc(clipped)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _build_sampler(
        self, corpus: Sequence[InfluenceContext], num_users: int
    ) -> NegativeSampler:
        if self.config.negative_distribution == "uniform":
            return NegativeSampler.uniform(num_users)
        frequencies = np.zeros(num_users, dtype=np.float64)
        for context in corpus:
            for v in context.users:
                frequencies[v] += 1.0
        return NegativeSampler.from_frequencies(frequencies)

    def _converged(self, previous_loss: float, loss: float) -> bool:
        return loss_converged(previous_loss, loss, self.config.convergence_tol)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def embedding(self) -> InfluenceEmbedding:
        """The learned parameters; raises if the model is unfitted."""
        if self._embedding is None:
            raise NotFittedError("Inf2vecModel is not fitted yet")
        return self._embedding

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or :meth:`fit_contexts`) has run."""
        return self._embedding is not None

    @property
    def rng(self) -> np.random.Generator:
        """The model's RNG stream (checkpoints capture its bit-state)."""
        return self._rng

    @property
    def loss_history(self) -> list[float]:
        """Mean per-positive loss after each completed epoch."""
        return list(self._loss_history)

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"Inf2vecModel(dim={self.config.dim}, {state})"


# ----------------------------------------------------------------------
# Hogwild worker entry point
# ----------------------------------------------------------------------


def hogwild_worker_main(
    worker_id: int,
    spec: "SharedEmbeddingSpec",
    config: Inf2vecConfig,
    graph: SocialGraph,
    shard: ActionLog,
    entry_rng_state: dict,
    resume_rng_state: dict | None,
    stream_chunk: int | None,
    conn: "Connection",
) -> None:
    """Process entry point for one hogwild training worker.

    The worker attaches the shared parameter blocks named by ``spec``
    and trains its episode ``shard`` against them lock-free — an
    ordinary :class:`Inf2vecModel` whose embedding arrays are zero-copy
    shared-memory views, so the existing SGD kernels update the global
    parameters directly.

    Determinism contract: the worker's generator starts from
    ``entry_rng_state`` (its spawn-derived birth state, replayed on
    resume so the regenerated corpus matches the interrupted run's),
    then jumps to ``resume_rng_state`` when resuming.  With
    ``stream_chunk`` set, the corpus is never materialised: each epoch
    regenerates and trains ``stream_chunk`` episodes' contexts at a
    time, bounding memory regardless of shard size (uniform negatives
    only — the unigram table would need the full corpus).

    Protocol over ``conn``: the worker sends ``("ready", id,
    num_contexts)`` once set up, then answers ``("epoch", index, lr)``
    commands with ``("epoch_done", id, loss_sum, positives, seconds,
    rng_state)`` until ``("stop",)`` arrives or the pipe closes (parent
    death — exit quietly so orphans never linger).  Failures are
    reported as ``("error", id, message)``.
    """
    from repro.parallel.shared import SharedEmbedding  # import cycle guard

    shared = None
    try:
        shared = SharedEmbedding.attach(spec)
        streaming = stream_chunk is not None
        if streaming and config.negative_distribution != "uniform":
            raise TrainingError(
                "streaming corpus requires negative_distribution='uniform'"
            )
        rng = generator_from_state(copy.deepcopy(entry_rng_state))
        # Workers never own a recorder — the parent aggregates; fall
        # back to the zero-overhead null registry in this process.
        model = Inf2vecModel(replace(config, telemetry=False), seed=rng)
        model._embedding = shared.embedding
        generator = ContextGenerator(
            graph, config.context, rng, batched=model._batched
        )
        corpus: list[InfluenceContext] = []
        if not streaming:
            corpus = generator.generate(shard)
        sampler = model._build_sampler(corpus, graph.num_nodes)
        positives = sum(len(context) for context in corpus)
        if resume_rng_state is not None:
            rng.bit_generator.state = copy.deepcopy(resume_rng_state)
        conn.send(("ready", worker_id, len(corpus)))
        parent_pid = os.getppid()
        while True:
            # Poll instead of a blocking recv: under the fork start
            # method every worker inherits copies of its siblings'
            # (and its own) parent-side pipe ends, so a SIGKILL'd
            # parent never EOFs the pipe.  A reparented worker
            # (getppid changed) is an orphan and must exit on its own.
            try:
                while not conn.poll(0.2):
                    if os.getppid() != parent_pid:
                        return
                message = conn.recv()
            except (EOFError, OSError):  # parent is gone; stop training
                return
            if message[0] == "stop":
                return
            _, epoch, learning_rate = message
            started = time.perf_counter()
            if streaming:
                loss_sum = 0.0
                count = 0
                for chunk in generator.iter_context_chunks(shard, stream_chunk):
                    mean = model.train_epoch(
                        chunk, sampler, learning_rate=learning_rate
                    )
                    chunk_positives = sum(len(context) for context in chunk)
                    loss_sum += mean * chunk_positives
                    count += chunk_positives
            else:
                if epoch > 0 and config.regenerate_contexts:
                    corpus = generator.generate(shard)
                    sampler = model._build_sampler(corpus, graph.num_nodes)
                    positives = sum(len(context) for context in corpus)
                mean = model.train_epoch(
                    corpus, sampler, learning_rate=learning_rate
                )
                loss_sum = mean * positives
                count = positives
            conn.send(
                (
                    "epoch_done",
                    worker_id,
                    float(loss_sum),
                    int(count),
                    time.perf_counter() - started,
                    copy.deepcopy(rng.bit_generator.state),
                )
            )
    except Exception as exc:  # surfaced to the parent, which raises
        try:
            conn.send(("error", worker_id, f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        if shared is not None:
            shared.close()
        conn.close()
