"""Social influence pairs (Definition 1 of the paper).

Given a social network ``G = (V, E)`` and a diffusion episode ``D_i``,
a *social influence pair* ``u -> v`` exists when

1. both users are in ``V``,
2. the directed edge ``(u, v)`` is in ``E``, and
3. ``u`` adopted item ``i`` strictly before ``v``.

These pairs are the raw observations everything else is built from:
per-episode propagation networks (Definition 3), the frequency
distributions of Figures 1–2, and the training signal of the ST/EM
baselines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import GraphError


@dataclass(frozen=True)
class InfluencePair:
    """A directed influence observation ``source -> target`` for ``item``."""

    source: int
    target: int
    item: int


def extract_episode_pairs(
    graph: SocialGraph, episode: DiffusionEpisode
) -> np.ndarray:
    """All influence pairs of one episode as an ``(m, 2)`` int64 array.

    For each adopter ``v`` (in chronological order) we intersect their
    in-neighbours with the set of users that adopted strictly earlier;
    each such earlier friend ``u`` yields a pair ``(u, v)``.

    Strictness matters: simultaneous adoptions (equal timestamps) do
    not create pairs in either direction, matching condition (3) of
    Definition 1.

    The intersection is fully vectorised: all adopters' in-neighbour
    slices are gathered from the graph's CSR arrays in one shot and
    filtered with an adoption-time lookup table, so cost scales with
    the episode's total in-degree rather than with Python-level loop
    iterations.  Pair order matches the per-adopter formulation:
    grouped by target in chronological order, sources in CSR
    (neighbour-list) order.
    """
    users = episode.users
    times = episode.times
    if users.shape[0] == 0:
        return np.empty((0, 2), dtype=np.int64)
    max_user = int(users.max())
    if max_user >= graph.num_nodes:
        raise GraphError(
            f"episode {episode.item} references user {max_user} but the "
            f"graph only has {graph.num_nodes} nodes"
        )
    indptr, indices = graph.in_csr()
    starts = indptr[users]
    counts = indptr[users + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty((0, 2), dtype=np.int64)
    # Flat gather positions: for each adopter, the contiguous run of
    # its in-neighbour slice inside `indices`.
    segment_offsets = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.arange(total, dtype=np.int64) - segment_offsets + np.repeat(
        starts, counts
    )
    sources = indices[flat]
    targets = np.repeat(users, counts)
    # +inf marks non-adopters, so `inf < t_v` rejects them along with
    # later/simultaneous adopters in a single comparison.
    adoption_time = np.full(graph.num_nodes, np.inf)
    adoption_time[users] = times
    mask = adoption_time[sources] < adoption_time[targets]
    if not np.any(mask):
        return np.empty((0, 2), dtype=np.int64)
    return np.column_stack([sources[mask], targets[mask]])


def extract_all_pairs(graph: SocialGraph, log: ActionLog) -> list[InfluencePair]:
    """Influence pairs of every episode in ``log`` (with item labels)."""
    result: list[InfluencePair] = []
    for episode in log:
        for source, target in extract_episode_pairs(graph, episode):
            result.append(InfluencePair(int(source), int(target), episode.item))
    return result


@dataclass(frozen=True)
class PairFrequencies:
    """Aggregate influence-pair counts over an action log.

    Attributes
    ----------
    num_users:
        Size of the user universe.
    source_counts:
        ``source_counts[u]`` = number of pairs where ``u`` is the
        source (Figure 1's variable).
    target_counts:
        ``target_counts[v]`` = number of pairs where ``v`` is the
        target (Figure 2's variable).
    pair_counts:
        ``Counter`` mapping ``(source, target)`` to the number of
        episodes in which that influence pair was observed; feeds the
        "most frequent pairs" selection of the Figure 6 visualisation.
    """

    num_users: int
    source_counts: np.ndarray
    target_counts: np.ndarray
    pair_counts: Counter

    @property
    def total_pairs(self) -> int:
        """Total number of influence-pair observations."""
        return int(self.source_counts.sum())

    def top_pairs(self, count: int) -> list[tuple[int, int]]:
        """The ``count`` most frequent pairs (ties broken deterministically)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        ranked = sorted(
            self.pair_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [pair for pair, _ in ranked[:count]]


def pair_frequencies(graph: SocialGraph, log: ActionLog) -> PairFrequencies:
    """Count source/target/pair frequencies over all episodes of ``log``.

    This is the statistic behind Figures 1 and 2 of the paper (both
    follow power laws on Digg and Flickr) and the pair ranking used by
    the Figure 6 visualisation.
    """
    source_counts = np.zeros(log.num_users, dtype=np.int64)
    target_counts = np.zeros(log.num_users, dtype=np.int64)
    pair_counts: Counter = Counter()
    for episode in log:
        episode_pairs = extract_episode_pairs(graph, episode)
        if episode_pairs.shape[0] == 0:
            continue
        np.add.at(source_counts, episode_pairs[:, 0], 1)
        np.add.at(target_counts, episode_pairs[:, 1], 1)
        pair_counts.update(
            (int(s), int(t)) for s, t in episode_pairs
        )
    return PairFrequencies(
        num_users=log.num_users,
        source_counts=source_counts,
        target_counts=target_counts,
        pair_counts=pair_counts,
    )


def frequency_histogram(counts: Iterable[int]) -> dict[int, int]:
    """Histogram of per-user frequencies, excluding zero-frequency users.

    Returns a mapping ``frequency -> number of users with that
    frequency`` — exactly the (x, y) points plotted in Figures 1–2.
    """
    histogram: Counter = Counter(int(c) for c in counts if int(c) > 0)
    return dict(sorted(histogram.items()))
