"""Social influence pairs (Definition 1 of the paper).

Given a social network ``G = (V, E)`` and a diffusion episode ``D_i``,
a *social influence pair* ``u -> v`` exists when

1. both users are in ``V``,
2. the directed edge ``(u, v)`` is in ``E``, and
3. ``u`` adopted item ``i`` strictly before ``v``.

These pairs are the raw observations everything else is built from:
per-episode propagation networks (Definition 3), the frequency
distributions of Figures 1–2, and the training signal of the ST/EM
baselines.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph


@dataclass(frozen=True)
class InfluencePair:
    """A directed influence observation ``source -> target`` for ``item``."""

    source: int
    target: int
    item: int


def extract_episode_pairs(
    graph: SocialGraph, episode: DiffusionEpisode
) -> np.ndarray:
    """All influence pairs of one episode as an ``(m, 2)`` int64 array.

    For each adopter ``v`` (in chronological order) we intersect their
    in-neighbours with the set of users that adopted strictly earlier;
    each such earlier friend ``u`` yields a pair ``(u, v)``.

    Strictness matters: simultaneous adoptions (equal timestamps) do
    not create pairs in either direction, matching condition (3) of
    Definition 1.
    """
    pairs: list[tuple[int, int]] = []
    times = episode.times
    users = episode.users
    adoption_time = {int(u): float(t) for u, t in zip(users, times)}
    for v, t_v in zip(users, times):
        v = int(v)
        for u in graph.in_neighbors(v):
            u = int(u)
            t_u = adoption_time.get(u)
            if t_u is not None and t_u < t_v:
                pairs.append((u, v))
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def extract_all_pairs(graph: SocialGraph, log: ActionLog) -> list[InfluencePair]:
    """Influence pairs of every episode in ``log`` (with item labels)."""
    result: list[InfluencePair] = []
    for episode in log:
        for source, target in extract_episode_pairs(graph, episode):
            result.append(InfluencePair(int(source), int(target), episode.item))
    return result


@dataclass(frozen=True)
class PairFrequencies:
    """Aggregate influence-pair counts over an action log.

    Attributes
    ----------
    num_users:
        Size of the user universe.
    source_counts:
        ``source_counts[u]`` = number of pairs where ``u`` is the
        source (Figure 1's variable).
    target_counts:
        ``target_counts[v]`` = number of pairs where ``v`` is the
        target (Figure 2's variable).
    pair_counts:
        ``Counter`` mapping ``(source, target)`` to the number of
        episodes in which that influence pair was observed; feeds the
        "most frequent pairs" selection of the Figure 6 visualisation.
    """

    num_users: int
    source_counts: np.ndarray
    target_counts: np.ndarray
    pair_counts: Counter

    @property
    def total_pairs(self) -> int:
        """Total number of influence-pair observations."""
        return int(self.source_counts.sum())

    def top_pairs(self, count: int) -> list[tuple[int, int]]:
        """The ``count`` most frequent pairs (ties broken deterministically)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        ranked = sorted(
            self.pair_counts.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [pair for pair, _ in ranked[:count]]


def pair_frequencies(graph: SocialGraph, log: ActionLog) -> PairFrequencies:
    """Count source/target/pair frequencies over all episodes of ``log``.

    This is the statistic behind Figures 1 and 2 of the paper (both
    follow power laws on Digg and Flickr) and the pair ranking used by
    the Figure 6 visualisation.
    """
    source_counts = np.zeros(log.num_users, dtype=np.int64)
    target_counts = np.zeros(log.num_users, dtype=np.int64)
    pair_counts: Counter = Counter()
    for episode in log:
        episode_pairs = extract_episode_pairs(graph, episode)
        if episode_pairs.shape[0] == 0:
            continue
        np.add.at(source_counts, episode_pairs[:, 0], 1)
        np.add.at(target_counts, episode_pairs[:, 1], 1)
        pair_counts.update(
            (int(s), int(t)) for s, t in episode_pairs
        )
    return PairFrequencies(
        num_users=log.num_users,
        source_counts=source_counts,
        target_counts=target_counts,
        pair_counts=pair_counts,
    )


def frequency_histogram(counts: Iterable[int]) -> dict[int, int]:
    """Histogram of per-user frequencies, excluding zero-frequency users.

    Returns a mapping ``frequency -> number of users with that
    frequency`` — exactly the (x, y) points plotted in Figures 1–2.
    """
    histogram: Counter = Counter(int(c) for c in counts if int(c) > 0)
    return dict(sorted(histogram.items()))
