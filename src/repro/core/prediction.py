"""Influence-propagation predictors (Section IV-C & Section V-A3).

Every evaluated method exposes the same two-question interface so the
evaluation protocols can stay model-agnostic:

* *activation*: "given the set of already-active friends ``S_v`` (in
  activation order), how likely is candidate ``v`` to activate?"
* *diffusion*: "given a seed set, how likely is each user in the
  network to eventually activate?"

Latent-representation models (Inf2vec, MF, node2vec) answer both with
the aggregation of pairwise scores (Eq. 7).  IC-based models (DE, ST,
EM, Emb-IC) answer activation with Eq. 8 and diffusion with Monte-Carlo
simulation, exactly as the paper evaluates them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.aggregation import Aggregator, get_aggregator
from repro.core.embeddings import InfluenceEmbedding
from repro.diffusion.montecarlo import activation_frequencies
from repro.diffusion.probabilities import EdgeProbabilities
from repro.diffusion.ic import activation_probability
from repro.errors import EvaluationError
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int


class InfluencePredictor(Protocol):
    """Interface shared by all evaluated methods."""

    def activation_score(
        self, candidate: int, active_friends: Sequence[int]
    ) -> float:
        """Likelihood score of ``candidate`` activating given its
        already-active friends (earliest-activated first)."""
        ...

    def diffusion_scores(self, seeds: Sequence[int]) -> np.ndarray:
        """Likelihood score of every user activating given ``seeds``."""
        ...


class EmbeddingPredictor:
    """Eq. 7 predictor over a learned :class:`InfluenceEmbedding`.

    Parameters
    ----------
    embedding:
        Learned ``(S, T, b, b̃)`` parameters.
    aggregator:
        One of ``"ave"`` (paper default), ``"sum"``, ``"max"``,
        ``"latest"`` — or a custom callable.
    """

    def __init__(
        self,
        embedding: InfluenceEmbedding,
        aggregator: str | Aggregator = "ave",
    ):
        self.embedding = embedding
        if callable(aggregator):
            self._aggregate = aggregator
            self._aggregator_name = getattr(aggregator, "__name__", "custom")
        else:
            self._aggregate = get_aggregator(aggregator)
            self._aggregator_name = aggregator.lower()

    @property
    def aggregator_name(self) -> str:
        """The aggregation function in use (for reports)."""
        return self._aggregator_name

    def activation_score(
        self, candidate: int, active_friends: Sequence[int]
    ) -> float:
        """Aggregate ``x(u, candidate)`` over the active friends."""
        friends = np.asarray(active_friends, dtype=np.int64)
        if friends.shape[0] == 0:
            raise EvaluationError(
                "activation_score requires at least one active friend"
            )
        scores = self.embedding.scores_onto(candidate, friends)
        return float(self._aggregate(scores))

    def diffusion_scores(self, seeds: Sequence[int]) -> np.ndarray:
        """Aggregate ``x(seed, v)`` per user ``v``, vectorised.

        The pairwise score matrix is ``(num_seeds, num_users)``; the
        aggregator collapses the seed axis.  Seeds are assumed to be
        given in activation order so ``latest`` keeps its meaning.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.shape[0] == 0:
            raise EvaluationError("diffusion_scores requires at least one seed")
        emb = self.embedding
        pairwise = (
            emb.source[seeds] @ emb.target.T
            + emb.source_bias[seeds][:, None]
            + emb.target_bias[None, :]
        )
        if self._aggregator_name == "ave":
            return pairwise.mean(axis=0)
        if self._aggregator_name == "sum":
            return pairwise.sum(axis=0)
        if self._aggregator_name == "max":
            return pairwise.max(axis=0)
        if self._aggregator_name == "latest":
            return pairwise[-1]
        return np.apply_along_axis(self._aggregate, 0, pairwise)


class ICPredictor:
    """IC-model predictor over learned edge probabilities.

    Activation prediction uses the closed form of Eq. 8; diffusion
    prediction estimates per-user activation frequency by Monte-Carlo
    simulation (5,000 runs in the paper — configurable because that is
    the dominant cost of Table III).

    Parameters
    ----------
    probabilities:
        Learned ``P_uv`` table.
    num_runs:
        Monte-Carlo simulations per diffusion query.
    seed:
        RNG seed for the simulations.
    """

    def __init__(
        self,
        probabilities: EdgeProbabilities,
        num_runs: int = 1000,
        seed: SeedLike = None,
    ):
        self.probabilities = probabilities
        self.num_runs = check_positive_int("num_runs", num_runs)
        self._seed = seed

    def activation_score(
        self, candidate: int, active_friends: Sequence[int]
    ) -> float:
        """Eq. 8 over the candidate's active friends."""
        friends = np.asarray(active_friends, dtype=np.int64)
        if friends.shape[0] == 0:
            raise EvaluationError(
                "activation_score requires at least one active friend"
            )
        pairwise = [
            self.probabilities.get_or_zero(int(u), int(candidate))
            for u in friends
        ]
        return activation_probability(pairwise)

    def diffusion_scores(self, seeds: Sequence[int]) -> np.ndarray:
        """Per-user Monte-Carlo activation frequency from ``seeds``."""
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.shape[0] == 0:
            raise EvaluationError("diffusion_scores requires at least one seed")
        return activation_frequencies(
            self.probabilities, seeds, num_runs=self.num_runs, seed=self._seed
        )
