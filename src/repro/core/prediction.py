"""Influence-propagation predictors (Section IV-C & Section V-A3).

Every evaluated method exposes the same two-question interface so the
evaluation protocols can stay model-agnostic:

* *activation*: "given the set of already-active friends ``S_v`` (in
  activation order), how likely is candidate ``v`` to activate?"
* *diffusion*: "given a seed set, how likely is each user in the
  network to eventually activate?"

Latent-representation models (Inf2vec, MF, node2vec) answer both with
the aggregation of pairwise scores (Eq. 7).  IC-based models (DE, ST,
EM, Emb-IC) answer activation with Eq. 8 and diffusion with Monte-Carlo
simulation, exactly as the paper evaluates them.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.core.aggregation import Aggregator, get_aggregator
from repro.core.embeddings import InfluenceEmbedding
from repro.diffusion.montecarlo import activation_frequencies
from repro.diffusion.probabilities import EdgeProbabilities
from repro.diffusion.ic import activation_probability
from repro.errors import EvaluationError
from repro.serve.scoring import aggregated_scores
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int


class InfluencePredictor(Protocol):
    """Interface shared by all evaluated methods."""

    def activation_score(
        self, candidate: int, active_friends: Sequence[int]
    ) -> float:
        """Likelihood score of ``candidate`` activating given its
        already-active friends (earliest-activated first)."""
        ...

    def diffusion_scores(self, seeds: Sequence[int]) -> np.ndarray:
        """Likelihood score of every user activating given ``seeds``."""
        ...


class EmbeddingPredictor:
    """Eq. 7 predictor over a learned :class:`InfluenceEmbedding`.

    Parameters
    ----------
    embedding:
        Learned ``(S, T, b, b̃)`` parameters.
    aggregator:
        One of ``"ave"`` (paper default), ``"sum"``, ``"max"``,
        ``"latest"`` — or a custom callable.
    """

    def __init__(
        self,
        embedding: InfluenceEmbedding,
        aggregator: str | Aggregator = "ave",
    ):
        self.embedding = embedding
        if callable(aggregator):
            # A custom callable must stay on the custom path even when
            # its __name__ collides with a builtin ("max", "sum", ...),
            # so the builtin name is tracked separately from the label.
            self._aggregate = aggregator
            self._aggregator_name = getattr(aggregator, "__name__", "custom")
            self._builtin_name: str | None = None
        else:
            self._aggregate = get_aggregator(aggregator)
            self._aggregator_name = aggregator.lower()
            self._builtin_name = self._aggregator_name

    @property
    def aggregator_name(self) -> str:
        """The aggregation function in use (for reports)."""
        return self._aggregator_name

    def activation_score(
        self, candidate: int, active_friends: Sequence[int]
    ) -> float:
        """Aggregate ``x(u, candidate)`` over the active friends."""
        friends = np.asarray(active_friends, dtype=np.int64)
        if friends.shape[0] == 0:
            raise EvaluationError(
                "activation_score requires at least one active friend"
            )
        scores = self.embedding.scores_onto(candidate, friends)
        return float(self._aggregate(scores))

    def diffusion_scores(self, seeds: Sequence[int]) -> np.ndarray:
        """Aggregate ``x(seed, v)`` per user ``v``, blocked and vectorised.

        Routed through :func:`repro.serve.scoring.aggregated_scores`:
        targets are scored in fixed-size blocks and reduced in place,
        so at most ``num_seeds × block_size`` pairwise scores exist at
        a time instead of the full ``(num_seeds, num_users)`` matrix.
        Dispatch is on *whether a callable was supplied*, not on its
        ``__name__`` — a custom callable that happens to be named
        ``"max"`` is honoured, never silently swapped for the builtin.
        Seeds are assumed to be given in activation order so
        ``latest`` keeps its meaning.
        """
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.shape[0] == 0:
            raise EvaluationError("diffusion_scores requires at least one seed")
        aggregator = (
            self._builtin_name
            if self._builtin_name is not None
            else self._aggregate
        )
        return aggregated_scores(self.embedding, seeds, aggregator)


class ICPredictor:
    """IC-model predictor over learned edge probabilities.

    Activation prediction uses the closed form of Eq. 8; diffusion
    prediction estimates per-user activation frequency by Monte-Carlo
    simulation (5,000 runs in the paper — configurable because that is
    the dominant cost of Table III).

    Parameters
    ----------
    probabilities:
        Learned ``P_uv`` table.
    num_runs:
        Monte-Carlo simulations per diffusion query.
    seed:
        RNG seed for the simulations.
    """

    def __init__(
        self,
        probabilities: EdgeProbabilities,
        num_runs: int = 1000,
        seed: SeedLike = None,
    ):
        self.probabilities = probabilities
        self.num_runs = check_positive_int("num_runs", num_runs)
        self._seed = seed

    def activation_score(
        self, candidate: int, active_friends: Sequence[int]
    ) -> float:
        """Eq. 8 over the candidate's active friends."""
        friends = np.asarray(active_friends, dtype=np.int64)
        if friends.shape[0] == 0:
            raise EvaluationError(
                "activation_score requires at least one active friend"
            )
        pairwise = [
            self.probabilities.get_or_zero(int(u), int(candidate))
            for u in friends
        ]
        return activation_probability(pairwise)

    def diffusion_scores(self, seeds: Sequence[int]) -> np.ndarray:
        """Per-user Monte-Carlo activation frequency from ``seeds``."""
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.shape[0] == 0:
            raise EvaluationError("diffusion_scores requires at least one seed")
        return activation_frequencies(
            self.probabilities, seeds, num_runs=self.num_runs, seed=self._seed
        )
