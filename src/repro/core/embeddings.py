"""Influence-embedding parameter store.

The social-influence-embedding problem (Definition 2) learns, for each
user ``u``:

* ``S_u`` — source embedding: capability to influence others,
* ``T_u`` — target embedding: tendency to be influenced,
* ``b_u`` — influence-ability bias,
* ``b̃_u`` — conformity bias.

The influence score of ``u`` over ``v`` is
``x(u, v) = S_u · T_v + b_u + b̃_v`` (Section IV-C); the training
probability ``Pr(v | u)`` is its softmax (Eq. 3).

:class:`InfluenceEmbedding` is a plain container with vectorised score
helpers and ``.npz`` persistence.  It is shared by Inf2vec and by the
representation baselines (MF, node2vec) so that every latent model is
evaluated through exactly the same scoring path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.ckpt.atomic import atomic_output, ensure_suffix
from repro.errors import TrainingError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int


class InfluenceEmbedding:
    """Learned parameters ``(S, T, b, b̃)`` for a user universe.

    Parameters
    ----------
    source:
        ``(num_users, dim)`` source-embedding matrix ``S``.
    target:
        ``(num_users, dim)`` target-embedding matrix ``T``.
    source_bias:
        ``(num_users,)`` influence-ability biases ``b``.
    target_bias:
        ``(num_users,)`` conformity biases ``b̃``.
    """

    def __init__(
        self,
        source: np.ndarray,
        target: np.ndarray,
        source_bias: np.ndarray,
        target_bias: np.ndarray,
    ):
        source = np.asarray(source, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        source_bias = np.asarray(source_bias, dtype=np.float64)
        target_bias = np.asarray(target_bias, dtype=np.float64)
        if source.ndim != 2 or target.ndim != 2:
            raise TrainingError("source/target embeddings must be 2-D matrices")
        if source.shape != target.shape:
            raise TrainingError(
                f"source shape {source.shape} != target shape {target.shape}"
            )
        num_users = source.shape[0]
        if source_bias.shape != (num_users,) or target_bias.shape != (num_users,):
            raise TrainingError(
                "bias vectors must have shape (num_users,), got "
                f"{source_bias.shape} and {target_bias.shape}"
            )
        self.source = source
        self.target = target
        self.source_bias = source_bias
        self.target_bias = target_bias

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def initialize(
        cls, num_users: int, dim: int, seed: SeedLike = None
    ) -> "InfluenceEmbedding":
        """Paper initialisation: ``S, T ~ U[-1/K, 1/K]``, biases zero."""
        num_users = check_positive_int("num_users", num_users)
        dim = check_positive_int("dim", dim)
        rng = ensure_rng(seed)
        bound = 1.0 / dim
        return cls(
            source=rng.uniform(-bound, bound, size=(num_users, dim)),
            target=rng.uniform(-bound, bound, size=(num_users, dim)),
            source_bias=np.zeros(num_users),
            target_bias=np.zeros(num_users),
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def num_users(self) -> int:
        """Size of the user universe."""
        return int(self.source.shape[0])

    @property
    def dim(self) -> int:
        """Embedding dimensionality ``K``."""
        return int(self.source.shape[1])

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def score(self, source_user: int, target_user: int) -> float:
        """Influence score ``x(u, v) = S_u · T_v + b_u + b̃_v``."""
        u = int(source_user)
        v = int(target_user)
        return float(
            self.source[u] @ self.target[v]
            + self.source_bias[u]
            + self.target_bias[v]
        )

    def score_pairs(
        self, source_users: Sequence[int], target_users: Sequence[int]
    ) -> np.ndarray:
        """Vectorised ``x(u_k, v_k)`` for aligned index sequences."""
        u = np.asarray(source_users, dtype=np.int64)
        v = np.asarray(target_users, dtype=np.int64)
        if u.shape != v.shape:
            raise TrainingError(
                f"source and target index shapes differ: {u.shape} vs {v.shape}"
            )
        dots = np.einsum("ij,ij->i", self.source[u], self.target[v])
        return dots + self.source_bias[u] + self.target_bias[v]

    def scores_from(self, source_user: int) -> np.ndarray:
        """``x(u, ·)`` against every user — used by diffusion prediction."""
        u = int(source_user)
        return (
            self.target @ self.source[u]
            + self.source_bias[u]
            + self.target_bias
        )

    def scores_onto(self, target_user: int, source_users: Sequence[int]) -> np.ndarray:
        """``x(u_k, v)`` for one target ``v`` and many candidate influencers."""
        v = int(target_user)
        u = np.asarray(source_users, dtype=np.int64)
        return self.source[u] @ self.target[v] + self.source_bias[u] + self.target_bias[v]

    def combined_vectors(self) -> np.ndarray:
        """Concatenated ``[S_u ; T_u]`` per user, the paper's Fig 6 input."""
        return np.hstack([self.source, self.target])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically persist all four parameter arrays to an ``.npz`` file.

        A missing ``.npz`` suffix is appended explicitly (numpy would
        append it silently, which used to break ``load`` on the same
        bare path); the final path is returned.  The write goes through
        :func:`repro.ckpt.atomic.atomic_output`, so an interrupted save
        never leaves a truncated archive at the destination.
        """
        final = ensure_suffix(path, ".npz")
        with atomic_output(final) as tmp:
            np.savez_compressed(
                tmp,
                source=self.source,
                target=self.target,
                source_bias=self.source_bias,
                target_bias=self.target_bias,
            )
        return final

    @classmethod
    def load(cls, path: Union[str, Path]) -> "InfluenceEmbedding":
        """Load parameters previously written by :meth:`save`.

        Accepts the same path spelling as :meth:`save` — with or
        without the ``.npz`` suffix.
        """
        with np.load(ensure_suffix(path, ".npz")) as data:
            return cls(
                source=data["source"],
                target=data["target"],
                source_bias=data["source_bias"],
                target_bias=data["target_bias"],
            )

    def copy(self) -> "InfluenceEmbedding":
        """Deep copy (training checkpoints, ablation branches)."""
        return InfluenceEmbedding(
            self.source.copy(),
            self.target.copy(),
            self.source_bias.copy(),
            self.target_bias.copy(),
        )

    def __repr__(self) -> str:
        return f"InfluenceEmbedding(num_users={self.num_users}, dim={self.dim})"
