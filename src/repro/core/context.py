"""Influence-context generation (Algorithm 1 of the paper).

For a user ``u`` inside an episode's propagation network the *influence
context* ``C_u^i`` blends two constituents:

* **Local influence context** — ``L * alpha`` users produced by a
  random walk with restart on the propagation DAG, starting at ``u``.
  At every step the walk returns to ``u`` with probability
  ``restart_prob`` (0.5 in the paper, following node2vec's default) and
  otherwise moves to a uniformly chosen successor of the current node.
  Visited users (excluding ``u`` itself) are recorded until the length
  budget is exhausted; a walk stuck at a node with no successors
  restarts from ``u``.  If ``u`` cannot reach anyone (no successors at
  all), the local component is empty — there is nobody it influenced.

* **Global user-similarity context** — ``L * (1 - alpha)`` users
  sampled uniformly *with replacement* from all adopters ``V_i`` of the
  item (excluding ``u``), capturing "users who performed the same
  action share interests".

The component weight ``alpha`` is the paper's α (default 0.1 tuned on
the validation set; α = 1.0 yields the Inf2vec-L ablation of Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.core.propagation import PropagationNetwork
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import TrainingError
from repro.utils.rng import RandomState, SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability

#: Restart probability of the random walk, the paper's fixed choice.
DEFAULT_RESTART_PROB = 0.5


@dataclass(frozen=True)
class ContextConfig:
    """Hyper-parameters of Algorithm 1.

    Attributes
    ----------
    length:
        Length threshold ``L`` — total context size budget (paper
        default 50).
    alpha:
        Component weight α in [0, 1]: fraction of the budget spent on
        the local random-walk context (paper default 0.1).
    restart_prob:
        Restart probability of the walk (paper uses 0.5).
    """

    length: int = 50
    alpha: float = 0.1
    restart_prob: float = DEFAULT_RESTART_PROB

    def __post_init__(self) -> None:
        check_positive_int("length", self.length)
        check_probability("alpha", self.alpha)
        check_probability("restart_prob", self.restart_prob)

    @property
    def local_budget(self) -> int:
        """``L * alpha`` rounded to the nearest integer."""
        return int(round(self.length * self.alpha))

    @property
    def global_budget(self) -> int:
        """``L * (1 - alpha)``: the remainder of the budget."""
        return self.length - self.local_budget


@dataclass(frozen=True)
class InfluenceContext:
    """One ``(u, C_u^i)`` tuple produced by Algorithm 1.

    ``local`` and ``global_`` keep the two constituents separate so the
    trainer and the ablation analyses can distinguish them; ``users``
    concatenates them in generation order, which is the paper's
    ``C_u^i = C_1 + C_2``.
    """

    user: int
    item: int
    local: tuple[int, ...]
    global_: tuple[int, ...]

    @property
    def users(self) -> tuple[int, ...]:
        """The full context ``C_1 + C_2``."""
        return self.local + self.global_

    def __len__(self) -> int:
        return len(self.local) + len(self.global_)


def random_walk_with_restart(
    network: PropagationNetwork,
    start: int,
    budget: int,
    restart_prob: float,
    rng: RandomState,
) -> list[int]:
    """Collect up to ``budget`` visited users by a restarting walk.

    The walk starts at ``start`` and records every node it moves to
    (``start`` itself is never recorded).  With probability
    ``restart_prob`` a step jumps back to ``start`` without recording;
    otherwise it moves to a uniform random successor of the current
    node.  Dead ends (no successors) force a restart.

    Returns fewer than ``budget`` users only when ``start`` has no
    successors at all, in which case the list is empty.
    """
    if budget <= 0:
        return []
    start = int(start)
    if network.out_degree(start) == 0:
        return []
    visited: list[int] = []
    current = start
    while len(visited) < budget:
        successors = network.successors(current)
        if current != start and rng.random() < restart_prob:
            current = start
            continue
        if successors.shape[0] == 0:
            current = start
            continue
        current = int(successors[rng.integers(successors.shape[0])])
        visited.append(current)
    return visited


def sample_global_context(
    network: PropagationNetwork,
    user: int,
    budget: int,
    rng: RandomState,
) -> list[int]:
    """Uniformly sample ``budget`` co-adopters of the item (with replacement).

    The user themself is excluded; if they are the only adopter the
    global context is empty.
    """
    if budget <= 0:
        return []
    candidates = network.nodes[network.nodes != int(user)]
    if candidates.shape[0] == 0:
        return []
    picks = rng.integers(candidates.shape[0], size=budget)
    return [int(candidates[p]) for p in picks]


def generate_context(
    network: PropagationNetwork,
    user: int,
    config: ContextConfig,
    rng: RandomState,
) -> InfluenceContext:
    """Algorithm 1: blend local-walk and global-similarity contexts."""
    local = random_walk_with_restart(
        network, user, config.local_budget, config.restart_prob, rng
    )
    global_ = sample_global_context(network, user, config.global_budget, rng)
    return InfluenceContext(
        user=int(user),
        item=network.item,
        local=tuple(local),
        global_=tuple(global_),
    )


def generate_episode_contexts(
    network: PropagationNetwork,
    config: ContextConfig,
    rng: RandomState,
) -> list[InfluenceContext]:
    """One ``(u, C_u^i)`` tuple per adopter of the episode (``P_{D_i}``).

    Contexts that come out completely empty (isolated single-adopter
    episodes) are dropped — they contribute nothing to the objective.
    """
    contexts = []
    for user in network.nodes:
        context = generate_context(network, int(user), config, rng)
        if len(context) > 0:
            contexts.append(context)
    return contexts


class ContextGenerator:
    """Generates the full training corpus ``P`` from a graph + action log.

    This is the first half of Algorithm 2 (lines 3–8): extract each
    episode's propagation network, then run Algorithm 1 for every
    adopter.

    Parameters
    ----------
    graph:
        The social network.
    config:
        Algorithm 1 hyper-parameters.
    seed:
        RNG seed/generator; drawing contexts twice from generators
        constructed with the same seed yields identical corpora.
    """

    def __init__(
        self,
        graph: SocialGraph,
        config: ContextConfig | None = None,
        seed: SeedLike = None,
    ):
        self._graph = graph
        self._config = config if config is not None else ContextConfig()
        self._rng = ensure_rng(seed)

    @property
    def config(self) -> ContextConfig:
        """The Algorithm 1 hyper-parameters in use."""
        return self._config

    def iter_contexts(self, log: ActionLog) -> Iterator[InfluenceContext]:
        """Stream contexts episode by episode (lines 3–8 of Algorithm 2)."""
        if log.num_users > self._graph.num_nodes:
            raise TrainingError(
                f"action log has {log.num_users} users but the graph only "
                f"has {self._graph.num_nodes} nodes"
            )
        for episode in log:
            network = PropagationNetwork.from_episode(self._graph, episode)
            yield from generate_episode_contexts(network, self._config, self._rng)

    def generate(self, log: ActionLog) -> list[InfluenceContext]:
        """Materialise the whole corpus ``P`` as a list."""
        return list(self.iter_contexts(log))


def corpus_statistics(contexts: Sequence[InfluenceContext]) -> dict[str, float]:
    """Summary statistics of a generated corpus (for logging/tests)."""
    if not contexts:
        return {
            "num_tuples": 0,
            "total_context_users": 0,
            "mean_context_size": 0.0,
            "local_fraction": 0.0,
        }
    total = sum(len(c) for c in contexts)
    local = sum(len(c.local) for c in contexts)
    return {
        "num_tuples": len(contexts),
        "total_context_users": total,
        "mean_context_size": total / len(contexts),
        "local_fraction": local / total if total else 0.0,
    }
