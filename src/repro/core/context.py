"""Influence-context generation (Algorithm 1 of the paper).

For a user ``u`` inside an episode's propagation network the *influence
context* ``C_u^i`` blends two constituents:

* **Local influence context** — ``L * alpha`` users produced by a
  random walk with restart on the propagation DAG, starting at ``u``.
  At every step the walk returns to ``u`` with probability
  ``restart_prob`` (0.5 in the paper, following node2vec's default) and
  otherwise moves to a uniformly chosen successor of the current node.
  Visited users (excluding ``u`` itself) are recorded until the length
  budget is exhausted; a walk stuck at a node with no successors
  restarts from ``u``.  If ``u`` cannot reach anyone (no successors at
  all), the local component is empty — there is nobody it influenced.

* **Global user-similarity context** — ``L * (1 - alpha)`` users
  sampled uniformly *with replacement* from all adopters ``V_i`` of the
  item (excluding ``u``), capturing "users who performed the same
  action share interests".

The component weight ``alpha`` is the paper's α (default 0.1 tuned on
the validation set; α = 1.0 yields the Inf2vec-L ablation of Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.propagation import PropagationNetwork, cached_propagation_networks
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import TrainingError
from repro.obs.metrics import (
    CONTEXT_LENGTH_BUCKETS,
    MetricsRegistry,
    WALK_LENGTH_BUCKETS,
)
from repro.obs.run import active_metrics
from repro.utils.rng import RandomState, SeedLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability

#: Restart probability of the random walk, the paper's fixed choice.
DEFAULT_RESTART_PROB = 0.5


@dataclass(frozen=True)
class ContextConfig:
    """Hyper-parameters of Algorithm 1.

    Attributes
    ----------
    length:
        Length threshold ``L`` — total context size budget (paper
        default 50).
    alpha:
        Component weight α in [0, 1]: fraction of the budget spent on
        the local random-walk context (paper default 0.1).
    restart_prob:
        Restart probability of the walk (paper uses 0.5).
    """

    length: int = 50
    alpha: float = 0.1
    restart_prob: float = DEFAULT_RESTART_PROB

    def __post_init__(self) -> None:
        check_positive_int("length", self.length)
        check_probability("alpha", self.alpha)
        check_probability("restart_prob", self.restart_prob)

    @property
    def local_budget(self) -> int:
        """``L * alpha`` rounded to the nearest integer."""
        return int(round(self.length * self.alpha))

    @property
    def global_budget(self) -> int:
        """``L * (1 - alpha)``: the remainder of the budget."""
        return self.length - self.local_budget


@dataclass(frozen=True)
class InfluenceContext:
    """One ``(u, C_u^i)`` tuple produced by Algorithm 1.

    ``local`` and ``global_`` keep the two constituents separate so the
    trainer and the ablation analyses can distinguish them; ``users``
    concatenates them in generation order, which is the paper's
    ``C_u^i = C_1 + C_2``.
    """

    user: int
    item: int
    local: tuple[int, ...]
    global_: tuple[int, ...]

    @property
    def users(self) -> tuple[int, ...]:
        """The full context ``C_1 + C_2``."""
        return self.local + self.global_

    def __len__(self) -> int:
        return len(self.local) + len(self.global_)


def random_walk_with_restart(
    network: PropagationNetwork,
    start: int,
    budget: int,
    restart_prob: float,
    rng: RandomState,
) -> list[int]:
    """Collect up to ``budget`` visited users by a restarting walk.

    The walk starts at ``start`` and records every node it moves to
    (``start`` itself is never recorded).  With probability
    ``restart_prob`` a step jumps back to ``start`` without recording;
    otherwise it moves to a uniform random successor of the current
    node.  Dead ends (no successors) force a restart.

    Returns fewer than ``budget`` users only when ``start`` has no
    successors at all, in which case the list is empty.
    """
    if budget <= 0:
        return []
    start = int(start)
    if network.out_degree(start) == 0:
        return []
    visited: list[int] = []
    current = start
    while len(visited) < budget:
        successors = network.successors(current)
        if current != start and rng.random() < restart_prob:
            current = start
            continue
        if successors.shape[0] == 0:
            current = start
            continue
        current = int(successors[rng.integers(successors.shape[0])])
        visited.append(current)
    return visited


def batched_random_walk_with_restart(
    network: PropagationNetwork,
    starts: np.ndarray,
    budget: int,
    restart_prob: float,
    rng: RandomState,
    metrics: MetricsRegistry | None = None,
) -> list[np.ndarray]:
    """Run one restarting walk per start node, all advanced in lockstep.

    Vectorised counterpart of :func:`random_walk_with_restart`: every
    step advances the whole active frontier with fancy indexing over
    the network's CSR arrays instead of walking one node at a time.
    Per-walker semantics are identical — restart with probability
    ``restart_prob`` when away from the start, dead ends force an
    unrecorded restart, the start node is never recorded, and walkers
    whose start has no successors return empty — but the RNG stream is
    consumed frontier-by-frontier rather than walker-by-walker, so
    individual walks differ from the sequential ones under the same
    seed while remaining distributionally equivalent.

    Returns one int64 array of visited users (original IDs, in visit
    order) per entry of ``starts``.
    """
    starts = np.asarray(starts, dtype=np.int64)
    num_walkers = int(starts.shape[0])
    if budget <= 0 or num_walkers == 0:
        return [_EMPTY_WALK.copy() for _ in range(num_walkers)]
    start_compact = network.compact_indices(starts)
    visited, filled = _batched_walk_raw(
        network, start_compact, budget, restart_prob, rng, metrics=metrics
    )
    nodes = network.nodes
    return [nodes[visited[w, : filled[w]]] for w in range(num_walkers)]


def _batched_walk_raw(
    network: PropagationNetwork,
    start_compact: np.ndarray,
    budget: int,
    restart_prob: float,
    rng: RandomState,
    metrics: MetricsRegistry | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep walk core over compact positions.

    Returns ``(visited, filled)``: a ``(num_walkers, budget)`` matrix of
    visited compact positions (rows valid up to ``filled[w]``, zero
    elsewhere) and the per-walker fill count.

    When an enabled ``metrics`` registry is supplied, restart and
    dead-end counts are accumulated per frontier step and flushed once
    at the end; with the default ``None`` the loop does no telemetry
    arithmetic at all (the zero-overhead contract).
    """
    num_walkers = int(start_compact.shape[0])
    indptr, indices = network.successor_csr()
    degrees = np.diff(indptr)
    track = metrics is not None and metrics.enabled
    restarts = 0
    dead_ends = 0
    steps = 0

    visited = np.zeros((num_walkers, budget), dtype=np.int64)
    filled = np.zeros(num_walkers, dtype=np.int64)
    current = start_compact.copy()
    # Walkers whose start cannot reach anyone never produce output.
    active = np.nonzero(degrees[start_compact] > 0)[0]
    while active.size:
        cur = current[active]
        start = start_compact[active]
        away = cur != start
        restart = np.zeros(active.size, dtype=bool)
        num_away = int(away.sum())
        if num_away:
            restart[away] = rng.random(num_away) < restart_prob
        cur = np.where(restart, start, cur)
        degree = degrees[cur]
        # Dead ends among non-restarted walkers also jump home without
        # recording; everyone else takes a uniform successor step.
        moving = np.nonzero(~restart & (degree > 0))[0]
        cur = np.where(~restart & (degree == 0), start, cur)
        if moving.size:
            choice = (rng.random(moving.size) * degree[moving]).astype(np.int64)
            stepped = indices[indptr[cur[moving]] + choice]
            cur[moving] = stepped
            rows = active[moving]
            visited[rows, filled[rows]] = stepped
            filled[rows] += 1
        if track:
            restarts += int(restart.sum())
            dead_ends += int((~restart & (degree == 0)).sum())
            steps += int(moving.size)
        current[active] = cur
        active = active[filled[active] < budget]
    if track:
        metrics.counter(
            "contexts.walk.restarts", "probabilistic jumps back to the start"
        ).inc(restarts)
        metrics.counter(
            "contexts.walk.dead_ends", "forced restarts at successor-less nodes"
        ).inc(dead_ends)
        metrics.counter(
            "contexts.walk.steps", "recorded walk steps"
        ).inc(steps)
    return visited, filled


_EMPTY_WALK = np.empty(0, dtype=np.int64)


def sample_global_context(
    network: PropagationNetwork,
    user: int,
    budget: int,
    rng: RandomState,
) -> list[int]:
    """Uniformly sample ``budget`` co-adopters of the item (with replacement).

    The user themself is excluded; if they are the only adopter the
    global context is empty.
    """
    if budget <= 0:
        return []
    candidates = network.nodes[network.nodes != int(user)]
    if candidates.shape[0] == 0:
        return []
    picks = rng.integers(candidates.shape[0], size=budget)
    return [int(candidates[p]) for p in picks]


def generate_context(
    network: PropagationNetwork,
    user: int,
    config: ContextConfig,
    rng: RandomState,
) -> InfluenceContext:
    """Algorithm 1: blend local-walk and global-similarity contexts."""
    local = random_walk_with_restart(
        network, user, config.local_budget, config.restart_prob, rng
    )
    global_ = sample_global_context(network, user, config.global_budget, rng)
    return InfluenceContext(
        user=int(user),
        item=network.item,
        local=tuple(local),
        global_=tuple(global_),
    )


def generate_episode_contexts(
    network: PropagationNetwork,
    config: ContextConfig,
    rng: RandomState,
) -> list[InfluenceContext]:
    """One ``(u, C_u^i)`` tuple per adopter of the episode (``P_{D_i}``).

    Contexts that come out completely empty (isolated single-adopter
    episodes) are dropped — they contribute nothing to the objective.
    """
    contexts = []
    for user in network.nodes:
        context = generate_context(network, int(user), config, rng)
        if len(context) > 0:
            contexts.append(context)
    return contexts


def generate_episode_contexts_batched(
    network: PropagationNetwork,
    config: ContextConfig,
    rng: RandomState,
    metrics: MetricsRegistry | None = None,
) -> list[InfluenceContext]:
    """Vectorised :func:`generate_episode_contexts`.

    All of the episode's local walks advance together through
    :func:`batched_random_walk_with_restart`, and the global
    co-adopter samples for every adopter are drawn in one call.  The
    global draw uses the shifted-index trick — sample positions in
    ``[0, |V_i| - 1)`` and skip past each user's own slot — which is
    the same uniform-over-others distribution as the sequential
    sampler.  Contexts that come out completely empty are dropped, as
    in the sequential path.
    """
    users = network.nodes
    num_users = int(users.shape[0])
    if num_users == 0:
        return []
    # The compact position of ``nodes[k]`` is ``k`` by construction, so
    # the whole adopter set seeds the walk as a plain arange.
    local_budget = config.local_budget
    if local_budget > 0:
        visited, filled = _batched_walk_raw(
            network,
            np.arange(num_users, dtype=np.int64),
            local_budget,
            config.restart_prob,
            rng,
            metrics=metrics,
        )
        # One matrix-wide gather + tolist instead of a tolist per walk.
        # Most walks fill the whole budget, so tuple whole rows in one
        # C-level pass and only truncate the short ones after the fact.
        local_tuples = list(map(tuple, users[visited].tolist()))
        short = np.nonzero(filled < local_budget)[0]
        if short.shape[0]:
            fills = filled.tolist()
            for position in short.tolist():
                local_tuples[position] = local_tuples[position][
                    : fills[position]
                ]
    else:
        local_tuples = [()] * num_users
    global_budget = config.global_budget
    if global_budget > 0 and num_users > 1:
        draws = rng.integers(num_users - 1, size=(num_users, global_budget))
        draws += draws >= np.arange(num_users)[:, None]
        global_tuples = list(map(tuple, users[draws].tolist()))
    else:
        global_tuples = [()] * num_users
    item = network.item
    contexts = []
    for user, local, global_ in zip(users.tolist(), local_tuples, global_tuples):
        if local or global_:
            contexts.append(
                InfluenceContext(
                    user=user, item=item, local=local, global_=global_
                )
            )
    return contexts


class ContextGenerator:
    """Generates the full training corpus ``P`` from a graph + action log.

    This is the first half of Algorithm 2 (lines 3–8): extract each
    episode's propagation network, then run Algorithm 1 for every
    adopter.

    Parameters
    ----------
    graph:
        The social network.
    config:
        Algorithm 1 hyper-parameters.
    seed:
        RNG seed/generator; drawing contexts twice from generators
        constructed with the same seed yields identical corpora.
    batched:
        Use the vectorised episode pipeline (batched walks, one global
        draw per episode, cached propagation networks).  ``False``
        selects the sequential per-node reference implementation —
        kept for speedup benchmarking and statistical-equivalence
        tests.  Both modes are seed-deterministic but consume the RNG
        in different orders, so their corpora differ draw-by-draw.
    metrics:
        Telemetry sink for walk/context statistics (restart counts,
        walk-length and context-length histograms, episode cache
        hits).  ``None`` (the default) resolves the ambient
        :func:`repro.obs.run.active_metrics` registry at generation
        time — the null registry unless a ``recording`` scope is
        active, in which case generation records at no extra cost to
        un-instrumented runs.
    """

    def __init__(
        self,
        graph: SocialGraph,
        config: ContextConfig | None = None,
        seed: SeedLike = None,
        batched: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self._graph = graph
        self._config = config if config is not None else ContextConfig()
        self._rng = ensure_rng(seed)
        self._batched = bool(batched)
        self._metrics = metrics

    @property
    def config(self) -> ContextConfig:
        """The Algorithm 1 hyper-parameters in use."""
        return self._config

    def iter_contexts(self, log: ActionLog) -> Iterator[InfluenceContext]:
        """Stream contexts episode by episode (lines 3–8 of Algorithm 2)."""
        active = log.active_users()
        if active.shape[0] and int(active[-1]) >= self._graph.num_nodes:
            raise TrainingError(
                f"action log references user {int(active[-1])} but the "
                f"graph only has {self._graph.num_nodes} nodes (user IDs "
                f"must be < num_nodes)"
            )
        metrics = self._metrics if self._metrics is not None else active_metrics()
        if self._batched:
            networks = cached_propagation_networks(
                self._graph, log, metrics=metrics
            )
            for episode in log:
                contexts = generate_episode_contexts_batched(
                    networks[episode.item], self._config, self._rng,
                    metrics=metrics,
                )
                if metrics.enabled:
                    _observe_episode_contexts(metrics, contexts)
                yield from contexts
        else:
            for episode in log:
                network = PropagationNetwork.from_episode(self._graph, episode)
                contexts = generate_episode_contexts(
                    network, self._config, self._rng
                )
                if metrics.enabled:
                    _observe_episode_contexts(metrics, contexts)
                yield from contexts

    def generate(self, log: ActionLog) -> list[InfluenceContext]:
        """Materialise the whole corpus ``P`` as a list."""
        return list(self.iter_contexts(log))

    def iter_context_chunks(
        self, log: ActionLog, episodes_per_chunk: int
    ) -> Iterator[list[InfluenceContext]]:
        """Generate the corpus in bounded chunks of episodes.

        The out-of-core path: each yielded chunk covers
        ``episodes_per_chunk`` episodes and materialises only their
        contexts (and, in batched mode, only their propagation-network
        cache), so peak memory is O(chunk) however large the log grows.
        Chunking does not change what is generated — episodes are
        processed in log order either way, so the concatenation of all
        chunks equals :meth:`generate` on the same RNG stream.
        """
        episodes_per_chunk = check_positive_int(
            "episodes_per_chunk", episodes_per_chunk
        )
        episodes = log.episodes
        for start in range(0, len(episodes), episodes_per_chunk):
            chunk_log = ActionLog(
                episodes[start : start + episodes_per_chunk],
                num_users=log.num_users,
            )
            yield self.generate(chunk_log)


def _observe_episode_contexts(
    metrics: MetricsRegistry, contexts: Sequence[InfluenceContext]
) -> None:
    """Record one episode's context statistics (enabled registries only)."""
    metrics.counter("contexts.episodes", "episodes processed").inc()
    metrics.counter("contexts.tuples", "(u, C_u^i) tuples generated").inc(
        len(contexts)
    )
    if not contexts:
        return
    metrics.histogram(
        "contexts.walk_length",
        WALK_LENGTH_BUCKETS,
        "local random-walk context sizes",
    ).observe_many([len(context.local) for context in contexts])
    metrics.histogram(
        "contexts.length",
        CONTEXT_LENGTH_BUCKETS,
        "full context sizes (local + global)",
    ).observe_many([len(context) for context in contexts])


def corpus_statistics(contexts: Sequence[InfluenceContext]) -> dict[str, float]:
    """Summary statistics of a generated corpus (for logging/tests)."""
    if not contexts:
        return {
            "num_tuples": 0,
            "total_context_users": 0,
            "mean_context_size": 0.0,
            "local_fraction": 0.0,
        }
    total = sum(len(c) for c in contexts)
    local = sum(len(c.local) for c in contexts)
    return {
        "num_tuples": len(contexts),
        "total_context_users": total,
        "mean_context_size": total / len(contexts),
        "local_fraction": local / total if total else 0.0,
    }
