"""Per-episode influence propagation networks (Definition 3).

Combining all the influence pairs of a single diffusion episode yields
the *influence propagation network* ``G_i = (V_i, E_i)``: a subgraph of
the social network whose edges all point forward in adoption time.
Because of the strict time ordering, ``G_i`` is a directed acyclic
graph (each node may have several parents and several children — Fig 5
of the paper).

The propagation network is the substrate of Algorithm 1's random walk
(local influence context); its node set ``V_i`` — everyone who adopted
the item *and* touched at least one influence pair, plus isolated
adopters — supplies the global user-similarity samples.

Adjacency is stored in CSR form (offset/indices arrays) over *compact*
node positions ``0 .. |V_i|-1`` (chronological adopter order), which is
what lets the batched random walk advance every walker of an episode
simultaneously with fancy indexing — see
:func:`repro.core.context.batched_random_walk_with_restart`.  Scalar
accessors (:meth:`PropagationNetwork.successors` etc.) keep answering
in original social-network IDs.

Because the training loop revisits the same episodes every epoch (and
``regenerate_contexts`` rebuilds the corpus each epoch), networks are
memoised per action log — :func:`cached_propagation_networks` keys the
cache on action-log identity and drops entries automatically when the
log is garbage collected.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.pairs import extract_episode_pairs
from repro.data.actionlog import DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import GraphError

if TYPE_CHECKING:
    from repro.data.actionlog import ActionLog


class PropagationNetwork:
    """A directed acyclic influence-propagation graph for one episode.

    Nodes keep their *original* social-network IDs in the public
    accessors; internally adjacency is CSR over compact positions into
    :attr:`nodes` so vectorised consumers can gather whole frontiers at
    once (:meth:`successor_csr`).

    Parameters
    ----------
    item:
        The episode's item identifier.
    adopters:
        Every user that adopted the item, in chronological order.
        Adopters with no incident influence pair are still members of
        ``nodes`` — the paper samples the *global* context uniformly
        from ``V_i``, i.e. from all adopters of the item.
    edges:
        ``(m, 2)`` array of influence pairs ``(earlier, later)``.
    """

    def __init__(self, item: int, adopters: np.ndarray, edges: np.ndarray):
        self._item = int(item)
        self._adopters = np.asarray(adopters, dtype=np.int64)
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        self._edges = edges
        num_nodes = int(self._adopters.shape[0])

        # Original-ID -> compact-position mapping via a sorted copy;
        # adopters are unique so searchsorted resolves exactly.
        self._sort_order = np.argsort(self._adopters, kind="stable")
        self._sorted_adopters = self._adopters[self._sort_order]

        if edges.shape[0]:
            compact_flat = self._to_compact(edges.ravel(), validate=True)
            compact = compact_flat.reshape(-1, 2)
        else:
            compact = edges

        # CSR in both directions.  Neighbour lists are sorted by
        # original ID inside each slice, preserving the ordering the
        # sequential walk has always seen (and hence its seeded
        # determinism).
        self._out_indptr, self._out_compact, self._out_original = self._build_csr(
            compact[:, 0], compact[:, 1], edges[:, 1], num_nodes
        )
        self._in_indptr, _, self._in_original = self._build_csr(
            compact[:, 1], compact[:, 0], edges[:, 0], num_nodes
        )

    def _to_compact(self, values: np.ndarray, validate: bool = False) -> np.ndarray:
        """Map original user IDs to compact positions into ``nodes``."""
        num_nodes = self._sorted_adopters.shape[0]
        if num_nodes == 0:
            raise GraphError(
                f"edge endpoint {int(values[0])} is not an adopter of "
                f"item {self._item}"
            )
        pos = np.searchsorted(self._sorted_adopters, values)
        if validate:
            clipped = np.minimum(pos, num_nodes - 1)
            bad = (pos >= num_nodes) | (self._sorted_adopters[clipped] != values)
            if np.any(bad):
                raise GraphError(
                    f"edge endpoint {int(values[bad.argmax()])} is not an "
                    f"adopter of item {self._item}"
                )
        return self._sort_order[pos]

    def _build_csr(
        self,
        group_by: np.ndarray,
        compact_values: np.ndarray,
        original_values: np.ndarray,
        num_nodes: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        counts = np.bincount(group_by, minlength=num_nodes).astype(np.int64)
        indptr = np.empty(num_nodes + 1, dtype=np.int64)
        indptr[0] = 0
        np.cumsum(counts, out=indptr[1:])
        order = np.lexsort((original_values, group_by))
        return indptr, compact_values[order], original_values[order]

    @classmethod
    def from_episode(
        cls, graph: SocialGraph, episode: DiffusionEpisode
    ) -> "PropagationNetwork":
        """Extract the propagation network of ``episode`` within ``graph``."""
        edges = extract_episode_pairs(graph, episode)
        return cls(episode.item, episode.users, edges)

    @property
    def item(self) -> int:
        """Item identifier of the underlying episode."""
        return self._item

    @property
    def nodes(self) -> np.ndarray:
        """All adopters of the item, in chronological order (``V_i``)."""
        return self._adopters

    @property
    def num_nodes(self) -> int:
        """``|V_i|``."""
        return int(self._adopters.shape[0])

    @property
    def num_edges(self) -> int:
        """``|E_i|``."""
        return int(self._edges.shape[0])

    def edge_array(self) -> np.ndarray:
        """Influence-pair edges as an ``(m, 2)`` int64 array."""
        return self._edges.copy()

    # ------------------------------------------------------------------
    # Vectorised access (batched random walk)
    # ------------------------------------------------------------------

    def successor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Successor adjacency as CSR ``(indptr, indices)`` arrays.

        Both arrays are in *compact* positions: node ``k`` is
        ``nodes[k]``, and ``indices[indptr[k]:indptr[k+1]]`` are the
        compact positions of its successors.  Treat as read-only.
        """
        return self._out_indptr, self._out_compact

    def compact_indices(self, users: np.ndarray) -> np.ndarray:
        """Compact positions of ``users`` inside :attr:`nodes`.

        All entries must be adopters of the item; used to seed batched
        walks with original IDs.
        """
        users = np.asarray(users, dtype=np.int64)
        num_nodes = self._sorted_adopters.shape[0]
        pos = np.searchsorted(self._sorted_adopters, users)
        clipped = np.minimum(pos, max(num_nodes - 1, 0))
        if num_nodes == 0 or np.any(
            (pos >= num_nodes) | (self._sorted_adopters[clipped] != users)
        ):
            raise GraphError(
                f"users are not all adopters of item {self._item}"
            )
        return self._sort_order[pos]

    def out_degrees(self) -> np.ndarray:
        """Out-degree per compact position (aligned with :attr:`nodes`)."""
        return np.diff(self._out_indptr)

    # ------------------------------------------------------------------
    # Scalar access (original IDs)
    # ------------------------------------------------------------------

    def _compact_of(self, node: int) -> int | None:
        num_nodes = self._sorted_adopters.shape[0]
        if num_nodes == 0:
            return None
        pos = int(np.searchsorted(self._sorted_adopters, node))
        if pos >= num_nodes or int(self._sorted_adopters[pos]) != int(node):
            return None
        return int(self._sort_order[pos])

    def successors(self, node: int) -> np.ndarray:
        """Users directly influenced by ``node`` in this episode."""
        compact = self._compact_of(int(node))
        if compact is None:
            return _EMPTY
        return self._out_original[
            self._out_indptr[compact] : self._out_indptr[compact + 1]
        ]

    def predecessors(self, node: int) -> list[int]:
        """Users that directly influenced ``node`` in this episode."""
        compact = self._compact_of(int(node))
        if compact is None:
            return []
        return self._in_original[
            self._in_indptr[compact] : self._in_indptr[compact + 1]
        ].tolist()

    def out_degree(self, node: int) -> int:
        """Number of users directly influenced by ``node``."""
        compact = self._compact_of(int(node))
        if compact is None:
            return 0
        return int(self._out_indptr[compact + 1] - self._out_indptr[compact])

    def roots(self) -> list[int]:
        """Adopters with no influencing predecessor (cascade sources)."""
        in_degrees = np.diff(self._in_indptr)
        return self._adopters[in_degrees == 0].tolist()

    def is_acyclic(self) -> bool:
        """Verify the DAG property (always true for valid episode data).

        Runs Kahn's algorithm over the compact CSR arrays; exposed for
        tests and for loaders that ingest third-party cascade files
        where timestamps may have been corrupted.
        """
        in_degree = np.diff(self._in_indptr).copy()
        frontier = list(np.nonzero(in_degree == 0)[0])
        visited = 0
        while frontier:
            node = int(frontier.pop())
            visited += 1
            for child in self._out_compact[
                self._out_indptr[node] : self._out_indptr[node + 1]
            ]:
                child = int(child)
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    frontier.append(child)
        return visited == self.num_nodes

    def __repr__(self) -> str:
        return (
            f"PropagationNetwork(item={self._item}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )


_EMPTY = np.empty(0, dtype=np.int64)


def build_propagation_networks(
    graph: SocialGraph, episodes
) -> Mapping[int, PropagationNetwork]:
    """Propagation network per episode, keyed by item."""
    return {
        episode.item: PropagationNetwork.from_episode(graph, episode)
        for episode in episodes
    }


#: Episode-network cache keyed by action-log identity.  Weak keys mean
#: a log's networks die with the log; the value pins the graph they
#: were extracted from so a different graph invalidates the entry.
_NETWORK_CACHE: "weakref.WeakKeyDictionary[ActionLog, tuple[SocialGraph, dict[int, PropagationNetwork]]]" = (
    weakref.WeakKeyDictionary()
)


def cached_propagation_networks(
    graph: SocialGraph, log: "ActionLog", metrics=None
) -> Mapping[int, PropagationNetwork]:
    """Propagation networks of ``log``, memoised on log identity.

    Repeated calls with the same ``(graph, log)`` objects (multi-epoch
    training, ``regenerate_contexts``, incremental passes) reuse the
    extracted networks instead of re-running pair extraction.  A
    different graph object for a cached log rebuilds the entry; logs
    that cannot be weak-referenced are computed without caching.

    An enabled :class:`repro.obs.metrics.MetricsRegistry` passed as
    ``metrics`` counts ``contexts.cache.hits`` / ``.misses``.
    """
    track = metrics is not None and metrics.enabled
    entry = _NETWORK_CACHE.get(log)
    if entry is not None and entry[0] is graph:
        if track:
            metrics.counter(
                "contexts.cache.hits", "episode-network cache hits"
            ).inc()
        return entry[1]
    if track:
        metrics.counter(
            "contexts.cache.misses", "episode-network cache rebuilds"
        ).inc()
    networks = dict(build_propagation_networks(graph, log))
    try:
        _NETWORK_CACHE[log] = (graph, networks)
    except TypeError:  # pragma: no cover - exotic log types
        pass
    return networks
