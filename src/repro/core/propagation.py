"""Per-episode influence propagation networks (Definition 3).

Combining all the influence pairs of a single diffusion episode yields
the *influence propagation network* ``G_i = (V_i, E_i)``: a subgraph of
the social network whose edges all point forward in adoption time.
Because of the strict time ordering, ``G_i`` is a directed acyclic
graph (each node may have several parents and several children — Fig 5
of the paper).

The propagation network is the substrate of Algorithm 1's random walk
(local influence context); its node set ``V_i`` — everyone who adopted
the item *and* touched at least one influence pair, plus isolated
adopters — supplies the global user-similarity samples.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.pairs import extract_episode_pairs
from repro.data.actionlog import DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import GraphError


class PropagationNetwork:
    """A directed acyclic influence-propagation graph for one episode.

    Nodes keep their *original* social-network IDs.  Adjacency is a
    plain dict of numpy arrays because these graphs are small (one
    episode) and are rebuilt per episode during context generation.

    Parameters
    ----------
    item:
        The episode's item identifier.
    adopters:
        Every user that adopted the item, in chronological order.
        Adopters with no incident influence pair are still members of
        ``nodes`` — the paper samples the *global* context uniformly
        from ``V_i``, i.e. from all adopters of the item.
    edges:
        ``(m, 2)`` array of influence pairs ``(earlier, later)``.
    """

    def __init__(self, item: int, adopters: np.ndarray, edges: np.ndarray):
        self._item = int(item)
        self._adopters = np.asarray(adopters, dtype=np.int64)
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        adopter_set = set(self._adopters.tolist())
        for endpoint in edges.flat:
            if int(endpoint) not in adopter_set:
                raise GraphError(
                    f"edge endpoint {int(endpoint)} is not an adopter of "
                    f"item {item}"
                )
        self._edges = edges
        self._successors: dict[int, list[int]] = {}
        self._predecessors: dict[int, list[int]] = {}
        for source, target in edges:
            self._successors.setdefault(int(source), []).append(int(target))
            self._predecessors.setdefault(int(target), []).append(int(source))
        self._successor_arrays: dict[int, np.ndarray] = {
            node: np.asarray(sorted(children), dtype=np.int64)
            for node, children in self._successors.items()
        }

    @classmethod
    def from_episode(
        cls, graph: SocialGraph, episode: DiffusionEpisode
    ) -> "PropagationNetwork":
        """Extract the propagation network of ``episode`` within ``graph``."""
        edges = extract_episode_pairs(graph, episode)
        return cls(episode.item, episode.users, edges)

    @property
    def item(self) -> int:
        """Item identifier of the underlying episode."""
        return self._item

    @property
    def nodes(self) -> np.ndarray:
        """All adopters of the item, in chronological order (``V_i``)."""
        return self._adopters

    @property
    def num_nodes(self) -> int:
        """``|V_i|``."""
        return int(self._adopters.shape[0])

    @property
    def num_edges(self) -> int:
        """``|E_i|``."""
        return int(self._edges.shape[0])

    def edge_array(self) -> np.ndarray:
        """Influence-pair edges as an ``(m, 2)`` int64 array."""
        return self._edges.copy()

    def successors(self, node: int) -> np.ndarray:
        """Users directly influenced by ``node`` in this episode."""
        return self._successor_arrays.get(int(node), _EMPTY)

    def predecessors(self, node: int) -> list[int]:
        """Users that directly influenced ``node`` in this episode."""
        return list(self._predecessors.get(int(node), []))

    def out_degree(self, node: int) -> int:
        """Number of users directly influenced by ``node``."""
        return int(self.successors(node).shape[0])

    def roots(self) -> list[int]:
        """Adopters with no influencing predecessor (cascade sources)."""
        return [
            int(node)
            for node in self._adopters
            if int(node) not in self._predecessors
        ]

    def is_acyclic(self) -> bool:
        """Verify the DAG property (always true for valid episode data).

        Runs Kahn's algorithm; exposed for tests and for loaders that
        ingest third-party cascade files where timestamps may have been
        corrupted.
        """
        in_degree = {int(n): 0 for n in self._adopters}
        for _, target in self._edges:
            in_degree[int(target)] += 1
        frontier = [n for n, d in in_degree.items() if d == 0]
        visited = 0
        while frontier:
            node = frontier.pop()
            visited += 1
            for child in self.successors(node):
                child = int(child)
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    frontier.append(child)
        return visited == len(in_degree)

    def __repr__(self) -> str:
        return (
            f"PropagationNetwork(item={self._item}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )


_EMPTY = np.empty(0, dtype=np.int64)


def build_propagation_networks(
    graph: SocialGraph, episodes
) -> Mapping[int, PropagationNetwork]:
    """Propagation network per episode, keyed by item."""
    return {
        episode.item: PropagationNetwork.from_episode(graph, episode)
        for episode in episodes
    }
