"""Negative sampling for the skip-gram objective (Eq. 4).

Computing the softmax normaliser ``Z(u)`` of Eq. 3 needs a pass over
every user; negative sampling replaces it with ``|N|`` sampled
"negative" users per positive observation.  The trainer defaults to a
*uniform* sampler — the literal reading of the paper's "randomly
generate several negative instances" (``Inf2vecConfig``'s
``negative_distribution="uniform"``) — and also exposes word2vec's
unigram distribution raised to the 3/4 power as an ablation knob
(exercised alongside the other design ablations in
``benchmarks/bench_ablation_design.py``).

The sampler pre-builds an alias-free cumulative table once and then
draws in O(log V) per sample via ``searchsorted`` (vectorised for whole
batches); the uniform special case short-circuits to plain integer
draws, which keeps the numpy trainer fast enough for the experiment
suite.  :meth:`NegativeSampler.sample_matrix` optionally rejects
collisions with per-row excluded users (the observation's center user
and positive), so a "negative" never contradicts the positive gradient
it is paired with.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

#: Word2vec's distortion exponent for the unigram distribution.
UNIGRAM_DISTORTION = 0.75


class NegativeSampler:
    """Draws negative users from a fixed categorical distribution.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weight per user.  The sampling
        distribution is ``weights / weights.sum()``.
    """

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise TrainingError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.shape[0] == 0:
            raise TrainingError("cannot sample negatives from zero users")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise TrainingError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise TrainingError("at least one weight must be positive")
        self._cumulative = np.cumsum(weights / total)
        # Guard the top end against floating-point drift so that a
        # random draw of exactly 1.0-eps never lands out of range.
        self._cumulative[-1] = 1.0
        self._num_users = weights.shape[0]
        # A uniform distribution (the trainer's default) admits a much
        # cheaper draw than inverse-CDF search: plain integer draws.
        self._uniform = bool(weights.min() == weights.max())

    @classmethod
    def uniform(cls, num_users: int) -> "NegativeSampler":
        """Uniform distribution over all users."""
        num_users = check_positive_int("num_users", num_users)
        return cls(np.ones(num_users))

    @classmethod
    def from_frequencies(
        cls,
        frequencies: np.ndarray,
        distortion: float = UNIGRAM_DISTORTION,
        smoothing: float = 1.0,
    ) -> "NegativeSampler":
        """Word2vec-style distorted unigram distribution.

        Parameters
        ----------
        frequencies:
            Occurrence count per user (how often the user appears as a
            context member in the corpus).
        distortion:
            The exponent (word2vec uses 0.75).
        smoothing:
            Added to every count so users never observed as context can
            still be drawn as negatives — important because unobserved
            users are exactly the ones the model should push scores
            down for.
        """
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if np.any(frequencies < 0):
            raise TrainingError("frequencies must be non-negative")
        if smoothing < 0:
            raise TrainingError(f"smoothing must be >= 0, got {smoothing}")
        return cls(np.power(frequencies + smoothing, distortion))

    @property
    def num_users(self) -> int:
        """Support size of the distribution."""
        return self._num_users

    def probabilities(self) -> np.ndarray:
        """The normalised sampling distribution (for tests/inspection)."""
        probs = np.diff(self._cumulative, prepend=0.0)
        return probs

    def sample(self, count: int, rng: RandomState) -> np.ndarray:
        """Draw ``count`` user IDs i.i.d. from the distribution."""
        if count < 0:
            raise TrainingError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self._uniform:
            return rng.integers(self._num_users, size=count, dtype=np.int64)
        draws = rng.random(count)
        return np.searchsorted(self._cumulative, draws, side="right").astype(np.int64)

    #: Resampling rounds before giving up on collision-free negatives.
    MAX_RESAMPLE_ROUNDS = 100

    def sample_matrix(
        self,
        rows: int,
        cols: int,
        rng: RandomState,
        exclude: np.ndarray | None = None,
        metrics=None,
    ) -> np.ndarray:
        """Draw a ``(rows, cols)`` matrix of negatives in one shot.

        Parameters
        ----------
        rows, cols:
            Matrix shape: one row per positive observation, ``cols``
            negatives each.
        rng:
            Source of randomness.
        exclude:
            Users that must not appear as negatives — either a 1-D
            array applied to every row, or a ``(rows, E)`` matrix of
            per-row exclusions (e.g. column 0 the center user, column
            1 the row's positive).  Collisions are masked and redrawn
            from the same distribution, which is exact rejection
            sampling over the allowed support.
        metrics:
            Optional :class:`repro.obs.metrics.MetricsRegistry`; when
            enabled it counts initial collisions and the
            rejection-resample rounds spent clearing them
            (``negatives.collisions`` / ``negatives.resample_rounds``).

        Raises
        ------
        TrainingError
            If collision-free negatives cannot be drawn (the excluded
            users carry essentially all of the distribution's mass).
        """
        matrix = self.sample(rows * cols, rng).reshape(rows, cols)
        if exclude is None or matrix.size == 0:
            return matrix
        exclude = np.asarray(exclude, dtype=np.int64)
        if exclude.ndim == 1:
            exclude = np.broadcast_to(exclude, (rows, exclude.shape[0]))
        elif exclude.ndim != 2 or exclude.shape[0] != rows:
            raise TrainingError(
                f"exclude must be 1-D or have {rows} rows, "
                f"got shape {exclude.shape}"
            )
        if exclude.shape[1] == 0:
            return matrix
        track = metrics is not None and metrics.enabled
        collisions = (matrix[:, :, None] == exclude[:, None, :]).any(axis=2)
        row_idx, col_idx = np.nonzero(collisions)
        if track and row_idx.shape[0]:
            metrics.counter(
                "negatives.collisions",
                "negatives initially colliding with excluded users",
            ).inc(row_idx.shape[0])
        rounds = 0
        for _ in range(self.MAX_RESAMPLE_ROUNDS):
            if row_idx.shape[0] == 0:
                if track and rounds:
                    metrics.counter(
                        "negatives.resample_rounds",
                        "rejection-resample iterations",
                    ).inc(rounds)
                return matrix
            matrix[row_idx, col_idx] = self.sample(row_idx.shape[0], rng)
            rounds += 1
            # Only the redrawn entries can still collide.
            still = (
                matrix[row_idx, col_idx][:, None] == exclude[row_idx]
            ).any(axis=1)
            row_idx = row_idx[still]
            col_idx = col_idx[still]
        raise TrainingError(
            "could not draw collision-free negatives after "
            f"{self.MAX_RESAMPLE_ROUNDS} rounds; the excluded users cover "
            "(almost) the entire sampling distribution"
        )
