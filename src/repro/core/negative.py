"""Negative sampling for the skip-gram objective (Eq. 4).

Computing the softmax normaliser ``Z(u)`` of Eq. 3 needs a pass over
every user; negative sampling replaces it with ``|N|`` sampled
"negative" users per positive observation.  Word2vec draws negatives
from the unigram distribution raised to the 3/4 power; we default to
the same but also expose a uniform sampler so the design choice can be
ablated (``benchmarks/bench_ablation_negatives.py``).

The sampler pre-builds an alias-free cumulative table once and then
draws in O(log V) per sample via ``searchsorted`` (vectorised for whole
batches), which keeps the pure-Python trainer fast enough for the
experiment suite.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.utils.rng import RandomState
from repro.utils.validation import check_positive_int

#: Word2vec's distortion exponent for the unigram distribution.
UNIGRAM_DISTORTION = 0.75


class NegativeSampler:
    """Draws negative users from a fixed categorical distribution.

    Parameters
    ----------
    weights:
        Non-negative, not-all-zero weight per user.  The sampling
        distribution is ``weights / weights.sum()``.
    """

    def __init__(self, weights: np.ndarray):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1:
            raise TrainingError(f"weights must be 1-D, got shape {weights.shape}")
        if weights.shape[0] == 0:
            raise TrainingError("cannot sample negatives from zero users")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise TrainingError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise TrainingError("at least one weight must be positive")
        self._cumulative = np.cumsum(weights / total)
        # Guard the top end against floating-point drift so that a
        # random draw of exactly 1.0-eps never lands out of range.
        self._cumulative[-1] = 1.0
        self._num_users = weights.shape[0]

    @classmethod
    def uniform(cls, num_users: int) -> "NegativeSampler":
        """Uniform distribution over all users."""
        num_users = check_positive_int("num_users", num_users)
        return cls(np.ones(num_users))

    @classmethod
    def from_frequencies(
        cls,
        frequencies: np.ndarray,
        distortion: float = UNIGRAM_DISTORTION,
        smoothing: float = 1.0,
    ) -> "NegativeSampler":
        """Word2vec-style distorted unigram distribution.

        Parameters
        ----------
        frequencies:
            Occurrence count per user (how often the user appears as a
            context member in the corpus).
        distortion:
            The exponent (word2vec uses 0.75).
        smoothing:
            Added to every count so users never observed as context can
            still be drawn as negatives — important because unobserved
            users are exactly the ones the model should push scores
            down for.
        """
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if np.any(frequencies < 0):
            raise TrainingError("frequencies must be non-negative")
        if smoothing < 0:
            raise TrainingError(f"smoothing must be >= 0, got {smoothing}")
        return cls(np.power(frequencies + smoothing, distortion))

    @property
    def num_users(self) -> int:
        """Support size of the distribution."""
        return self._num_users

    def probabilities(self) -> np.ndarray:
        """The normalised sampling distribution (for tests/inspection)."""
        probs = np.diff(self._cumulative, prepend=0.0)
        return probs

    def sample(self, count: int, rng: RandomState) -> np.ndarray:
        """Draw ``count`` user IDs i.i.d. from the distribution."""
        if count < 0:
            raise TrainingError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        draws = rng.random(count)
        return np.searchsorted(self._cumulative, draws, side="right").astype(np.int64)

    def sample_matrix(self, rows: int, cols: int, rng: RandomState) -> np.ndarray:
        """Draw a ``(rows, cols)`` matrix of negatives in one shot."""
        flat = self.sample(rows * cols, rng)
        return flat.reshape(rows, cols)
