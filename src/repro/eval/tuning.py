"""Hyper-parameter selection on the tuning split.

The paper fixes its knobs "based on the empirical study on tuning
set" (α = 0.1, K = 50, L = 50 there; Section V-A2).  This module makes
that step a first-class, reproducible operation: a grid search that
trains one model per parameter combination on the training split and
scores it on the tuning split, never touching the test split.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.baselines.base import InfluenceModel
from repro.data.actionlog import ActionLog
from repro.data.graph import SocialGraph
from repro.errors import EvaluationError
from repro.eval.activation import evaluate_activation
from repro.eval.diffusion import evaluate_diffusion
from repro.eval.metrics import EvaluationResult

ModelFactory = Callable[..., InfluenceModel]


@dataclass(frozen=True)
class TuningTrial:
    """One evaluated parameter combination."""

    params: Mapping[str, object]
    result: EvaluationResult

    def metric(self, name: str) -> float:
        """Value of one metric for this trial."""
        return self.result.as_row()[name]


@dataclass(frozen=True)
class TuningResult:
    """All trials of one grid search, plus the selection."""

    trials: tuple[TuningTrial, ...]
    metric: str

    @property
    def best(self) -> TuningTrial:
        """The trial with the highest selection metric."""
        return max(self.trials, key=lambda t: t.metric(self.metric))

    @property
    def best_params(self) -> Mapping[str, object]:
        """Parameters of the winning trial."""
        return self.best.params

    def table(self) -> str:
        """Fixed-width trial table, best-first."""
        ordered = sorted(
            self.trials, key=lambda t: -t.metric(self.metric)
        )
        lines = [f"{'params':<44}{self.metric:>10}"]
        for trial in ordered:
            label = ", ".join(f"{k}={v}" for k, v in trial.params.items())
            lines.append(f"{label:<44}{trial.metric(self.metric):>10.4f}")
        return "\n".join(lines)


def grid_search(
    factory: ModelFactory,
    param_grid: Mapping[str, Sequence[object]],
    graph: SocialGraph,
    train_log: ActionLog,
    tune_log: ActionLog,
    metric: str = "AUC",
    task: str = "activation",
    predictor_kwargs: Mapping[str, object] | None = None,
) -> TuningResult:
    """Evaluate every combination of ``param_grid`` on the tuning split.

    Parameters
    ----------
    factory:
        Callable building an unfitted model from keyword parameters,
        e.g. ``lambda **p: Inf2vecMethod(Inf2vecConfig(**p), seed=0)``.
    param_grid:
        Mapping from parameter name to the values to try; the search
        covers the full Cartesian product.
    graph, train_log, tune_log:
        The substrate and splits; the model never sees ``tune_log``
        during fitting.
    metric:
        Selection metric (``"AUC"``, ``"MAP"``, ``"P@10"``, ...).
    task:
        ``"activation"`` or ``"diffusion"``.
    predictor_kwargs:
        Extra arguments for ``model.predictor(...)`` (e.g. Monte-Carlo
        budgets for IC-based models).
    """
    if not param_grid:
        raise EvaluationError("param_grid must contain at least one parameter")
    if task not in ("activation", "diffusion"):
        raise EvaluationError(
            f"task must be 'activation' or 'diffusion', got {task!r}"
        )
    names = list(param_grid)
    trials: list[TuningTrial] = []
    for combo in itertools.product(*(param_grid[name] for name in names)):
        params = dict(zip(names, combo))
        model = factory(**params)
        model.fit(graph, train_log)
        predictor = model.predictor(**(predictor_kwargs or {}))
        if task == "activation":
            result = evaluate_activation(predictor, graph, tune_log)
        else:
            result = evaluate_diffusion(predictor, graph.num_nodes, tune_log)
        trials.append(TuningTrial(params=params, result=result))
    tuning = TuningResult(trials=tuple(trials), metric=metric)
    # Validate the metric name eagerly so typos fail loudly.
    tuning.best.metric(metric)
    return tuning
