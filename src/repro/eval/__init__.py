"""Evaluation harness: metrics, task protocols, dataset statistics."""

from repro.eval.activation import (
    ActivationCandidate,
    episode_candidates,
    evaluate_activation,
    iter_test_candidates,
)
from repro.eval.diffusion import (
    PAPER_SEED_FRACTION,
    DiffusionQuery,
    evaluate_diffusion,
    make_query,
)
from repro.eval.curves import (
    PrecisionRecallCurve,
    RocCurve,
    curve_to_text,
    precision_recall_curve,
    roc_curve,
)
from repro.eval.metrics import (
    DEFAULT_PRECISION_CUTOFFS,
    EvaluationResult,
    RankingEvaluator,
    average_precision,
    precision_at_n,
    ranking_auc,
)
from repro.eval.protocol import (
    MultiRunResult,
    SignificanceTest,
    format_table,
    paired_significance,
    repeat_evaluation,
)
from repro.eval.tuning import TuningResult, TuningTrial, grid_search
from repro.eval.stats import (
    PowerLawFit,
    active_friend_cdf,
    active_friend_counts,
    fit_power_law,
    power_law_r_squared,
    spontaneous_share,
)

__all__ = [
    "PrecisionRecallCurve",
    "RocCurve",
    "curve_to_text",
    "precision_recall_curve",
    "roc_curve",
    "ActivationCandidate",
    "episode_candidates",
    "evaluate_activation",
    "iter_test_candidates",
    "PAPER_SEED_FRACTION",
    "DiffusionQuery",
    "evaluate_diffusion",
    "make_query",
    "DEFAULT_PRECISION_CUTOFFS",
    "EvaluationResult",
    "RankingEvaluator",
    "average_precision",
    "precision_at_n",
    "ranking_auc",
    "MultiRunResult",
    "SignificanceTest",
    "format_table",
    "paired_significance",
    "repeat_evaluation",
    "TuningResult",
    "TuningTrial",
    "grid_search",
    "PowerLawFit",
    "active_friend_cdf",
    "active_friend_counts",
    "fit_power_law",
    "power_law_r_squared",
    "spontaneous_share",
]
