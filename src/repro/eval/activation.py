"""Activation-prediction protocol (Section V-B1, following Goyal et al.).

For every test episode we replay the adoption records chronologically.
A user becomes a *candidate* once at least one of their in-neighbours
(friends they watch) has activated.  Candidates split into:

* **positives** — users who later adopt; their influencer set ``S_v``
  is the in-neighbours active *strictly before their own adoption*
  (users who adopt with zero previously-active friends are
  unpredictable from influence and are not candidates, matching the
  protocol's "activated by their neighbours" ground truth);
* **negatives** — users who never adopt but have at least one active
  in-neighbour by the end of the episode; their ``S_v`` is every
  activated in-neighbour.

Each method scores candidates from ``(v, S_v)`` — Eq. 7 for latent
models, Eq. 8 for IC models — and the ranking is scored with
AUC / MAP / P@N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.prediction import InfluencePredictor
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import EvaluationError
from repro.eval.metrics import (
    DEFAULT_PRECISION_CUTOFFS,
    EvaluationResult,
    RankingEvaluator,
)


@dataclass(frozen=True)
class ActivationCandidate:
    """One ``(v, S_v)`` test instance.

    ``active_friends`` is ordered by the friends' activation times
    (earliest first) so the ``Latest`` aggregator is well defined.
    """

    user: int
    active_friends: tuple[int, ...]
    label: int
    item: int


def episode_candidates(
    graph: SocialGraph, episode: DiffusionEpisode
) -> list[ActivationCandidate]:
    """Extract all activation-prediction candidates of one episode."""
    candidates: list[ActivationCandidate] = []
    activation_order: dict[int, int] = {}

    # Positives: replay chronologically.
    for position, user in enumerate(episode.users):
        user = int(user)
        active_friends = [
            (activation_order[int(friend)], int(friend))
            for friend in graph.in_neighbors(user)
            if int(friend) in activation_order
        ]
        if active_friends:
            active_friends.sort()
            candidates.append(
                ActivationCandidate(
                    user=user,
                    active_friends=tuple(f for _, f in active_friends),
                    label=1,
                    item=episode.item,
                )
            )
        activation_order[user] = position

    # Negatives: non-adopters watched by at least one adopter.
    adopters = episode.user_set()
    seen_negatives: set[int] = set()
    for adopter in adopters:
        for follower in graph.out_neighbors(adopter):
            follower = int(follower)
            if follower in adopters or follower in seen_negatives:
                continue
            seen_negatives.add(follower)
            active_friends = sorted(
                (activation_order[int(friend)], int(friend))
                for friend in graph.in_neighbors(follower)
                if int(friend) in activation_order
            )
            candidates.append(
                ActivationCandidate(
                    user=follower,
                    active_friends=tuple(f for _, f in active_friends),
                    label=0,
                    item=episode.item,
                )
            )
    return candidates


def iter_test_candidates(
    graph: SocialGraph, test_log: ActionLog
) -> Iterator[tuple[DiffusionEpisode, list[ActivationCandidate]]]:
    """Candidates per test episode, skipping episodes with none."""
    for episode in test_log:
        candidates = episode_candidates(graph, episode)
        if candidates:
            yield episode, candidates


def evaluate_activation(
    predictor: InfluencePredictor,
    graph: SocialGraph,
    test_log: ActionLog,
    precision_cutoffs: Sequence[int] = DEFAULT_PRECISION_CUTOFFS,
) -> EvaluationResult:
    """Run the full activation-prediction task for one method.

    Each test episode is one MAP query; AUC and P@N pool all candidate
    instances across episodes (see :class:`RankingEvaluator`).
    """
    if len(test_log) == 0:
        raise EvaluationError("test log contains no episodes")
    evaluator = RankingEvaluator(precision_cutoffs=precision_cutoffs)
    for _, candidates in iter_test_candidates(graph, test_log):
        scores = np.asarray(
            [
                predictor.activation_score(c.user, c.active_friends)
                for c in candidates
            ],
            dtype=np.float64,
        )
        labels = np.asarray([c.label for c in candidates], dtype=np.int64)
        evaluator.add_query(scores, labels)
    if evaluator.num_queries == 0:
        raise EvaluationError(
            "no test episode produced activation candidates; the test "
            "split may contain only single-adopter episodes"
        )
    return evaluator.result()
