"""Multi-run evaluation protocol.

The paper reports latent-model results as "the average value of 10
runs" with standard deviations, and marks improvements significant at
p < 0.05.  This module provides:

* :class:`MultiRunResult` — per-metric mean / std over repeated runs,
* :func:`repeat_evaluation` — run a stochastic train+evaluate callable
  several times with derived seeds,
* :func:`paired_significance` — a paired t-test between two methods'
  per-run metric values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import EvaluationError
from repro.eval.metrics import EvaluationResult
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class MultiRunResult:
    """Aggregate of several :class:`EvaluationResult` runs.

    Attributes
    ----------
    runs:
        The individual run results, in run order.
    """

    runs: tuple[EvaluationResult, ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise EvaluationError("MultiRunResult needs at least one run")

    def _metric_values(self, metric: str) -> np.ndarray:
        values = [run.as_row().get(metric) for run in self.runs]
        if any(v is None for v in values):
            available = sorted(self.runs[0].as_row())
            raise EvaluationError(
                f"unknown metric {metric!r}; available: {available}"
            )
        return np.asarray(values, dtype=np.float64)

    def mean(self, metric: str) -> float:
        """Mean of ``metric`` over runs (NaN runs propagate)."""
        return float(self._metric_values(metric).mean())

    def std(self, metric: str) -> float:
        """Sample standard deviation (ddof=1; 0.0 for a single run)."""
        values = self._metric_values(metric)
        if values.shape[0] < 2:
            return 0.0
        return float(values.std(ddof=1))

    def metrics(self) -> list[str]:
        """Metric names available on every run."""
        return list(self.runs[0].as_row())

    def summary(self) -> dict[str, tuple[float, float]]:
        """``{metric: (mean, std)}`` over all runs."""
        return {m: (self.mean(m), self.std(m)) for m in self.metrics()}

    def as_row(self) -> dict[str, float]:
        """Mean-value row in the paper's table layout."""
        return {m: self.mean(m) for m in self.metrics()}


def repeat_evaluation(
    run: Callable[[int], EvaluationResult],
    num_runs: int = 10,
    seed: SeedLike = None,
) -> MultiRunResult:
    """Call ``run(seed_k)`` for ``num_runs`` derived integer seeds.

    ``run`` should train the (stochastic) model with the given seed and
    return its :class:`EvaluationResult` on a *fixed* test split, so
    run-to-run variation reflects model randomness only — the paper's
    protocol for the reported standard deviations.
    """
    if num_runs < 1:
        raise EvaluationError(f"num_runs must be >= 1, got {num_runs}")
    rng = ensure_rng(seed)
    seeds = rng.integers(0, 2**31 - 1, size=num_runs)
    results = tuple(run(int(s)) for s in seeds)
    return MultiRunResult(runs=results)


@dataclass(frozen=True)
class SignificanceTest:
    """Result of a paired comparison between two methods on one metric."""

    metric: str
    mean_difference: float
    t_statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return bool(self.p_value < alpha)


def paired_significance(
    method_a: MultiRunResult,
    method_b: MultiRunResult,
    metric: str = "MAP",
) -> SignificanceTest:
    """Paired t-test of ``method_a - method_b`` on per-run metric values.

    Requires both methods to have been evaluated with the same number
    of runs (ideally the same derived seeds and test split).
    """
    a = method_a._metric_values(metric)
    b = method_b._metric_values(metric)
    if a.shape != b.shape:
        raise EvaluationError(
            f"run counts differ: {a.shape[0]} vs {b.shape[0]}"
        )
    if a.shape[0] < 2:
        raise EvaluationError("paired t-test needs at least 2 runs")
    differences = a - b
    if np.allclose(differences, differences[0]):
        # Zero variance in differences: t-test undefined; report exact
        # outcome (p=0 for a real difference, p=1 for identical runs).
        identical = bool(np.allclose(differences, 0.0))
        return SignificanceTest(
            metric=metric,
            mean_difference=float(differences.mean()),
            t_statistic=float("inf") if not identical else 0.0,
            p_value=1.0 if identical else 0.0,
        )
    t_stat, p_value = scipy_stats.ttest_rel(a, b)
    return SignificanceTest(
        metric=metric,
        mean_difference=float(differences.mean()),
        t_statistic=float(t_stat),
        p_value=float(p_value),
    )


def format_table(
    rows: Mapping[str, EvaluationResult | MultiRunResult],
    metrics: Sequence[str] = ("AUC", "MAP", "P@10", "P@50", "P@100"),
) -> str:
    """Render method→result rows as the paper's fixed-width table."""
    header = ["Method".ljust(12)] + [m.rjust(8) for m in metrics]
    lines = ["".join(header)]
    for name, result in rows.items():
        row = result.as_row()
        cells = [name.ljust(12)]
        for metric in metrics:
            value = row.get(metric, float("nan"))
            cells.append(f"{value:8.4f}")
        lines.append("".join(cells))
    return "\n".join(lines)
