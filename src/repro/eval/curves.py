"""ROC and precision–recall curves.

The paper reports scalar AUC (ROC, Bradley [32]) and cites Saito &
Rehmsmeier [33] on PR curves being the informative view under class
imbalance.  These helpers produce the full curves behind those
scalars — useful for plotting, for choosing operating points, and for
the property tests that tie the curve implementations back to the
scalar metrics in :mod:`repro.eval.metrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EvaluationError
from repro.eval.metrics import _validate


@dataclass(frozen=True)
class RocCurve:
    """ROC curve points and its exact area.

    Attributes
    ----------
    false_positive_rate, true_positive_rate:
        Curve coordinates, starting at (0, 0) and ending at (1, 1),
        with one step per distinct score threshold.
    thresholds:
        Score threshold producing each point (descending;
        ``+inf`` for the (0, 0) origin).
    """

    false_positive_rate: np.ndarray
    true_positive_rate: np.ndarray
    thresholds: np.ndarray

    @property
    def auc(self) -> float:
        """Area under the curve by trapezoidal integration."""
        return float(np.trapezoid(self.true_positive_rate, self.false_positive_rate))


@dataclass(frozen=True)
class PrecisionRecallCurve:
    """Precision–recall curve points and average precision."""

    precision: np.ndarray
    recall: np.ndarray
    thresholds: np.ndarray

    @property
    def average_precision(self) -> float:
        """Step-interpolated area (identical to
        :func:`repro.eval.metrics.average_precision` up to ties)."""
        recall_steps = np.diff(self.recall, prepend=0.0)
        return float(np.sum(self.precision * recall_steps))


def _sorted_by_score(scores, labels) -> tuple[np.ndarray, np.ndarray]:
    scores, labels = _validate(np.asarray(scores), np.asarray(labels))
    if labels.sum() == 0 or labels.sum() == labels.shape[0]:
        raise EvaluationError(
            "curves need at least one positive and one negative label"
        )
    order = np.argsort(-scores, kind="stable")
    return scores[order], labels[order].astype(np.float64)


def roc_curve(scores, labels) -> RocCurve:
    """ROC curve with tie handling (one point per distinct score)."""
    sorted_scores, sorted_labels = _sorted_by_score(scores, labels)
    # Collapse ties: cumulative counts evaluated at the last index of
    # each distinct score.
    distinct = np.where(np.diff(sorted_scores))[0]
    cut_indices = np.concatenate([distinct, [sorted_scores.shape[0] - 1]])

    tps = np.cumsum(sorted_labels)[cut_indices]
    fps = (cut_indices + 1) - tps
    num_pos = sorted_labels.sum()
    num_neg = sorted_labels.shape[0] - num_pos

    tpr = np.concatenate([[0.0], tps / num_pos])
    fpr = np.concatenate([[0.0], fps / num_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_indices]])
    return RocCurve(
        false_positive_rate=fpr, true_positive_rate=tpr, thresholds=thresholds
    )


def precision_recall_curve(scores, labels) -> PrecisionRecallCurve:
    """Precision–recall curve (one point per distinct score)."""
    sorted_scores, sorted_labels = _sorted_by_score(scores, labels)
    distinct = np.where(np.diff(sorted_scores))[0]
    cut_indices = np.concatenate([distinct, [sorted_scores.shape[0] - 1]])

    tps = np.cumsum(sorted_labels)[cut_indices]
    predicted_positive = cut_indices + 1.0
    num_pos = sorted_labels.sum()

    precision = tps / predicted_positive
    recall = tps / num_pos
    return PrecisionRecallCurve(
        precision=precision,
        recall=recall,
        thresholds=sorted_scores[cut_indices],
    )


def curve_to_text(
    x: np.ndarray, y: np.ndarray, width: int = 50, height: int = 14
) -> str:
    """ASCII rendering of a monotone curve (terminal-friendly plots)."""
    if x.shape[0] < 2:
        raise EvaluationError("need at least 2 points to draw a curve")
    grid = [[" "] * width for _ in range(height)]
    x_span = float(x.max() - x.min()) or 1.0
    y_span = float(y.max() - y.min()) or 1.0
    for xi, yi in zip(x, y):
        col = int((xi - x.min()) / x_span * (width - 1))
        row = height - 1 - int((yi - y.min()) / y_span * (height - 1))
        grid[row][col] = "*"
    return "\n".join("".join(row) for row in grid)
