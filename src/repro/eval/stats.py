"""Dataset statistics behind Figures 1–3 of the paper.

* Figures 1–2 plot the frequency distribution of users acting as
  influence-pair *sources* / *targets*, which follows a power law on
  both Digg and Flickr.  :func:`fit_power_law` estimates the exponent
  with the discrete maximum-likelihood estimator (Clauset et al.) and
  :func:`power_law_r_squared` measures straight-line fit quality in
  log–log space.

* Figure 3 plots the CDF of "how many of my friends had already
  performed the action when I did" — the observation motivating the
  global user-similarity context (CDF(0) is 0.7 on Digg, 0.5 on
  Flickr).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import EvaluationError


# ----------------------------------------------------------------------
# Power-law fitting (Figures 1–2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PowerLawFit:
    """Discrete power-law fit of a frequency sample.

    Attributes
    ----------
    exponent:
        MLE estimate of ``alpha`` in ``p(x) ∝ x^-alpha`` for
        ``x >= x_min``.
    x_min:
        Lower cut-off used for the fit.
    r_squared:
        Coefficient of determination of the log–log linear regression
        over the empirical frequency histogram (straight-line quality;
        close to 1 for power-law data).
    num_samples:
        Number of observations at or above ``x_min``.
    """

    exponent: float
    x_min: int
    r_squared: float
    num_samples: int


def fit_power_law(values: Sequence[int], x_min: int = 1) -> PowerLawFit:
    """Fit a discrete power law to positive integer observations.

    Uses the continuous-approximation MLE
    ``alpha = 1 + n / sum(ln(x_i / (x_min - 0.5)))`` which is accurate
    for discrete data when ``x_min`` is small, plus a log–log R² as a
    goodness-of-straight-line summary.
    """
    if x_min < 1:
        raise EvaluationError(f"x_min must be >= 1, got {x_min}")
    data = np.asarray([v for v in values if v >= x_min], dtype=np.float64)
    if data.shape[0] < 2:
        raise EvaluationError(
            f"need at least 2 observations >= x_min={x_min}, got {data.shape[0]}"
        )
    n = data.shape[0]
    exponent = 1.0 + n / np.log(data / (x_min - 0.5)).sum()
    return PowerLawFit(
        exponent=float(exponent),
        x_min=x_min,
        r_squared=power_law_r_squared(data),
        num_samples=int(n),
    )


def power_law_r_squared(values: Sequence[int], bins_per_decade: int = 4) -> float:
    """R² of the log–log regression over the *log-binned* histogram.

    Raw (frequency, count) histograms of power-law data have extremely
    noisy tails (most tail frequencies occur once), so the straight-
    line quality is measured the standard way: observations are
    aggregated into logarithmically spaced bins, each bin's count is
    normalised by its width (a density), and the regression runs over
    ``log10(density)`` vs ``log10(bin centre)``.
    """
    if bins_per_decade < 1:
        raise EvaluationError(
            f"bins_per_decade must be >= 1, got {bins_per_decade}"
        )
    data = np.asarray(values, dtype=np.float64)
    data = data[data >= 1]
    if data.shape[0] < 2:
        raise EvaluationError("need at least 2 positive observations")
    maximum = data.max()
    if maximum <= 1:
        return 1.0  # degenerate: single frequency value, trivially linear
    num_edges = max(3, int(np.ceil(np.log10(maximum) * bins_per_decade)) + 1)
    edges = np.logspace(0, np.log10(maximum + 1), num_edges)
    counts, edges = np.histogram(data, bins=edges)
    widths = np.diff(edges)
    centres = np.sqrt(edges[:-1] * edges[1:])
    occupied = counts > 0
    if occupied.sum() < 3:
        return 1.0  # too few occupied bins to falsify linearity
    log_x = np.log10(centres[occupied])
    log_y = np.log10(counts[occupied] / widths[occupied])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = np.sum((log_y - predicted) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    if total == 0:
        return 1.0
    return float(1.0 - residual / total)


# ----------------------------------------------------------------------
# Active-friend CDF (Figure 3)
# ----------------------------------------------------------------------


def active_friend_counts(graph: SocialGraph, episode: DiffusionEpisode) -> np.ndarray:
    """Per adoption, how many in-neighbours had already adopted.

    Replays the episode chronologically; the count for adopter ``v`` is
    the number of ``v``'s in-neighbours active strictly before ``v``'s
    own adoption — the x-variable of Figure 3.
    """
    counts = np.empty(len(episode), dtype=np.int64)
    active: set[int] = set()
    for index, user in enumerate(episode.users):
        user = int(user)
        counts[index] = sum(
            1 for friend in graph.in_neighbors(user) if int(friend) in active
        )
        active.add(user)
    return counts


def active_friend_cdf(
    graph: SocialGraph, log: ActionLog, max_count: int = 10
) -> dict[int, float]:
    """Figure 3's CDF: ``P(adoption happened after <= x active friends)``.

    Returns ``{x: CDF(x)}`` for ``x in 0..max_count``.  ``CDF(0)`` is
    the *spontaneous share* — 0.7 on Digg and 0.5 on Flickr in the
    paper.
    """
    if max_count < 0:
        raise EvaluationError(f"max_count must be >= 0, got {max_count}")
    all_counts: list[np.ndarray] = [
        active_friend_counts(graph, episode) for episode in log
    ]
    if not all_counts:
        raise EvaluationError("action log has no episodes")
    counts = np.concatenate(all_counts)
    if counts.shape[0] == 0:
        raise EvaluationError("action log has no adoptions")
    total = counts.shape[0]
    return {
        x: float(np.count_nonzero(counts <= x) / total)
        for x in range(max_count + 1)
    }


def spontaneous_share(graph: SocialGraph, log: ActionLog) -> float:
    """``CDF(0)`` — fraction of adoptions with zero previously-active friends."""
    return active_friend_cdf(graph, log, max_count=0)[0]
