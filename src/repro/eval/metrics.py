"""Ranking metrics: AUC, MAP, and precision@N (Section V-B1).

The paper evaluates every method by ranking candidate users by their
predicted likelihood score:

* **AUC** — computed with the ranking scheme of Bradley [32] rather
  than a decision threshold: the probability that a uniformly random
  positive outranks a uniformly random negative, with ties counting
  one half.
* **MAP** — mean over queries (test episodes) of average precision,
  the informative choice under heavy class imbalance [33].
* **P@N** — precision among the top-N ranked candidates, for
  N ∈ {10, 50, 100}.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.stats import rankdata

from repro.errors import EvaluationError

#: The paper's P@N cut-offs.
DEFAULT_PRECISION_CUTOFFS = (10, 50, 100)


def _validate(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.ndim != 1 or labels.ndim != 1:
        raise EvaluationError("scores and labels must be 1-D")
    if scores.shape != labels.shape:
        raise EvaluationError(
            f"scores shape {scores.shape} != labels shape {labels.shape}"
        )
    if not np.all(np.isfinite(scores)):
        raise EvaluationError("scores must be finite")
    unique = np.unique(labels)
    if unique.size and not np.all(np.isin(unique, (0, 1))):
        raise EvaluationError(f"labels must be binary 0/1, found {unique[:5]}")
    return scores, labels.astype(bool)


def ranking_auc(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Tie-aware ROC AUC via the Mann–Whitney rank statistic.

    Returns ``nan`` when the labels are single-class (AUC undefined).
    """
    scores, labels = _validate(np.asarray(scores), np.asarray(labels))
    num_pos = int(labels.sum())
    num_neg = int(labels.shape[0] - num_pos)
    if num_pos == 0 or num_neg == 0:
        return float("nan")
    ranks = rankdata(scores)  # average ranks handle ties as 0.5 credit
    pos_rank_sum = ranks[labels].sum()
    u_statistic = pos_rank_sum - num_pos * (num_pos + 1) / 2.0
    return float(u_statistic / (num_pos * num_neg))


def average_precision(scores: Sequence[float], labels: Sequence[int]) -> float:
    """Average precision of one ranked query.

    ``AP = (1 / #pos) * sum_k precision@k * [item k is positive]``
    with items sorted by descending score (ties broken by input order,
    which keeps the metric deterministic).  Returns ``nan`` with no
    positives.
    """
    scores, labels = _validate(np.asarray(scores), np.asarray(labels))
    num_pos = int(labels.sum())
    if num_pos == 0:
        return float("nan")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    cumulative_hits = np.cumsum(sorted_labels)
    ranks = np.arange(1, sorted_labels.shape[0] + 1)
    precision_at_hits = cumulative_hits[sorted_labels] / ranks[sorted_labels]
    return float(precision_at_hits.sum() / num_pos)


def precision_at_n(scores: Sequence[float], labels: Sequence[int], n: int) -> float:
    """Fraction of positives among the ``n`` highest-scored items.

    When fewer than ``n`` items exist the denominator stays ``n``
    (missing slots count as misses), matching the strict top-N reading
    used in the paper's tables.
    """
    if n <= 0:
        raise EvaluationError(f"n must be positive, got {n}")
    scores, labels = _validate(np.asarray(scores), np.asarray(labels))
    if scores.shape[0] == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")[:n]
    return float(labels[order].sum() / n)


@dataclass(frozen=True)
class EvaluationResult:
    """The paper's five-metric row: AUC, MAP, P@10, P@50, P@100.

    Attributes
    ----------
    auc:
        Pooled ranking AUC over every candidate instance.
    map:
        Mean of per-query (per-episode) average precision.
    precision_at:
        Mapping from cut-off N to pooled precision@N.
    num_queries:
        Number of queries contributing to MAP.
    num_candidates:
        Total pooled candidate instances.
    num_positives:
        Total pooled positive instances.
    """

    auc: float
    map: float
    precision_at: Mapping[int, float]
    num_queries: int = 0
    num_candidates: int = 0
    num_positives: int = 0

    def as_row(self) -> dict[str, float]:
        """Flatten to the table-row layout used in the experiments."""
        row = {"AUC": self.auc, "MAP": self.map}
        for n in sorted(self.precision_at):
            row[f"P@{n}"] = self.precision_at[n]
        return row

    def __str__(self) -> str:
        parts = [f"AUC={self.auc:.4f}", f"MAP={self.map:.4f}"]
        parts += [
            f"P@{n}={self.precision_at[n]:.4f}" for n in sorted(self.precision_at)
        ]
        return " ".join(parts)


@dataclass
class RankingEvaluator:
    """Accumulates per-query rankings and produces an :class:`EvaluationResult`.

    AUC and P@N are computed on the *pooled* candidate list (the paper
    ranks "all the candidate users"); MAP averages per-query average
    precision, skipping queries without positives (their AP is
    undefined).
    """

    precision_cutoffs: Sequence[int] = DEFAULT_PRECISION_CUTOFFS
    _all_scores: list[np.ndarray] = field(default_factory=list)
    _all_labels: list[np.ndarray] = field(default_factory=list)
    _per_query_ap: list[float] = field(default_factory=list)
    _num_empty: int = 0

    def add_query(self, scores: Sequence[float], labels: Sequence[int]) -> None:
        """Record one query's ranked candidates.

        A query with no candidates contributes nothing to the pooled
        metrics (there is nothing to rank) but still counts toward
        :attr:`num_queries` — every recorded query is accounted for.
        """
        scores, labels = _validate(np.asarray(scores), np.asarray(labels))
        if scores.shape[0] == 0:
            self._num_empty += 1
            return
        self._all_scores.append(scores)
        self._all_labels.append(labels.astype(np.int64))
        ap = average_precision(scores, labels.astype(np.int64))
        if not np.isnan(ap):
            self._per_query_ap.append(ap)

    @property
    def num_queries(self) -> int:
        """Number of queries recorded so far — empty ones included."""
        return len(self._all_scores) + self._num_empty

    def result(self) -> EvaluationResult:
        """Final five-metric row over everything recorded so far."""
        if not self._all_scores:
            raise EvaluationError(
                "no queries with candidates recorded; nothing to evaluate"
            )
        pooled_scores = np.concatenate(self._all_scores)
        pooled_labels = np.concatenate(self._all_labels)
        precision = {
            n: precision_at_n(pooled_scores, pooled_labels, n)
            for n in self.precision_cutoffs
        }
        mean_ap = (
            float(np.mean(self._per_query_ap)) if self._per_query_ap else float("nan")
        )
        return EvaluationResult(
            auc=ranking_auc(pooled_scores, pooled_labels),
            map=mean_ap,
            precision_at=precision,
            num_queries=self.num_queries,
            num_candidates=int(pooled_scores.shape[0]),
            num_positives=int(pooled_labels.sum()),
        )
