"""Diffusion-prediction protocol (Section V-B2, following Bourigault et al.).

For each test episode the first 5% of adopters (at least one) act as
the *seed set*; the task is to identify the remaining 95% among all
other users in the network.  Unlike activation prediction this probes
high-order (multi-hop) propagation:

* latent models score every user with the Eq. 7 aggregation over the
  seeds, directly from the learned representations;
* IC-based models estimate per-user activation frequency by
  Monte-Carlo simulation from the seeds (5,000 runs in the paper).

Seeds themselves are excluded from the ranked candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.prediction import InfluencePredictor
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.errors import EvaluationError
from repro.eval.metrics import (
    DEFAULT_PRECISION_CUTOFFS,
    EvaluationResult,
    RankingEvaluator,
)

#: The paper's seed fraction: "the first 5% users as the seed users".
PAPER_SEED_FRACTION = 0.05


@dataclass(frozen=True)
class DiffusionQuery:
    """One test episode reduced to seeds + ground-truth adopters."""

    item: int
    seeds: tuple[int, ...]
    ground_truth: frozenset[int]


def make_query(
    episode: DiffusionEpisode, seed_fraction: float = PAPER_SEED_FRACTION
) -> DiffusionQuery | None:
    """Split one episode into seeds (first 5%) and ground truth (rest).

    Returns ``None`` for episodes too small to produce both a seed and
    at least one ground-truth adopter.
    """
    if not 0 < seed_fraction < 1:
        raise EvaluationError(
            f"seed_fraction must lie in (0, 1), got {seed_fraction}"
        )
    size = len(episode)
    if size < 2:
        return None
    num_seeds = max(1, int(size * seed_fraction))
    if num_seeds >= size:
        num_seeds = size - 1
    users = episode.users
    return DiffusionQuery(
        item=episode.item,
        seeds=tuple(int(u) for u in users[:num_seeds]),
        ground_truth=frozenset(int(u) for u in users[num_seeds:]),
    )


def evaluate_diffusion(
    predictor: InfluencePredictor,
    num_users: int,
    test_log: ActionLog,
    seed_fraction: float = PAPER_SEED_FRACTION,
    precision_cutoffs: Sequence[int] = DEFAULT_PRECISION_CUTOFFS,
) -> EvaluationResult:
    """Run the full diffusion-prediction task for one method.

    Each test episode is one MAP query; the candidate list of a query
    is every non-seed user in the network, labelled 1 when they adopt
    after the seeds.
    """
    if len(test_log) == 0:
        raise EvaluationError("test log contains no episodes")
    evaluator = RankingEvaluator(precision_cutoffs=precision_cutoffs)
    for episode in test_log:
        query = make_query(episode, seed_fraction)
        if query is None:
            continue
        scores = np.asarray(
            predictor.diffusion_scores(list(query.seeds)), dtype=np.float64
        )
        if scores.shape != (num_users,):
            raise EvaluationError(
                f"predictor returned shape {scores.shape}, "
                f"expected ({num_users},)"
            )
        mask = np.ones(num_users, dtype=bool)
        mask[list(query.seeds)] = False
        labels = np.zeros(num_users, dtype=np.int64)
        labels[list(query.ground_truth)] = 1
        evaluator.add_query(scores[mask], labels[mask])
    if evaluator.num_queries == 0:
        raise EvaluationError(
            "no test episode was large enough for diffusion prediction"
        )
    return evaluator.result()
