"""Nestable span tracing for training-stage latency attribution.

``Tracer.span("train.epoch")`` opens a timed span; spans opened inside
its ``with`` block become children, so a run produces a tree such as::

    fit
    ├── contexts
    └── epoch (x N)
        └── sgd

Each span records wall-clock start, monotonic duration, free-form
attributes, and an ``ok``/``error`` status (exceptions propagate but
are stamped on the span first).  The tree exports as JSONL (one line
per span, depth-first, with a ``path`` breadcrumb) and renders as an
ASCII flame summary through :func:`repro.viz.ascii.span_flame_text`.

The disabled counterpart, :data:`NULL_TRACER`, hands out one shared
no-op span so instrumented code pays a single attribute read when
tracing is off — the same zero-overhead contract as
:data:`repro.obs.metrics.NULL_REGISTRY`.

Span *stacks* are thread-local: spans opened by worker threads nest
among themselves and attach to the tracer's root list, never to
another thread's open span.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Iterator

from contextlib import contextmanager

import numpy as np

from repro.ckpt.atomic import atomic_write_text

__all__ = ["HeadSampler", "Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed, attributed node of the span tree."""

    __slots__ = (
        "name",
        "attributes",
        "start_unix",
        "status",
        "error",
        "children",
        "_start",
        "_end",
    )

    def __init__(self, name: str, attributes: dict[str, object]):
        self.name = name
        self.attributes = attributes
        # Absolute epoch time is the point here — spans are correlated
        # with external logs by wall clock, not measured by it (the
        # duration below uses perf_counter).
        self.start_unix = time.time()  # lint: disable=no-wallclock-timing
        self.status = "ok"
        self.error: str | None = None
        self.children: list["Span"] = []
        self._start = time.perf_counter()
        self._end: float | None = None

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (in-flight spans read 'so far')."""
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    @property
    def finished(self) -> bool:
        """Whether the span's ``with`` block has exited."""
        return self._end is not None

    def set_attribute(self, key: str, value: object) -> None:
        """Attach/overwrite one attribute on the span."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, object]:
        """JSON-ready nested representation (children inlined)."""
        return {
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_s": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration:.4f}s, "
            f"{len(self.children)} children, {self.status})"
        )


class Tracer:
    """Collects a forest of nested spans."""

    enabled = True

    def __init__(self) -> None:
        self._roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a child span of the innermost open span (or a new root).

        The span is yielded so callers can attach attributes computed
        inside the block.  An exception exits the span with
        ``status="error"`` and the exception stamped on it, then
        propagates unchanged.
        """
        current = Span(name, dict(attributes))
        stack = self._stack()
        if stack:
            stack[-1].children.append(current)
        else:
            with self._lock:
                self._roots.append(current)
        stack.append(current)
        try:
            yield current
        except BaseException as exc:
            current.status = "error"
            current.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            current._end = time.perf_counter()
            stack.pop()

    @property
    def roots(self) -> list[Span]:
        """Top-level spans in creation order."""
        with self._lock:
            return list(self._roots)

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first iteration over every span in the forest."""
        pending = self.roots[::-1]
        while pending:
            span = pending.pop()
            yield span
            pending.extend(span.children[::-1])

    def find(self, name: str) -> Span | None:
        """First span (depth-first) with the given name, or ``None``."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def to_dicts(self) -> list[dict[str, object]]:
        """The whole forest as nested JSON-ready dicts."""
        return [root.to_dict() for root in self.roots]

    def write_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per span, depth-first with a path breadcrumb.

        Each line carries ``name``, the ``/``-joined ancestor ``path``,
        ``depth``, timing, status, and attributes — a flat file any log
        pipeline can ingest without understanding the nesting.  The
        file is written atomically, so an interrupted export never
        leaves a torn JSONL behind.
        """
        path = Path(path)
        lines = []
        stack: list[tuple[Span, tuple[str, ...]]] = [
            (root, ()) for root in self.roots[::-1]
        ]
        while stack:
            span, ancestors = stack.pop()
            breadcrumb = ancestors + (span.name,)
            lines.append(
                json.dumps(
                    {
                        "name": span.name,
                        "path": "/".join(breadcrumb),
                        "depth": len(ancestors),
                        "start_unix": span.start_unix,
                        "duration_s": span.duration,
                        "status": span.status,
                        "error": span.error,
                        "attributes": dict(span.attributes),
                    },
                    sort_keys=True,
                    default=str,
                )
            )
            stack.extend((child, breadcrumb) for child in span.children[::-1])
        return atomic_write_text(
            path, "\n".join(lines) + ("\n" if lines else "")
        )

    def flame_text(self, width: int = 72) -> str:
        """ASCII flame summary of the forest (via :mod:`repro.viz.ascii`)."""
        from repro.viz.ascii import span_flame_text

        return span_flame_text(self.to_dicts(), width=width)

    def reset(self) -> None:
        """Drop every recorded span (open spans keep nesting correctly)."""
        with self._lock:
            self._roots.clear()


class HeadSampler:
    """Head-based trace sampling decisions from a seeded Generator.

    "Head-based" means the keep/drop decision is made *before* the
    operation runs, so an unsampled query pays nothing beyond one
    comparison (and, for fractional rates, one uniform draw).  The
    draw comes from an explicitly seeded ``numpy`` Generator per the
    repository's no-global-rng invariant, behind a lock so concurrent
    serving threads can share one sampler.

    ``rate`` is the expected fraction of operations sampled; 0 never
    samples (and never draws), 1 always samples (and never draws).
    """

    __slots__ = ("rate", "_rng", "_lock")

    def __init__(self, rate: float, seed: int = 0):
        rate = float(rate)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._lock = threading.Lock()

    def sample(self) -> bool:
        """Decide whether to sample the next operation."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        with self._lock:
            return float(self._rng.random()) < self.rate

    def __repr__(self) -> str:
        return f"HeadSampler(rate={self.rate})"


class _NullSpan:
    """Shared no-op span: context manager + attribute sink."""

    __slots__ = ()
    name = "null"
    status = "ok"
    children: list = []
    attributes: dict = {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every span() is the same no-op span."""

    enabled = False

    def span(self, name: str, **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    @property
    def roots(self) -> list[Span]:
        return []

    def iter_spans(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> Span | None:
        return None

    def to_dicts(self) -> list[dict[str, object]]:
        return []

    def reset(self) -> None:
        pass


#: Shared disabled tracer — the default everywhere.
NULL_TRACER = NullTracer()
