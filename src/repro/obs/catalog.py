"""The telemetry catalog: every metric and span name, declared once.

The observability pipeline has three places a name can live: the
instrument site (``metrics.counter("serve.queries", ...)``), the
Prometheus exposition / JSONL trace it flows into, and the fnmatch
patterns the regress gate (:mod:`repro.obs.regress`) budgets against
``benchmarks/baselines/``.  A typo in any one of them fails *silently*
— the counter simply never matches the gate, or the gate guards a leaf
no benchmark writes.  This module is the single source of truth the
``telemetry-contract`` project rule checks both ends against:

* :data:`METRIC_CATALOG` — every instrument and span name used in
  ``src/`` or ``benchmarks/``, with its kind and allowed label set.
  Names containing ``*`` are families covering f-string sites whose
  interpolated segment is open-ended (``diffusion.{model}.rounds``).
* :data:`GATED_BENCH_LEAVES` — per report file, the flattened numeric
  leaves of the checked-in baselines that regress policies are allowed
  to reference; every ``MetricPolicy`` pattern must match at least one.

Both tables are **pure literals** so the static-analysis rule can read
them without importing the module; the declarations are also validated
at import time (:func:`validate_catalog`) and round-tripped against
the real baselines by ``tests/obs/test_catalog.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Sequence

__all__ = [
    "GATED_BENCH_LEAVES",
    "METRIC_CATALOG",
    "MetricSpec",
    "catalog_names",
    "find_spec",
    "validate_catalog",
]


@dataclass(frozen=True)
class MetricSpec:
    """One declared telemetry name: kind, allowed labels, description."""

    name: str  #: Literal name or ``fnmatch`` family (``diffusion.*.rounds``).
    kind: str  #: ``counter`` | ``gauge`` | ``histogram`` | ``summary`` | ``span``.
    labels: tuple[str, ...] = ()  #: Allowed label / span-attribute keys.
    description: str = ""

    def matches(self, name: str) -> bool:
        """Whether ``name`` is this spec (exact or family match)."""
        return self.name == name or fnmatchcase(name, self.name)


#: Every telemetry name the project emits.  Kept sorted by kind, then
#: name, so drift shows up as a one-line diff.
METRIC_CATALOG: tuple[MetricSpec, ...] = (
    # -- counters ------------------------------------------------------
    MetricSpec("ckpt.bytes_written", "counter", (), "total checkpoint bytes written"),
    MetricSpec("ckpt.pruned", "counter", (), "checkpoints removed by retention"),
    MetricSpec("ckpt.resumes", "counter", (), "training runs resumed from a checkpoint"),
    MetricSpec("ckpt.saves", "counter", (), "checkpoints written"),
    MetricSpec("contexts.cache.hits", "counter", (), "episode-network cache hits"),
    MetricSpec("contexts.cache.misses", "counter", (), "episode-network cache rebuilds"),
    MetricSpec("contexts.episodes", "counter", (), "episodes processed"),
    MetricSpec("contexts.tuples", "counter", (), "(u, C_u^i) tuples generated"),
    MetricSpec("contexts.walk.dead_ends", "counter", (), "forced restarts at successor-less nodes"),
    MetricSpec("contexts.walk.restarts", "counter", (), "probabilistic jumps back to the start"),
    MetricSpec("contexts.walk.steps", "counter", (), "recorded walk steps"),
    MetricSpec("diffusion.*.simulations", "counter", (), "cascade simulations run, per model"),
    MetricSpec("negatives.collisions", "counter", (), "negatives initially colliding with excluded users"),
    MetricSpec("negatives.resample_rounds", "counter", (), "rejection-resample iterations"),
    MetricSpec("serve.queries", "counter", ("direction", "path"), "top-k influence queries served"),
    MetricSpec("serve.query.errors", "counter", ("direction", "error"), "failed top-k influence queries"),
    MetricSpec("sketch.lazy_evaluations", "counter", (), "CELF re-evaluations during max-coverage selection"),
    MetricSpec("sketch.rr_nodes", "counter", (), "total nodes across sampled RR sets"),
    MetricSpec("sketch.rr_sets", "counter", (), "reverse-reachable sets sampled"),
    MetricSpec("sketch.selections", "counter", (), "max-coverage seed selections run"),
    MetricSpec("train.clip.rows", "counter", (), "embedding rows rescaled by max_norm"),
    MetricSpec("train.epochs", "counter", (), "completed training epochs"),
    MetricSpec("train.worker.examples", "counter", ("worker",), "positive observations trained, per worker"),
    # -- gauges --------------------------------------------------------
    MetricSpec("train.epoch.examples_per_sec", "gauge", ("epoch",), "positive observations per second"),
    MetricSpec("train.epoch.learning_rate", "gauge", ("epoch",), "annealed SGD step"),
    MetricSpec("train.epoch.loss", "gauge", ("epoch",), "mean per-positive loss"),
    MetricSpec("train.worker.contexts", "gauge", ("worker",), "contexts materialised per worker shard (0 = streaming)"),
    MetricSpec("train.worker.epoch_seconds", "gauge", ("worker", "epoch"), "in-worker wall-clock per epoch"),
    MetricSpec("train.worker.loss", "gauge", ("worker", "epoch"), "mean per-positive loss of the worker's shard"),
    # -- histograms ----------------------------------------------------
    MetricSpec("bench.workload.seconds", "histogram", ("workload",), "per-operation benchmark latency"),
    MetricSpec("ckpt.write_seconds", "histogram", (), "atomic checkpoint write latency"),
    MetricSpec("contexts.length", "histogram", (), "full context sizes (local + global)"),
    MetricSpec("contexts.walk_length", "histogram", (), "local random-walk context sizes"),
    MetricSpec("diffusion.*.rounds", "histogram", (), "rounds until quiescence, per model"),
    MetricSpec("diffusion.*.spread", "histogram", (), "activated-set sizes, per model"),
    MetricSpec("serve.query.seconds", "histogram", ("direction", "path"), "per-query latency"),
    MetricSpec("sketch.rr_size", "histogram", (), "RR-set sizes"),
    # -- summaries -----------------------------------------------------
    MetricSpec("bench.workload.latency", "summary", ("workload",), "per-operation benchmark latency quantiles (seconds)"),
    MetricSpec("serve.query.latency", "summary", ("direction", "path"), "live per-query latency quantiles (seconds)"),
    # -- spans ---------------------------------------------------------
    MetricSpec("bench.mc_greedy", "span", ("preset",), "benchmark: Monte-Carlo greedy selection"),
    MetricSpec("bench.ris", "span", ("preset",), "benchmark: RIS selection"),
    MetricSpec("bench.ris_pruned", "span", ("preset",), "benchmark: embedding-pruned RIS selection"),
    MetricSpec("bench.train_embedding", "span", ("preset",), "benchmark: embedding training for pruning"),
    MetricSpec("contexts", "span", ("num_contexts",), "context-corpus generation"),
    MetricSpec("epoch", "span", ("epoch", "loss", "examples", "examples_per_sec", "workers"), "one training epoch"),
    MetricSpec("experiment.*", "span", ("scale",), "one named experiment run (CLI)"),
    MetricSpec("fig9.contexts", "span", ("dim", "seconds"), "fig9: context generation stage"),
    MetricSpec("fig9.emb_ic_iteration", "span", ("dim", "seconds"), "fig9: Emb-IC training iteration"),
    MetricSpec("fig9.iteration", "span", ("dim", "seconds"), "fig9: Inf2vec training iteration"),
    MetricSpec("fit", "span", ("engine",), "full training run"),
    MetricSpec("hogwild.fit", "span", ("engine", "workers"), "hogwild parallel training run"),
    MetricSpec("partial_fit", "span", ("engine",), "incremental training run"),
    MetricSpec("serve.batch.*", "span", ("num_queries", "k", "path"), "batched top-k query, per direction"),
    MetricSpec("serve.precompute.*", "span", ("k",), "top-k index precompute, per direction"),
    MetricSpec("serve.query", "span", ("direction", "user", "k", "path", "latency_s"), "sampled single top-k query trace"),
    MetricSpec("sgd", "span", (), "SGD pass over the context corpus"),
    MetricSpec("sketch.generate", "span", ("count",), "batched RR-set generation"),
    MetricSpec("sketch.schedule", "span", ("num_seeds", "epsilon", "lower_bound", "num_sketches", "capped"), "IMM two-phase sampling schedule"),
    MetricSpec("sketch.select", "span", ("num_seeds", "num_sketches"), "CELF max-coverage seed selection"),
    MetricSpec("train_epoch", "span", ("engine", "repeat"), "benchmark: one timed training epoch"),
)

#: Flattened numeric leaves of the checked-in ``benchmarks/baselines/``
#: reports that regress policies may gate.  Names containing ``*`` are
#: families (one per workload / preset / worker count).  Every
#: ``MetricPolicy`` pattern in :data:`repro.obs.regress.DEFAULT_POLICIES`
#: must fnmatch at least one entry here, and every entry must resolve
#: against the checked-in baseline file (tests/obs/test_catalog.py).
GATED_BENCH_LEAVES: dict[str, tuple[str, ...]] = {
    "BENCH_serving.json": (
        "workloads.*.p50_ms",
        "workloads.*.p99_ms",
        "workloads.*.qps",
    ),
    "BENCH_training.json": (
        "context_generation.batched_seconds",
        "context_generation.speedup",
        "train_epoch.batched_seconds",
        "train_epoch.speedup",
        "parallel.workers.*.examples_per_sec",
    ),
    "BENCH_influence_max.json": (
        "presets.*.methods.*.selection_seconds",
        "presets.*.methods.*.spread",
        "presets.*.speedup_ris_vs_mc",
    ),
}


def catalog_names(kind: str | None = None) -> tuple[str, ...]:
    """Declared names (optionally restricted to one instrument kind)."""
    return tuple(
        spec.name
        for spec in METRIC_CATALOG
        if kind is None or spec.kind == kind
    )


def find_spec(name: str, kind: str | None = None) -> MetricSpec | None:
    """The spec covering ``name`` (exact wins over family), or ``None``."""
    family: MetricSpec | None = None
    for spec in METRIC_CATALOG:
        if kind is not None and spec.kind != kind:
            continue
        if spec.name == name:
            return spec
        if family is None and spec.matches(name):
            family = spec
    return family


def validate_catalog(catalog: Sequence[MetricSpec] | None = None) -> None:
    """Raise ``ValueError`` on duplicate (name, kind) declarations."""
    seen: set[tuple[str, str]] = set()
    for spec in METRIC_CATALOG if catalog is None else catalog:
        key = (spec.name, spec.kind)
        if key in seen:
            raise ValueError(f"duplicate catalog entry: {spec.name} ({spec.kind})")
        seen.add(key)


validate_catalog()
