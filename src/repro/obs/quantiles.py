"""Streaming quantile estimation for live telemetry.

Serving a query stream at rate means latency quantiles must be
available *while the process runs*, without retaining every sample —
the post-hoc ``sorted(latencies)`` approach of the benchmark drivers
does not survive into a long-lived ``repro serve`` process.  Two
bounded-memory estimators live here, both feeding the ``Summary``
instrument in :mod:`repro.obs.metrics`:

* :class:`P2Quantile` — the Jain & Chlamtac P² algorithm: five markers
  per tracked quantile, O(1) memory and update cost, fully
  deterministic (no RNG at all).  Exact until five observations have
  arrived, a parabolic-interpolation estimate afterwards.
* :class:`ReservoirSampler` — a fixed-capacity uniform reservoir
  (Vitter's algorithm R) driven by an explicitly seeded
  ``numpy.random.Generator`` per the repository's ``no-global-rng``
  invariant.  *Exact* for any quantile while the stream fits in the
  reservoir, an unbiased sample estimate beyond it; count/sum/min/max
  are always exact.

The reservoir is the default ``Summary`` backend because benchmark
acceptance compares live quantiles against exact post-hoc ones — below
capacity the two are identical by construction.  P² is the choice when
per-label memory must stay constant regardless of traffic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import TelemetryError

__all__ = [
    "DEFAULT_RESERVOIR_CAPACITY",
    "P2Quantile",
    "ReservoirSampler",
    "check_quantile",
]

#: Default reservoir size: exact quantiles for the first 4096
#: observations per label set, ~32 KiB of float64 at saturation.
DEFAULT_RESERVOIR_CAPACITY = 4096


def check_quantile(q: float) -> float:
    """Validate that ``q`` is a quantile in ``[0, 1]`` and return it."""
    q = float(q)
    if not 0.0 <= q <= 1.0:
        raise TelemetryError(f"quantile must be in [0, 1], got {q}")
    return q


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    Jain & Chlamtac (1985): five markers whose heights track the
    minimum, the target quantile, the midpoints, and the maximum.
    Marker heights move by parabolic (fallback linear) interpolation as
    observations arrive, so the estimate needs no stored samples and no
    randomness.  Until five observations exist the exact order
    statistic is returned.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments")

    def __init__(self, q: float):
        self.q = check_quantile(q)
        self._heights: list[float] = []
        self._positions = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        self._desired = np.array(
            [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        )
        self._increments = np.array([0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0])

    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        if len(self._heights) < 5:
            return len(self._heights)
        return int(self._positions[4])

    def observe(self, value: float) -> None:
        """Fold one observation into the estimate."""
        value = float(value)
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights = self._heights
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while value >= heights[cell + 1]:
                cell += 1
        self._positions[cell + 1 :] += 1.0
        self._desired += self._increments
        for i in (1, 2, 3):
            self._adjust(i)

    def _adjust(self, i: int) -> None:
        """Move marker ``i`` one step toward its desired position."""
        heights = self._heights
        positions = self._positions
        delta = self._desired[i] - positions[i]
        if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
            delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
        ):
            step = 1.0 if delta >= 1.0 else -1.0
            candidate = self._parabolic(i, step)
            if heights[i - 1] < candidate < heights[i + 1]:
                heights[i] = candidate
            else:
                heights[i] = self._linear(i, step)
            positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step)
            * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step)
            * (h[i] - h[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h = self._heights
        n = self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float | None:
        """The current quantile estimate (``None`` before any data)."""
        if not self._heights:
            return None
        if len(self._heights) < 5:
            # Exact order statistic over the few samples seen so far.
            rank = self.q * (len(self._heights) - 1)
            lower = int(np.floor(rank))
            upper = int(np.ceil(rank))
            weight = rank - lower
            return (
                self._heights[lower] * (1.0 - weight)
                + self._heights[upper] * weight
            )
        return self._heights[2]

    def __repr__(self) -> str:
        return f"P2Quantile(q={self.q}, count={self.count})"


class ReservoirSampler:
    """Fixed-capacity uniform sample of a stream, plus exact moments.

    Vitter's algorithm R over an explicitly seeded Generator: the first
    ``capacity`` observations are kept verbatim (quantiles are then
    *exact*); beyond that each new observation replaces a uniformly
    chosen slot with probability ``capacity / count``, keeping the
    reservoir a uniform sample of the whole stream.  ``count``,
    ``total``, ``minimum``, and ``maximum`` are tracked exactly
    regardless of capacity.
    """

    __slots__ = ("capacity", "_rng", "_values", "_count", "_total", "_min", "_max")

    def __init__(
        self, capacity: int = DEFAULT_RESERVOIR_CAPACITY, seed: int = 0
    ):
        capacity = int(capacity)
        if capacity <= 0:
            raise TelemetryError(
                f"reservoir capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._values = np.empty(capacity, dtype=np.float64)
        self._count = 0
        self._total = 0.0
        self._min = np.inf
        self._max = -np.inf

    @property
    def count(self) -> int:
        """Exact number of observations seen."""
        return self._count

    @property
    def total(self) -> float:
        """Exact sum of every observation."""
        return self._total

    @property
    def minimum(self) -> float | None:
        """Exact minimum (``None`` before any data)."""
        return None if self._count == 0 else float(self._min)

    @property
    def maximum(self) -> float | None:
        """Exact maximum (``None`` before any data)."""
        return None if self._count == 0 else float(self._max)

    @property
    def exact(self) -> bool:
        """Whether quantiles are currently exact (stream fits in reservoir)."""
        return self._count <= self.capacity

    def observe(self, value: float) -> None:
        """Fold one observation into the reservoir."""
        value = float(value)
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._count < self.capacity:
            self._values[self._count] = value
        else:
            slot = int(self._rng.integers(0, self._count + 1))
            if slot < self.capacity:
                self._values[slot] = value
        self._count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Fold a batch of observations, one at a time."""
        for value in values:
            self.observe(value)

    def samples(self) -> np.ndarray:
        """Copy of the retained sample values (unordered)."""
        return self._values[: min(self._count, self.capacity)].copy()

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (``None`` before any data).

        Linear-interpolated over the retained sample — identical to
        ``np.percentile`` over the full stream while :attr:`exact`.
        """
        q = check_quantile(q)
        if self._count == 0:
            return None
        return float(np.quantile(self.samples(), q))

    def quantiles(self, qs: Sequence[float]) -> list[float | None]:
        """Batch :meth:`quantile` for several targets."""
        return [self.quantile(q) for q in qs]

    def __repr__(self) -> str:
        return (
            f"ReservoirSampler(capacity={self.capacity}, "
            f"count={self._count}, exact={self.exact})"
        )
