"""Run manifests: metrics + spans + config fingerprint for one run.

A :class:`RunRecorder` bundles the two telemetry sinks
(:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.tracing.Tracer`) with run identity — a fingerprinted
config (e.g. :class:`repro.core.inf2vec.Inf2vecConfig`), dataset
statistics, and free-form annotations — and serialises everything as a
single *run manifest* JSON.  The manifest is the artifact future
``BENCH_*.json`` entries cite: any perf claim can point at the manifest
of the run that produced it.

Opting in
---------
Telemetry is off by default (the ambient run is :data:`NULL_RUN`, whose
sinks are the shared null registry/tracer).  Two ways to turn it on:

* scope-based — wrap any code in ``with recording(run):``; every
  instrumented library call inside the scope records into ``run``;
* config-based — set ``Inf2vecConfig(telemetry=True)``; the model
  creates its own recorder per ``fit()`` (exposed as
  ``model.run_recorder``) unless an ambient scope is already active.

``recording`` scopes nest (innermost wins) and are process-global, not
thread-local: one orchestrating scope is visible to worker threads,
which matches the registry's thread-safe increments.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

from repro.ckpt.atomic import atomic_write_text
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracing import Tracer, NULL_TRACER

__all__ = [
    "RunRecorder",
    "NULL_RUN",
    "recording",
    "active_run",
    "active_metrics",
    "resolve_run",
    "config_fingerprint",
    "MANIFEST_VERSION",
]

#: Schema version stamped into every manifest.
MANIFEST_VERSION = 1


def config_fingerprint(config: object) -> tuple[dict[str, object], str]:
    """``(payload, fingerprint)`` for any config-like object.

    Dataclasses are flattened with :func:`dataclasses.asdict` (nested
    configs included), mappings are copied, anything else falls back to
    its ``repr``.  The fingerprint is the first 16 hex chars of the
    SHA-256 of the canonical (sorted-key) JSON — stable across key
    order and processes, so equal configs always share a fingerprint.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload: dict[str, object] = dataclasses.asdict(config)
    elif isinstance(config, Mapping):
        payload = dict(config)
    else:
        payload = {"repr": repr(config)}
    canonical = json.dumps(payload, sort_keys=True, default=str)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return payload, digest


class RunRecorder:
    """Live telemetry sinks plus identity for one run.

    Parameters
    ----------
    name:
        Label stamped into the manifest (e.g. ``"inf2vec.fit"``).
    """

    enabled = True

    def __init__(self, name: str = "run"):
        self.name = name
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        # Manifest creation is stamped with absolute epoch time so runs
        # can be ordered across machines; no duration is derived from it.
        self.created_unix = time.time()  # lint: disable=no-wallclock-timing
        self._config_payload: dict[str, object] | None = None
        self._fingerprint: str | None = None
        self._dataset: dict[str, object] = {}
        self._annotations: dict[str, object] = {}

    # ------------------------------------------------------------------
    # Recording surface
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: object):
        """Shorthand for ``self.tracer.span(...)``."""
        return self.tracer.span(name, **attributes)

    def set_config(self, config: object) -> None:
        """Fingerprint and attach the run's config (last call wins)."""
        self._config_payload, self._fingerprint = config_fingerprint(config)

    def set_dataset(self, **stats: object) -> None:
        """Merge dataset statistics (num_users, num_episodes, ...)."""
        self._dataset.update(stats)

    def annotate(self, **fields: object) -> None:
        """Merge free-form annotations (seed, git rev, host, ...)."""
        self._annotations.update(fields)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def manifest(self) -> dict[str, object]:
        """The JSON-ready run manifest combining all recorded state."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "name": self.name,
            "created_unix": self.created_unix,
            "config": {
                "values": self._config_payload,
                "fingerprint": self._fingerprint,
            },
            "dataset": dict(self._dataset),
            "annotations": dict(self._annotations),
            "metrics": self.metrics.snapshot(),
            "spans": self.tracer.to_dicts(),
        }

    def write(self, path: str | Path) -> Path:
        """Atomically serialise :meth:`manifest` to ``path`` and return it.

        A killed run can therefore never leave a half-written manifest
        that poisons later tooling: either the previous complete file
        survives or the new complete one is installed.
        """
        return atomic_write_text(
            path, json.dumps(self.manifest(), indent=2, default=str) + "\n"
        )

    def write_trace(self, path: str | Path) -> Path:
        """Write the span forest as JSONL (see ``Tracer.write_jsonl``)."""
        return self.tracer.write_jsonl(path)

    @staticmethod
    def load_manifest(path: str | Path) -> dict[str, object]:
        """Load a manifest written by :meth:`write`."""
        return json.loads(Path(path).read_text())

    def __repr__(self) -> str:
        return f"RunRecorder(name={self.name!r}, metrics={len(self.metrics.names())})"


class _NullRunRecorder:
    """The disabled recorder: null sinks, every mutation a no-op."""

    enabled = False
    name = "null"
    metrics = NULL_REGISTRY
    tracer = NULL_TRACER

    def span(self, name: str, **attributes: object):
        return NULL_TRACER.span(name, **attributes)

    def set_config(self, config: object) -> None:
        pass

    def set_dataset(self, **stats: object) -> None:
        pass

    def annotate(self, **fields: object) -> None:
        pass

    def manifest(self) -> dict[str, object]:
        return {}

    def __repr__(self) -> str:
        return "NullRunRecorder()"


#: Shared disabled recorder — the ambient default.
NULL_RUN = _NullRunRecorder()

#: Stack of active recorders; the innermost ``recording`` scope wins.
_ACTIVE: list[RunRecorder] = []


@contextmanager
def recording(run: RunRecorder) -> Iterator[RunRecorder]:
    """Make ``run`` the ambient recorder for the duration of the scope."""
    _ACTIVE.append(run)
    try:
        yield run
    finally:
        _ACTIVE.pop()


def active_run() -> RunRecorder:
    """The innermost active recorder, or :data:`NULL_RUN` when none is."""
    return _ACTIVE[-1] if _ACTIVE else NULL_RUN  # type: ignore[return-value]


def active_metrics() -> MetricsRegistry:
    """The active recorder's registry (null registry when disabled)."""
    return active_run().metrics


def resolve_run(telemetry: bool = False, name: str = "run") -> RunRecorder:
    """Recorder resolution used by instrumented entry points.

    An ambient ``recording`` scope always wins; otherwise a fresh
    recorder is created when the caller opted in via ``telemetry``,
    and :data:`NULL_RUN` is returned when it did not.
    """
    run = active_run()
    if run.enabled:
        return run
    if telemetry:
        return RunRecorder(name=name)
    return NULL_RUN  # type: ignore[return-value]
