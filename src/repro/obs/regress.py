"""Perf-regression gate over persisted benchmark reports.

The serving, training, and influence-maximisation benchmark drivers
persist machine-readable reports (``BENCH_serving.json``,
``BENCH_training.json``, ``BENCH_influence_max.json``) at the
repository root.  Checked-in copies under ``benchmarks/baselines/``
are the agreed working points; this module compares a fresh run
against them with per-metric relative thresholds and turns "the scan
path got 2x slower" into a non-zero exit status instead of a silently
drifting number.

Policies are fnmatch patterns over *flattened* dotted paths of the
report's numeric leaves (``workloads.single_scan.p50_ms``), each with
a direction — ``lower`` for latencies and timings, ``higher`` for
throughput — and a ``max_regression`` relative budget.  Leaves no
policy matches are ignored, so reports may grow new fields without
breaking the gate; a leaf present in the baseline but missing from the
current report *is* a finding (the benchmark stopped measuring it).

Run as ``python -m repro.obs.regress`` from the repository root after
the benches, or with ``--report-only`` in CI jobs that want the table
without the gate.  Exit status: 0 clean, 1 regressions found, 2 usage
errors (missing or unreadable report files).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterator, Mapping, Sequence

__all__ = [
    "DEFAULT_BASELINE_DIR",
    "DEFAULT_POLICIES",
    "Finding",
    "MetricPolicy",
    "REPORT_FILES",
    "compare_reports",
    "flatten_numeric",
    "format_findings",
    "main",
]

#: Benchmark report files the gate knows about (repo-root relative).
REPORT_FILES = (
    "BENCH_serving.json",
    "BENCH_training.json",
    "BENCH_influence_max.json",
)

#: Where the agreed-upon baseline copies live (repo-root relative).
DEFAULT_BASELINE_DIR = "benchmarks/baselines"


@dataclass(frozen=True)
class MetricPolicy:
    """Relative-regression budget for metrics matching ``pattern``.

    ``direction`` says which way is good: ``"lower"`` metrics (latency,
    seconds) regress when the current value exceeds baseline by more
    than ``max_regression`` (relative); ``"higher"`` metrics (qps,
    speedup) regress when current falls below baseline by more than
    ``max_regression``.
    """

    pattern: str
    direction: str
    max_regression: float

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher"):
            raise ValueError(
                f"direction must be 'lower' or 'higher', got {self.direction!r}"
            )
        if self.max_regression <= 0:
            raise ValueError(
                f"max_regression must be positive, got {self.max_regression}"
            )

    def matches(self, path: str) -> bool:
        """Whether this policy governs the flattened metric ``path``."""
        return fnmatchcase(path, self.pattern)

    def regression(self, baseline: float, current: float) -> float:
        """Signed relative regression (positive = worse) of ``current``.

        Degenerate baselines (zero or sign flips) are treated as
        maximally suspicious only when the current value is worse in
        the policy's direction.
        """
        if baseline == 0:
            if self.direction == "lower":
                return float("inf") if current > 0 else 0.0
            return float("inf") if current < 0 else 0.0
        change = (current - baseline) / abs(baseline)
        return change if self.direction == "lower" else -change


@dataclass(frozen=True)
class Finding:
    """One compared metric: its values, budget, and verdict."""

    report: str
    path: str
    baseline: float
    current: float | None
    regression: float
    max_regression: float

    @property
    def regressed(self) -> bool:
        """Whether this metric blew its budget (or disappeared)."""
        return self.current is None or self.regression > self.max_regression


#: Relative budgets per report.  Latency thresholds sit below 1.0 so a
#: genuine 2x slowdown (= +100% relative) always trips the gate, but
#: far enough above run-to-run noise on shared CI runners that the
#: checked-in baselines pass cleanly.  Throughput/speedup budgets are
#: fractions of the baseline rate lost.
DEFAULT_POLICIES: Mapping[str, Sequence[MetricPolicy]] = {
    "BENCH_serving.json": (
        MetricPolicy("workloads.*.p50_ms", "lower", 0.75),
        MetricPolicy("workloads.*.p99_ms", "lower", 0.90),
        MetricPolicy("workloads.*.qps", "higher", 0.50),
    ),
    "BENCH_training.json": (
        MetricPolicy("context_generation.batched_seconds", "lower", 0.75),
        MetricPolicy("train_epoch.batched_seconds", "lower", 0.75),
        MetricPolicy("*.speedup", "higher", 0.50),
        # Hogwild scaling: gate absolute per-count throughput, not the
        # efficiency ratios — those track the host's core count, which
        # the baseline can't promise.
        MetricPolicy("parallel.workers.*.examples_per_sec", "higher", 0.50),
    ),
    "BENCH_influence_max.json": (
        MetricPolicy("presets.*.methods.*.selection_seconds", "lower", 0.75),
        MetricPolicy("presets.*.speedup_ris_vs_mc", "higher", 0.50),
        # Quality floor: MC-evaluated spread of each method's seed set
        # (seeded evaluator, so drift here means the selection itself
        # changed for the worse, not simulation noise).
        MetricPolicy("presets.*.methods.*.spread", "higher", 0.25),
    ),
}


def flatten_numeric(
    report: Mapping[str, object], prefix: str = ""
) -> dict[str, float]:
    """Flatten nested dicts to ``a.b.c -> float`` for numeric leaves.

    Non-numeric leaves (strings, lists, nulls) are skipped — the gate
    only reasons about measurements.  Booleans are excluded despite
    being ints.
    """
    flat: dict[str, float] = {}
    for key, value in report.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            flat.update(flatten_numeric(value, path))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def compare_reports(
    baseline: Mapping[str, object],
    current: Mapping[str, object],
    policies: Sequence[MetricPolicy],
    report: str = "",
) -> list[Finding]:
    """Compare every policy-governed metric of two benchmark reports.

    Only baseline leaves matched by some policy are compared; a matched
    leaf missing from the current report yields a finding with
    ``current=None`` (which counts as regressed).
    """
    baseline_flat = flatten_numeric(baseline)
    current_flat = flatten_numeric(current)
    findings: list[Finding] = []
    for path in sorted(baseline_flat):
        policy = next((p for p in policies if p.matches(path)), None)
        if policy is None:
            continue
        base_value = baseline_flat[path]
        if path not in current_flat:
            findings.append(
                Finding(report, path, base_value, None, float("inf"),
                        policy.max_regression)
            )
            continue
        current_value = current_flat[path]
        findings.append(
            Finding(
                report,
                path,
                base_value,
                current_value,
                policy.regression(base_value, current_value),
                policy.max_regression,
            )
        )
    return findings


def _iter_report_pairs(
    baseline_dir: Path, current_dir: Path, reports: Sequence[str]
) -> Iterator[tuple[str, Path, Path]]:
    for name in reports:
        yield name, baseline_dir / name, current_dir / name


def format_findings(findings: Sequence[Finding]) -> str:
    """Render the comparison as an aligned plain-text table."""
    lines = [
        f"{'metric':<48}{'baseline':>12}{'current':>12}"
        f"{'change':>9}{'budget':>9}  verdict"
    ]
    for f in findings:
        metric = f"{f.report}:{f.path}"
        if f.current is None:
            current = "missing"
            change = "-"
        else:
            current = f"{f.current:.4g}"
            change = f"{f.regression:+.0%}"
        verdict = "REGRESSED" if f.regressed else "ok"
        lines.append(
            f"{metric:<48}{f.baseline:>12.4g}{current:>12}"
            f"{change:>9}{f.max_regression:>8.0%}  {verdict}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.obs.regress``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description=(
            "Compare fresh BENCH_*.json reports against checked-in "
            "baselines with per-metric relative-regression budgets."
        ),
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path(DEFAULT_BASELINE_DIR),
        help="directory holding the agreed baseline reports",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path("."),
        help="directory holding the freshly produced reports",
    )
    parser.add_argument(
        "--report",
        action="append",
        choices=REPORT_FILES,
        help="limit the gate to one report file (repeatable)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0 on regressions",
    )
    args = parser.parse_args(argv)

    reports = tuple(args.report) if args.report else REPORT_FILES
    findings: list[Finding] = []
    for name, baseline_path, current_path in _iter_report_pairs(
        args.baseline_dir, args.current_dir, reports
    ):
        if not baseline_path.is_file():
            print(f"error: baseline report missing: {baseline_path}")
            return 2
        if not current_path.is_file():
            print(f"error: current report missing: {current_path}")
            return 2
        try:
            baseline = json.loads(baseline_path.read_text())
            current = json.loads(current_path.read_text())
        except json.JSONDecodeError as exc:
            print(f"error: unreadable report for {name}: {exc}")
            return 2
        findings.extend(
            compare_reports(
                baseline, current, DEFAULT_POLICIES.get(name, ()), report=name
            )
        )

    print(format_findings(findings))
    regressed = [f for f in findings if f.regressed]
    if regressed:
        print(
            f"\n{len(regressed)} of {len(findings)} gated metrics regressed"
            + (" (report-only: not failing)" if args.report_only else "")
        )
        return 0 if args.report_only else 1
    print(f"\nall {len(findings)} gated metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
