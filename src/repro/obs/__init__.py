"""repro.obs — training telemetry: metrics, span tracing, run manifests.

Three pieces, all opt-in and zero-overhead when off:

* :mod:`repro.obs.metrics` — labelled counters/gauges/fixed-bucket
  histograms behind a thread-safe :class:`MetricsRegistry` (the shared
  :data:`NULL_REGISTRY` is the disabled default);
* :mod:`repro.obs.tracing` — nestable ``span()`` context managers
  producing an exportable span tree (:data:`NULL_TRACER` when off);
* :mod:`repro.obs.run` — :class:`RunRecorder` combining both with a
  config fingerprint into a run-manifest JSON, plus the ambient
  ``with recording(run):`` opt-in scope.

Quickstart::

    from repro.obs import RunRecorder, recording

    run = RunRecorder(name="my-experiment")
    with recording(run):
        model.fit(graph, log)          # instrumented paths record into run
    run.write("run_manifest.json")
    print(run.tracer.flame_text())
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    TelemetryError,
)
from repro.obs.run import (
    NULL_RUN,
    RunRecorder,
    active_metrics,
    active_run,
    config_fingerprint,
    recording,
    resolve_run,
)
from repro.obs.tracing import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TelemetryError",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunRecorder",
    "NULL_RUN",
    "recording",
    "active_run",
    "active_metrics",
    "resolve_run",
    "config_fingerprint",
]
