"""repro.obs — live telemetry: metrics, tracing, exposition, gating.

All opt-in and zero-overhead when off:

* :mod:`repro.obs.metrics` — labelled counters/gauges/fixed-bucket
  histograms/streaming-quantile summaries behind a thread-safe
  :class:`MetricsRegistry` (the shared :data:`NULL_REGISTRY` is the
  disabled default);
* :mod:`repro.obs.quantiles` — the bounded-memory estimators
  (:class:`P2Quantile`, :class:`ReservoirSampler`) feeding
  :class:`Summary`;
* :mod:`repro.obs.tracing` — nestable ``span()`` context managers
  producing an exportable span tree (:data:`NULL_TRACER` when off),
  plus :class:`HeadSampler` for seeded head-based span sampling;
* :mod:`repro.obs.export` — Prometheus-text exposition rendering, the
  :class:`PeriodicExporter` snapshot thread, and flush-on-exit hooks;
* :mod:`repro.obs.run` — :class:`RunRecorder` combining metrics and
  tracing with a config fingerprint into a run-manifest JSON, plus the
  ambient ``with recording(run):`` opt-in scope;
* :mod:`repro.obs.regress` — the perf-regression gate over persisted
  ``BENCH_*.json`` reports (``python -m repro.obs.regress``).

Quickstart::

    from repro.obs import RunRecorder, recording

    run = RunRecorder(name="my-experiment")
    with recording(run):
        model.fit(graph, log)          # instrumented paths record into run
    run.write("run_manifest.json")
    print(run.tracer.flame_text())
"""

from repro.obs.export import (
    PeriodicExporter,
    on_process_exit,
    render_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Summary,
    TelemetryError,
)
from repro.obs.quantiles import P2Quantile, ReservoirSampler
from repro.obs.run import (
    NULL_RUN,
    RunRecorder,
    active_metrics,
    active_run,
    config_fingerprint,
    recording,
    resolve_run,
)
from repro.obs.tracing import NULL_TRACER, HeadSampler, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TelemetryError",
    "P2Quantile",
    "ReservoirSampler",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "HeadSampler",
    "PeriodicExporter",
    "on_process_exit",
    "render_prometheus",
    "RunRecorder",
    "NULL_RUN",
    "recording",
    "active_run",
    "active_metrics",
    "resolve_run",
    "config_fingerprint",
]
