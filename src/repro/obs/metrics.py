"""Process-local metrics registry: counters, gauges, histograms, summaries.

The registry is the numeric half of the :mod:`repro.obs` telemetry
layer (spans being the other half, see :mod:`repro.obs.tracing`).
Instruments are *labelled*: one ``Counter`` object holds a value per
label set, so ``registry.gauge("train.epoch.loss").set(l, epoch=3)``
keeps every epoch's loss addressable in one instrument.

Design contract (see DESIGN.md, "Observability"):

* **Null by default, zero overhead.**  Instrumented library code never
  talks to a live registry unless the caller opted in.  The shared
  :data:`NULL_REGISTRY` answers ``enabled == False`` and hands out a
  single no-op instrument, so the hot-path guard is one attribute
  read; per-step bookkeeping (e.g. restart counting inside the
  batched random walk) must additionally sit behind an
  ``if metrics.enabled:`` check so the disabled path does no extra
  arithmetic.
* **Thread-safe increments.**  All mutations of one registry go
  through a single registry-wide lock; ``snapshot()`` therefore sees a
  consistent cut even while worker threads increment counters.
* **Fixed-bucket histograms.**  Buckets are declared at creation time
  and observations are binned with ``searchsorted`` — bucket ``i``
  counts values in ``(buckets[i-1], buckets[i]]`` and the final
  overflow bin counts values above the last edge.
* **Streaming summaries.**  A ``Summary`` keeps bounded-memory live
  quantiles per label set (reservoir or P² backend, see
  :mod:`repro.obs.quantiles`) so a long-running server answers
  "what is p99 right now?" without retaining every sample.
"""

from __future__ import annotations

import threading
import zlib
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import TelemetryError
from repro.obs.quantiles import (
    DEFAULT_RESERVOIR_CAPACITY,
    P2Quantile,
    ReservoirSampler,
    check_quantile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Summary",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "TelemetryError",
    "WALK_LENGTH_BUCKETS",
    "CONTEXT_LENGTH_BUCKETS",
    "ROUND_BUCKETS",
    "SPREAD_BUCKETS",
    "DEFAULT_SUMMARY_QUANTILES",
]


#: Walk/context-length histogram edges: the paper's budgets are L = 50
#: with an L·α = 5 local share, so the edges bracket both components.
WALK_LENGTH_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Full-context-length edges (L defaults to 50; larger sweeps go to 200).
CONTEXT_LENGTH_BUCKETS = (0.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0)

#: Diffusion-round edges: cascades on the synthetic presets are shallow.
ROUND_BUCKETS = (0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0)

#: Cascade-size edges for IC/LT activated-set histograms.
SPREAD_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)

#: Default target quantiles rendered by ``Summary`` snapshots.
DEFAULT_SUMMARY_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    """Canonical, hashable form of a label set (values stringified)."""
    if not labels:
        return ()
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def _labels_text(key: tuple[tuple[str, str], ...]) -> str:
    """Render a canonical label key as ``"k1=v1,k2=v2"`` (``""`` if bare)."""
    return ",".join(f"{name}={value}" for name, value in key)


class _Instrument:
    """Base of all live instruments; mutation goes through the registry lock."""

    kind = "instrument"

    def __init__(self, name: str, description: str, lock: threading.Lock):
        self.name = name
        self.description = description
        self._lock = lock

    def _sample_dicts(self) -> dict[str, object]:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> dict[str, object]:
        """JSON-ready snapshot of this instrument."""
        with self._lock:
            samples = self._sample_dicts()
        return {
            "type": self.kind,
            "description": self.description,
            "samples": samples,
        }


class Counter(_Instrument):
    """Monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, description: str, lock: threading.Lock):
        super().__init__(name, description, lock)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        """Add ``amount`` (must be >= 0) to the labelled value."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current value for the label set (0.0 if never incremented)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return float(sum(self._values.values()))

    def _sample_dicts(self) -> dict[str, object]:
        return {_labels_text(key): value for key, value in self._values.items()}


class Gauge(_Instrument):
    """Last-written value per label set (can move both ways)."""

    kind = "gauge"

    def __init__(self, name: str, description: str, lock: threading.Lock):
        super().__init__(name, description, lock)
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        """Record ``value`` for the label set, replacing any previous one."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float | None:
        """Last recorded value for the label set (``None`` if unset)."""
        with self._lock:
            return self._values.get(_label_key(labels))

    def _sample_dicts(self) -> dict[str, object]:
        return {_labels_text(key): value for key, value in self._values.items()}


class _HistogramState:
    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int):
        self.counts = np.zeros(num_buckets + 1, dtype=np.int64)
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram per label set.

    Bucket ``i`` counts observations ``v`` with
    ``buckets[i-1] < v <= buckets[i]`` (the first bucket takes
    everything ``<= buckets[0]``); the trailing overflow bin counts
    ``v > buckets[-1]``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str,
        lock: threading.Lock,
        buckets: Sequence[float],
    ):
        super().__init__(name, description, lock)
        edges = np.asarray(sorted(float(b) for b in buckets), dtype=np.float64)
        if edges.size == 0:
            raise TelemetryError(f"histogram {self.name!r} needs >= 1 bucket")
        if np.unique(edges).size != edges.size:
            raise TelemetryError(
                f"histogram {name!r} has duplicate bucket edges: {buckets}"
            )
        self._buckets = edges
        self._states: dict[tuple[tuple[str, str], ...], _HistogramState] = {}

    @property
    def buckets(self) -> tuple[float, ...]:
        """The (sorted) bucket upper edges."""
        return tuple(self._buckets.tolist())

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        self.observe_many((value,), **labels)

    def observe_many(self, values: Iterable[float], **labels: object) -> None:
        """Record a batch of observations in one vectorised pass."""
        array = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.float64,
        )
        if array.size == 0:
            return
        indices = np.searchsorted(self._buckets, array, side="left")
        binned = np.bincount(indices, minlength=self._buckets.size + 1)
        key = _label_key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(self._buckets.size)
            state.counts += binned
            state.total += float(array.sum())
            state.count += int(array.size)

    def count(self, **labels: object) -> int:
        """Number of observations for the label set."""
        with self._lock:
            state = self._states.get(_label_key(labels))
            return state.count if state is not None else 0

    def quantile(self, q: float, **labels: object) -> float | None:
        """Bucket-interpolated ``q``-quantile for the label set.

        Works like Prometheus' ``histogram_quantile``: the quantile is
        located in the first bucket whose cumulative count covers it
        and linearly interpolated between that bucket's edges (the
        first bucket interpolates from 0, observations in the overflow
        bin report the last finite edge).  Resolution is therefore the
        bucket width; use a :class:`Summary` when tighter estimates
        are needed.  ``None`` before any observation.
        """
        q = check_quantile(q)
        with self._lock:
            state = self._states.get(_label_key(labels))
            if state is None or state.count == 0:
                return None
            counts = state.counts.copy()
        cumulative = np.cumsum(counts)
        target = q * cumulative[-1]
        bucket = int(np.searchsorted(cumulative, target, side="left"))
        if bucket >= self._buckets.size:
            return float(self._buckets[-1])
        upper = float(self._buckets[bucket])
        lower = float(self._buckets[bucket - 1]) if bucket else min(0.0, upper)
        below = float(cumulative[bucket - 1]) if bucket else 0.0
        inside = float(counts[bucket])
        if inside == 0.0:
            return upper
        return lower + (upper - lower) * (target - below) / inside

    def _sample_dicts(self) -> dict[str, object]:
        samples: dict[str, object] = {}
        for key, state in self._states.items():
            samples[_labels_text(key)] = {
                "buckets": self._buckets.tolist(),
                "counts": state.counts.tolist(),
                "count": state.count,
                "sum": state.total,
                "mean": state.total / state.count if state.count else 0.0,
            }
        return samples


#: Summary estimator backends (see :mod:`repro.obs.quantiles`).
_SUMMARY_BACKENDS = ("reservoir", "p2")


class _P2SummaryState:
    """One P² marker set per target quantile, plus exact moments."""

    __slots__ = ("estimators", "count", "total", "minimum", "maximum")

    def __init__(self, quantiles: Sequence[float]):
        self.estimators = {q: P2Quantile(q) for q in quantiles}
        self.count = 0
        self.total = 0.0
        self.minimum = np.inf
        self.maximum = -np.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        for estimator in self.estimators.values():
            estimator.observe(value)

    def quantile(self, q: float) -> float | None:
        estimator = self.estimators.get(q)
        if estimator is None:
            raise TelemetryError(
                f"quantile {q} is not tracked by this p2 summary "
                f"(tracked: {sorted(self.estimators)})"
            )
        return estimator.value()

    @property
    def exact(self) -> bool:
        return self.count < 5


class Summary(_Instrument):
    """Streaming quantiles + exact count/sum/min/max per label set.

    The default backend is a seeded fixed-capacity reservoir
    (:class:`~repro.obs.quantiles.ReservoirSampler`): any quantile can
    be asked for, and answers are *exact* until the stream outgrows the
    reservoir.  ``backend="p2"`` switches to constant-memory P²
    estimation of the declared target quantiles only.  Reservoir seeds
    are derived deterministically from the instrument name and label
    set, so summaries obey the no-global-rng invariant and reproduce
    across processes.
    """

    kind = "summary"

    def __init__(
        self,
        name: str,
        description: str,
        lock: threading.Lock,
        quantiles: Sequence[float] = DEFAULT_SUMMARY_QUANTILES,
        capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        backend: str = "reservoir",
    ):
        super().__init__(name, description, lock)
        targets = tuple(sorted(check_quantile(q) for q in quantiles))
        if not targets:
            raise TelemetryError(f"summary {name!r} needs >= 1 target quantile")
        if len(set(targets)) != len(targets):
            raise TelemetryError(
                f"summary {name!r} has duplicate target quantiles: {quantiles}"
            )
        if backend not in _SUMMARY_BACKENDS:
            raise TelemetryError(
                f"summary {name!r} backend must be one of "
                f"{_SUMMARY_BACKENDS}, got {backend!r}"
            )
        self._quantiles = targets
        self._capacity = int(capacity)
        self._backend = backend
        self._states: dict[
            tuple[tuple[str, str], ...], ReservoirSampler | _P2SummaryState
        ] = {}

    @property
    def quantile_targets(self) -> tuple[float, ...]:
        """The declared target quantiles (sorted)."""
        return self._quantiles

    @property
    def backend(self) -> str:
        """The estimator backend (``"reservoir"`` or ``"p2"``)."""
        return self._backend

    def _state(self, key: tuple[tuple[str, str], ...]):
        state = self._states.get(key)
        if state is None:
            if self._backend == "p2":
                state = _P2SummaryState(self._quantiles)
            else:
                # Deterministic per-series seed: no global RNG, and the
                # same (instrument, labels) pair reservoir-samples the
                # same way in every process.
                seed = zlib.crc32(
                    f"{self.name}|{_labels_text(key)}".encode("utf-8")
                )
                state = ReservoirSampler(capacity=self._capacity, seed=seed)
            self._states[key] = state
        return state

    def observe(self, value: float, **labels: object) -> None:
        """Record one observation."""
        key = _label_key(labels)
        with self._lock:
            self._state(key).observe(float(value))

    def observe_many(self, values: Iterable[float], **labels: object) -> None:
        """Record a batch of observations."""
        batch = [float(v) for v in values]
        if not batch:
            return
        key = _label_key(labels)
        with self._lock:
            state = self._state(key)
            for value in batch:
                state.observe(value)

    def count(self, **labels: object) -> int:
        """Number of observations for the label set."""
        with self._lock:
            state = self._states.get(_label_key(labels))
            return state.count if state is not None else 0

    def quantile(self, q: float, **labels: object) -> float | None:
        """Live estimate of the ``q``-quantile for the label set.

        With the reservoir backend any ``q`` in ``[0, 1]`` is
        answerable; the p2 backend only answers its declared targets.
        ``None`` before any observation.
        """
        with self._lock:
            state = self._states.get(_label_key(labels))
            if state is None:
                return None
            return state.quantile(check_quantile(q))

    def _sample_dicts(self) -> dict[str, object]:
        samples: dict[str, object] = {}
        for key, state in self._states.items():
            quantile_values = {
                repr(q): state.quantile(q) for q in self._quantiles
            }
            samples[_labels_text(key)] = {
                "count": state.count,
                "sum": state.total,
                "min": state.minimum,
                "max": state.maximum,
                "mean": state.total / state.count if state.count else 0.0,
                "exact": state.exact,
                "backend": self._backend,
                "quantiles": quantile_values,
            }
        return samples


class MetricsRegistry:
    """Process-local collection of named instruments.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so call
    sites never need to coordinate instrument construction; asking for
    an existing name with a different instrument type (or different
    histogram buckets) raises :class:`TelemetryError` instead of
    silently splitting the series.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, factory) -> _Instrument:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the named counter."""
        instrument = self._get_or_create(
            name, lambda: Counter(name, description, self._lock)
        )
        if not isinstance(instrument, Counter):
            raise TelemetryError(
                f"{name!r} is a {instrument.kind}, not a counter"
            )
        return instrument

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the named gauge."""
        instrument = self._get_or_create(
            name, lambda: Gauge(name, description, self._lock)
        )
        if not isinstance(instrument, Gauge):
            raise TelemetryError(f"{name!r} is a {instrument.kind}, not a gauge")
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        description: str = "",
    ) -> Histogram:
        """Get or create the named fixed-bucket histogram."""
        instrument = self._get_or_create(
            name, lambda: Histogram(name, description, self._lock, buckets)
        )
        if not isinstance(instrument, Histogram):
            raise TelemetryError(
                f"{name!r} is a {instrument.kind}, not a histogram"
            )
        if instrument.buckets != tuple(
            sorted(float(b) for b in buckets)
        ):
            raise TelemetryError(
                f"histogram {name!r} already registered with buckets "
                f"{instrument.buckets}, got {tuple(buckets)}"
            )
        return instrument

    def summary(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_SUMMARY_QUANTILES,
        description: str = "",
        capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        backend: str = "reservoir",
    ) -> Summary:
        """Get or create the named streaming-quantile summary."""
        instrument = self._get_or_create(
            name,
            lambda: Summary(
                name,
                description,
                self._lock,
                quantiles=quantiles,
                capacity=capacity,
                backend=backend,
            ),
        )
        if not isinstance(instrument, Summary):
            raise TelemetryError(
                f"{name!r} is a {instrument.kind}, not a summary"
            )
        if instrument.quantile_targets != tuple(
            sorted(check_quantile(q) for q in quantiles)
        ):
            raise TelemetryError(
                f"summary {name!r} already registered with quantiles "
                f"{instrument.quantile_targets}, got {tuple(quantiles)}"
            )
        return instrument

    def names(self) -> list[str]:
        """Registered instrument names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-ready ``{name: instrument dict}`` view of every instrument."""
        with self._lock:
            instruments = dict(self._instruments)
        return {name: inst.to_dict() for name, inst in sorted(instruments.items())}

    # ``to_dict`` is the exporter-facing alias of ``snapshot``.
    to_dict = snapshot

    def reset(self) -> None:
        """Drop every instrument (fresh registry state)."""
        with self._lock:
            self._instruments.clear()


class _NullInstrument:
    """One shared no-op object standing in for every instrument type."""

    __slots__ = ()
    kind = "null"
    name = "null"
    buckets: tuple[float, ...] = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def observe_many(self, values: Iterable[float], **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def quantile(self, q: float, **labels: object) -> None:
        return None

    def to_dict(self) -> dict[str, object]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out no-op instruments, records nothing.

    ``enabled`` is ``False`` so hot paths can skip even the bookkeeping
    that *feeds* an instrument (the zero-overhead contract); calling an
    instrument method anyway is a harmless no-op.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, description: str = "") -> Counter:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, description: str = "") -> Gauge:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, buckets: Sequence[float], description: str = ""
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def summary(
        self,
        name: str,
        quantiles: Sequence[float] = DEFAULT_SUMMARY_QUANTILES,
        description: str = "",
        capacity: int = DEFAULT_RESERVOIR_CAPACITY,
        backend: str = "reservoir",
    ) -> Summary:
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def snapshot(self) -> dict[str, dict[str, object]]:
        return {}

    to_dict = snapshot


#: Shared disabled registry — the default telemetry sink everywhere.
NULL_REGISTRY = NullRegistry()
