"""Live telemetry exposition: Prometheus text rendering + periodic export.

PR 2's ``repro.obs`` only materialised metrics at process exit — a
running ``repro serve`` was a black box, and a killed one lost its
telemetry entirely.  This module is the live half:

* :func:`render_prometheus` turns a
  :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` into the
  Prometheus text exposition format (version 0.0.4) — counters,
  gauges, cumulative-bucket histograms, and quantile summaries — so
  any scrape-based pipeline (or plain ``watch cat``) can read it;
* :class:`PeriodicExporter` is a background daemon thread that
  atomically rewrites an exposition snapshot (plus the run manifest
  and span trace) every ``every`` seconds via
  :func:`repro.ckpt.atomic.atomic_output`, so readers never observe a
  torn file and a crash leaves the last complete snapshot behind;
* :func:`on_process_exit` registers flush callbacks with ``atexit``
  *and* a chaining SIGTERM handler, which is what makes
  ``--metrics-out`` / ``--trace-out`` / ``--telemetry-dir`` survive a
  polite kill: the handler flushes every registered callback, then
  re-delivers the signal so the exit status still reports the
  termination.

All writes go through the atomic primitive; the exporter thread is a
daemon so it can never block interpreter shutdown.
"""

from __future__ import annotations

import atexit
import itertools
import os
import re
import signal
import threading
from pathlib import Path
from typing import Callable, Mapping, Union

from repro.ckpt.atomic import atomic_write_text
from repro.utils.logging import get_logger

__all__ = [
    "EXPOSITION_FILENAME",
    "MANIFEST_FILENAME",
    "TRACE_FILENAME",
    "PeriodicExporter",
    "on_process_exit",
    "prometheus_name",
    "render_prometheus",
]

PathLike = Union[str, Path]

logger = get_logger(__name__)

#: Default exposition snapshot filename inside a telemetry directory.
EXPOSITION_FILENAME = "metrics.prom"
#: Default run-manifest filename inside a telemetry directory.
MANIFEST_FILENAME = "manifest.json"
#: Default span-trace filename inside a telemetry directory.
TRACE_FILENAME = "trace.jsonl"

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """Sanitise an instrument name into a legal Prometheus metric name.

    Dots (the registry's namespacing convention) and any other illegal
    characters become underscores; a leading digit gains an underscore
    prefix.
    """
    sanitised = _NAME_SANITIZER.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _escape_label_value(value: str) -> str:
    """Backslash-escape a label value per the exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _parse_labels(key: str) -> list[tuple[str, str]]:
    """Parse the registry's ``"k1=v1,k2=v2"`` sample key into pairs.

    Registry label *names* are Python keyword identifiers so commas and
    ``=`` inside them cannot occur; values are split on the first ``=``
    of each comma-separated chunk.
    """
    if not key:
        return []
    pairs = []
    for chunk in key.split(","):
        name, _, value = chunk.partition("=")
        pairs.append((_LABEL_SANITIZER.sub("_", name), value))
    return pairs


def _format_labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _format_value(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    return repr(number)


def _render_scalar(lines, name, samples) -> None:
    for key, value in sorted(samples.items()):
        labels = _format_labels(_parse_labels(key))
        lines.append(f"{name}{labels} {_format_value(value)}")


def _render_histogram(lines, name, samples) -> None:
    for key, sample in sorted(samples.items()):
        pairs = _parse_labels(key)
        cumulative = 0
        for edge, count in zip(sample["buckets"], sample["counts"]):
            cumulative += int(count)
            bucket_labels = _format_labels(
                pairs + [("le", _format_value(edge))]
            )
            lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
        inf_labels = _format_labels(pairs + [("le", "+Inf")])
        lines.append(f"{name}_bucket{inf_labels} {int(sample['count'])}")
        base = _format_labels(pairs)
        lines.append(f"{name}_sum{base} {_format_value(sample['sum'])}")
        lines.append(f"{name}_count{base} {int(sample['count'])}")


def _render_summary(lines, name, samples) -> None:
    for key, sample in sorted(samples.items()):
        pairs = _parse_labels(key)
        for q, value in sorted(
            sample["quantiles"].items(), key=lambda item: float(item[0])
        ):
            if value is None:
                continue
            q_labels = _format_labels(
                pairs + [("quantile", _format_value(float(q)))]
            )
            lines.append(f"{name}{q_labels} {_format_value(value)}")
        base = _format_labels(pairs)
        lines.append(f"{name}_sum{base} {_format_value(sample['sum'])}")
        lines.append(f"{name}_count{base} {int(sample['count'])}")


def render_prometheus(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a registry snapshot as Prometheus text exposition format.

    ``snapshot`` is the return value of
    :meth:`repro.obs.metrics.MetricsRegistry.snapshot`.  Instruments
    render in sorted name order with ``# HELP`` / ``# TYPE`` headers;
    histograms emit cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``, summaries emit ``{quantile=...}`` series plus
    ``_sum``/``_count``.
    """
    lines: list[str] = []
    for raw_name, instrument in sorted(snapshot.items()):
        kind = instrument.get("type", "gauge")
        samples = instrument.get("samples", {})
        name = prometheus_name(raw_name)
        description = str(instrument.get("description") or raw_name)
        prom_type = {
            "counter": "counter",
            "gauge": "gauge",
            "histogram": "histogram",
            "summary": "summary",
        }.get(kind, "untyped")
        lines.append(f"# HELP {name} {description}")
        lines.append(f"# TYPE {name} {prom_type}")
        if kind == "histogram":
            _render_histogram(lines, name, samples)
        elif kind == "summary":
            _render_summary(lines, name, samples)
        else:
            _render_scalar(lines, name, samples)
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Flush-on-exit plumbing (atexit + chaining SIGTERM handler)
# ----------------------------------------------------------------------

_EXIT_LOCK = threading.Lock()
_EXIT_CALLBACKS: dict[int, Callable[[], None]] = {}
_EXIT_TOKENS = itertools.count()
_PREVIOUS_HANDLERS: dict[int, object] = {}
_ATEXIT_INSTALLED = False


def _run_exit_callbacks() -> None:
    """Run every registered flush callback; failures must not mask exit."""
    with _EXIT_LOCK:
        callbacks = list(_EXIT_CALLBACKS.values())
    for callback in callbacks:
        try:
            callback()
        except Exception:
            logger.exception("telemetry flush callback failed at exit")


def _signal_handler(signum: int, frame: object) -> None:
    _run_exit_callbacks()
    previous = _PREVIOUS_HANDLERS.get(signum)
    if callable(previous):
        previous(signum, frame)
        return
    # Restore the default disposition and re-deliver so the process
    # still dies "by signal N" — parents/tests see the honest status.
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def on_process_exit(
    callback: Callable[[], None],
    signals: tuple[int, ...] = (signal.SIGTERM,),
) -> Callable[[], None]:
    """Run ``callback`` at interpreter exit and on the given signals.

    Returns an *unregister* callable: invoke it after a normal
    completion so the callback does not fire again at interpreter
    shutdown.  The signal handler chains to any previously installed
    Python handler, or re-delivers the signal with the default
    disposition after flushing, so exit statuses stay truthful.
    Signal installation is skipped silently off the main thread (the
    atexit half still applies).
    """
    global _ATEXIT_INSTALLED
    with _EXIT_LOCK:
        token = next(_EXIT_TOKENS)
        _EXIT_CALLBACKS[token] = callback
        if not _ATEXIT_INSTALLED:
            atexit.register(_run_exit_callbacks)
            _ATEXIT_INSTALLED = True
    for signum in signals:
        if signum in _PREVIOUS_HANDLERS:
            continue
        try:
            previous = signal.signal(signum, _signal_handler)
        except ValueError:  # not the main thread
            continue
        if previous is not _signal_handler:
            _PREVIOUS_HANDLERS[signum] = previous

    def unregister() -> None:
        with _EXIT_LOCK:
            _EXIT_CALLBACKS.pop(token, None)

    return unregister


class PeriodicExporter:
    """Background thread atomically exporting live telemetry snapshots.

    Every ``every`` seconds (and once at :meth:`start`, once at
    :meth:`stop`) the run's registry snapshot is rendered to Prometheus
    text and written — together with the run manifest JSON and the span
    trace JSONL — into ``directory``, each file through the atomic
    temp+fsync+replace primitive.  ``install_exit_hooks`` (default on)
    additionally registers :meth:`flush` with :func:`on_process_exit`,
    so SIGTERM and interpreter exit leave a complete final snapshot.

    Parameters
    ----------
    run:
        The :class:`~repro.obs.run.RunRecorder` whose sinks to export.
    directory:
        Target directory (created on first flush).
    every:
        Export cadence in seconds.
    """

    def __init__(
        self,
        run,
        directory: PathLike,
        every: float = 5.0,
        exposition_filename: str = EXPOSITION_FILENAME,
        manifest_filename: str = MANIFEST_FILENAME,
        trace_filename: str = TRACE_FILENAME,
    ):
        if every <= 0:
            raise ValueError(f"export cadence must be positive, got {every}")
        self.run = run
        self.directory = Path(directory)
        self.every = float(every)
        self.exposition_path = self.directory / exposition_filename
        self.manifest_path = self.directory / manifest_filename
        self.trace_path = self.directory / trace_filename
        self._stop_event = threading.Event()
        # Reentrant: a signal handler flushing on the thread that is
        # already mid-flush must not deadlock against itself.
        self._flush_lock = threading.RLock()
        self._thread: threading.Thread | None = None
        self._unregister: Callable[[], None] | None = None
        self.flush_count = 0

    def flush(self) -> Path:
        """Atomically rewrite the exposition, manifest, and trace files."""
        with self._flush_lock:
            text = render_prometheus(self.run.metrics.snapshot())
            atomic_write_text(self.exposition_path, text)
            self.run.write(self.manifest_path)
            self.run.write_trace(self.trace_path)
            self.flush_count += 1
        return self.exposition_path

    def _loop(self) -> None:
        while not self._stop_event.wait(self.every):
            try:
                self.flush()
            except Exception:
                # A full disk must not kill the exporter for the life of
                # the process; the next cadence retries.
                logger.exception("periodic telemetry export failed")

    def start(self, install_exit_hooks: bool = True) -> "PeriodicExporter":
        """Write an initial snapshot and begin the export thread."""
        if self._thread is not None:
            return self
        # Hooks first, then the initial flush: once the snapshot file is
        # observable on disk, a SIGTERM is already guaranteed to flush.
        if install_exit_hooks:
            self._unregister = on_process_exit(self.flush)
        self.flush()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry-exporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the export thread and write one final snapshot."""
        self._stop_event.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._unregister is not None:
            self._unregister()
            self._unregister = None
        self.flush()

    def __enter__(self) -> "PeriodicExporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def __repr__(self) -> str:
        running = self._thread is not None
        return (
            f"PeriodicExporter(directory={str(self.directory)!r}, "
            f"every={self.every}, running={running})"
        )
