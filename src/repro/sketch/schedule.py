"""IMM-style adaptive sampling: how many RR sets are enough?

A fixed sketch count is either wasteful (easy instances) or wrong
(hard ones).  The IMM schedule (Tang et al., SIGMOD'15, "a martingale
approach") chooses the count from the data in two phases:

1. **OPT lower bound** — for geometrically shrinking guesses
   ``x_i = n / 2^i`` of the optimum spread ``OPT_k``, grow the pool to
   ``theta_i = lambda' / x_i`` sketches and run greedy max-coverage.
   The covered fraction is a martingale-concentrated spread estimate,
   so the first guess the greedy solution beats —
   ``n · F(S_i) >= (1 + eps') · x_i`` — certifies the lower bound
   ``LB = n · F(S_i) / (1 + eps')`` and stops the search (this early
   exit *is* the martingale stopping rule; a union bound over the at
   most ``log2(n)`` stopping times is folded into ``lambda'``).
2. **Final pool** — grow the same pool to
   ``theta = lambda* / LB`` sketches, enough for the greedy solution
   to be a ``(1 - 1/e - eps)``-approximation with probability
   ``1 - n^-ell``.

Both phases extend one :class:`~repro.sketch.rrsets.RRGenerator`, so
the whole schedule consumes a single seeded RNG stream and re-running
with the same seed reproduces the same pool, the same phase
transcript, and therefore the same seed set.  ``max_sketches`` caps
the pool for interactive use; hitting the cap is recorded in the
returned :class:`SketchSchedule` rather than silently absorbed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import SketchError
from repro.obs.run import active_run
from repro.sketch.rrsets import DEFAULT_BATCH_SIZE, RRGenerator, RRSketchPool
from repro.sketch.select import max_coverage_seeds
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

__all__ = ["SketchSchedule", "adaptive_rr_pool", "log_binomial"]

#: Default approximation slack ``eps`` of the final guarantee.
DEFAULT_EPSILON = 0.2

#: Default failure-probability exponent: guarantees hold w.p. 1 - n^-ell.
DEFAULT_ELL = 1.0

#: Default hard cap on the pool size (memory/latency guard; the
#: schedule records when it binds instead of failing).
DEFAULT_MAX_SKETCHES = 1 << 18


def log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma — exact enough for sampling bounds."""
    if not 0 <= k <= n:
        raise SketchError(f"log C({n}, {k}) requires 0 <= k <= n")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


@dataclass(frozen=True)
class SketchSchedule:
    """Transcript of one adaptive sampling run.

    Attributes
    ----------
    epsilon / ell:
        The requested approximation slack and failure exponent.
    lambda_prime / lambda_star:
        The phase-1 and phase-2 sampling constants.
    lower_bound:
        Certified lower bound on ``OPT_k`` (1.0 when every guess
        failed — the degenerate floor, since any seed covers itself).
    target_sketches:
        ``ceil(lambda* / lower_bound)`` — what phase 2 wanted.
    generated_sketches:
        What the pool actually holds (differs when the cap binds).
    capped:
        Whether ``max_sketches`` truncated the schedule.
    phases:
        One record per phase-1 round: guess ``x``, pool size, the
        greedy estimate, and whether the stopping rule fired.
    """

    epsilon: float
    ell: float
    lambda_prime: float
    lambda_star: float
    lower_bound: float
    target_sketches: int
    generated_sketches: int
    capped: bool
    phases: tuple[dict, ...]


def _extend_pool(
    generator: RRGenerator, pool: RRSketchPool, target: int
) -> RRSketchPool:
    """Grow ``pool`` to ``target`` sketches from ``generator``."""
    shortfall = target - pool.num_sketches
    if shortfall <= 0:
        return pool
    return pool.extended(*generator.generate(shortfall))


def adaptive_rr_pool(
    probabilities: EdgeProbabilities,
    num_seeds: int,
    epsilon: float = DEFAULT_EPSILON,
    ell: float = DEFAULT_ELL,
    seed: SeedLike = None,
    candidates: Sequence[int] | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    max_sketches: int = DEFAULT_MAX_SKETCHES,
) -> tuple[RRSketchPool, SketchSchedule]:
    """Sample an adaptively sized RR pool for ``num_seeds`` selection.

    Parameters
    ----------
    probabilities:
        Forward IC edge probabilities over the social graph.
    num_seeds:
        Seed-set size ``k`` the pool must support.
    epsilon:
        Approximation slack of the ``(1 - 1/e - eps)`` guarantee.
    ell:
        Failure exponent; guarantees hold with probability
        ``1 - n^-ell``.
    seed:
        Seed or Generator driving root sampling and coin flips.
    candidates:
        Optional candidate restriction, threaded through the phase-1
        greedy runs so the certified bound matches the pool the final
        selection will use.
    batch_size:
        Lockstep reverse-cascade batch size.
    max_sketches:
        Hard pool-size cap (recorded in the schedule when it binds).

    Returns
    -------
    (pool, schedule):
        The sampled pool and the full schedule transcript.
    """
    n = probabilities.graph.num_nodes
    num_seeds = check_positive_int("num_seeds", num_seeds)
    if num_seeds > n:
        raise SketchError(f"num_seeds={num_seeds} exceeds {n} nodes")
    max_sketches = check_positive_int("max_sketches", max_sketches)
    if epsilon <= 0 or epsilon >= 1:
        raise SketchError(f"epsilon must lie in (0, 1), got {epsilon}")
    if ell <= 0:
        raise SketchError(f"ell must be positive, got {ell}")

    generator = RRGenerator(probabilities, seed=seed, batch_size=batch_size)
    pool = RRSketchPool.empty(n)
    if n == 1:
        # Degenerate universe: one node, one possible seed set.
        pool = _extend_pool(generator, pool, 1)
        schedule = SketchSchedule(
            epsilon, ell, 0.0, 0.0, 1.0, 1, pool.num_sketches, False, ()
        )
        return pool, schedule

    log_n = math.log(n)
    log_choose = log_binomial(n, num_seeds)
    eps_prime = math.sqrt(2.0) * epsilon
    # Phase-1 constant lambda' (IMM eq. 9); the log(log2 n) term is the
    # union bound over the schedule's possible stopping times.
    lambda_prime = (
        (2.0 + 2.0 / 3.0 * eps_prime)
        * (log_choose + ell * log_n + math.log(max(math.log2(n), 1.0)))
        * n
        / (eps_prime**2)
    )
    # Phase-2 constant lambda* (IMM eq. 6).
    alpha = math.sqrt(ell * log_n + math.log(2.0))
    beta = math.sqrt(
        (1.0 - 1.0 / math.e) * (log_choose + ell * log_n + math.log(2.0))
    )
    lambda_star = (
        2.0 * n * ((1.0 - 1.0 / math.e) * alpha + beta) ** 2 / (epsilon**2)
    )

    with active_run().span(
        "sketch.schedule", num_seeds=num_seeds, epsilon=epsilon
    ) as span:
        lower_bound = 1.0
        capped = False
        phases: list[dict] = []
        for i in range(1, max(int(math.ceil(math.log2(n))), 1)):
            x = n / (2.0**i)
            theta_i = int(math.ceil(lambda_prime / x))
            if theta_i > max_sketches:
                theta_i = max_sketches
                capped = True
            pool = _extend_pool(generator, pool, theta_i)
            estimate = (
                n
                * max_coverage_seeds(pool, num_seeds, candidates).coverage_fraction
            )
            stopped = estimate >= (1.0 + eps_prime) * x
            phases.append(
                {
                    "round": i,
                    "guess_x": x,
                    "num_sketches": pool.num_sketches,
                    "greedy_estimate": estimate,
                    "stopped": stopped,
                }
            )
            if stopped:
                lower_bound = estimate / (1.0 + eps_prime)
                break
            if capped:
                # The cap bars any further refinement; keep the best
                # certified floor and move on to phase 2.
                lower_bound = max(lower_bound, estimate / (1.0 + eps_prime))
                break

        target = int(math.ceil(lambda_star / lower_bound))
        generated_target = min(target, max_sketches)
        capped = capped or target > max_sketches
        pool = _extend_pool(generator, pool, generated_target)
        if span is not None:
            span.set_attribute("lower_bound", lower_bound)
            span.set_attribute("num_sketches", pool.num_sketches)
            span.set_attribute("capped", capped)

    schedule = SketchSchedule(
        epsilon=epsilon,
        ell=ell,
        lambda_prime=lambda_prime,
        lambda_star=lambda_star,
        lower_bound=lower_bound,
        target_sketches=target,
        generated_sketches=pool.num_sketches,
        capped=capped,
        phases=tuple(phases),
    )
    return pool, schedule
