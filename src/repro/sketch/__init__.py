"""repro.sketch — sketch-based (RIS/IMM) influence maximisation.

Replaces Monte-Carlo greedy seed selection with reverse-reachable
sampling over the CSR propagation network:

* :mod:`repro.sketch.rrsets` — :class:`RRGenerator` samples RR sets in
  vectorised lockstep batches over the transposed CSR adjacency;
  :class:`RRSketchPool` stores them flattened with an inverted
  node→sketch index;
* :mod:`repro.sketch.schedule` — :func:`adaptive_rr_pool`: the
  IMM-style two-phase schedule (OPT lower bound + martingale stopping)
  that sizes the pool from the data instead of a hard-coded count;
* :mod:`repro.sketch.select` — :func:`max_coverage_seeds`: CELF-style
  lazy greedy max-coverage over the pool, near-linear in the flattened
  pool size.

The application-facing entry points
(:func:`repro.apps.influence_max.ris_influence_maximization` and its
embedding-pruned variant) wrap these into the same
:class:`~repro.apps.influence_max.SeedSelection` result the
Monte-Carlo path returns.
"""

from repro.sketch.rrsets import (
    RRGenerator,
    RRSketchPool,
    reverse_edge_probabilities,
)
from repro.sketch.schedule import (
    SketchSchedule,
    adaptive_rr_pool,
    log_binomial,
)
from repro.sketch.select import MaxCoverageResult, max_coverage_seeds

__all__ = [
    "MaxCoverageResult",
    "RRGenerator",
    "RRSketchPool",
    "SketchSchedule",
    "adaptive_rr_pool",
    "log_binomial",
    "max_coverage_seeds",
    "reverse_edge_probabilities",
]
