"""Reverse-reachable (RR) set generation over the propagation network.

The RIS insight (Borgs et al.; Tang et al.) is that influence spread
has an unbiased *reverse* estimator: sample a uniform root ``v``, run
an Independent-Cascade simulation **backwards** over the transposed
graph (each in-edge ``u -> v`` is live with its forward probability
``P_uv``), and record every node that reaches ``v`` through live
edges.  The probability that a seed set ``S`` intersects such a random
RR set equals ``sigma(S) / n``, so a pool of RR sets turns influence
maximisation into max-coverage over the pool — no forward Monte-Carlo
per candidate ever runs.

:class:`RRGenerator` samples RR sets in vectorised batches: every
frontier node's in-edges across the whole batch are gathered from the
transposed CSR adjacency with one fancy-indexing pass, all coin flips
come from one seeded :class:`numpy.random.Generator` draw, and the
per-batch visited matrix is a reusable buffer.  :class:`RRSketchPool`
stores the resulting sets in flattened CSR form plus the inverted
node→sketch index that max-coverage selection consumes.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.probabilities import EdgeProbabilities
from repro.errors import SketchError
from repro.obs.metrics import SPREAD_BUCKETS
from repro.obs.run import active_metrics, active_run
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["RRGenerator", "RRSketchPool", "reverse_edge_probabilities"]

#: Roots processed per lockstep reverse-cascade batch.
DEFAULT_BATCH_SIZE = 256


def reverse_edge_probabilities(
    probabilities: EdgeProbabilities,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Transposed CSR adjacency with aligned forward probabilities.

    Returns ``(in_indptr, in_indices, in_values)`` where
    ``in_indices[in_indptr[v]:in_indptr[v+1]]`` are the in-neighbours
    ``u`` of ``v`` and ``in_values`` carries the *forward* ``P_uv`` for
    each — exactly the arrays a reverse IC cascade expands.  The graph
    already stores the transposed CSR; only the probability table needs
    reordering from source-major to target-major edge order.
    """
    graph = probabilities.graph
    in_indptr, in_indices = graph.in_csr()
    edge_array = graph.edge_array()
    # Source-major canonical order -> (target, source) order, matching
    # the stable-sorted in-CSR layout built by SocialGraph.
    order = np.lexsort((edge_array[:, 0], edge_array[:, 1]))
    return in_indptr, in_indices, probabilities.values[order]


def _record_generation(num_sets: int, sizes: np.ndarray) -> None:
    """Record one RR-generation call into the ambient metrics registry.

    No-op (one attribute check) unless a :func:`repro.obs.run.recording`
    scope is active — the adaptive schedule calls this per extension,
    so everything heavier stays behind the enabled guard.
    """
    metrics = active_metrics()
    if not metrics.enabled:
        return
    metrics.counter("sketch.rr_sets", "reverse-reachable sets sampled").inc(
        num_sets
    )
    metrics.counter(
        "sketch.rr_nodes", "total nodes across sampled RR sets"
    ).inc(int(sizes.sum()))
    metrics.histogram(
        "sketch.rr_size", SPREAD_BUCKETS, "RR-set sizes"
    ).observe_many(sizes.tolist())


class RRSketchPool:
    """A pool of RR sets in flattened CSR form.

    Parameters
    ----------
    num_nodes:
        Node-universe size the sketches were sampled over.
    indptr:
        ``(num_sketches + 1,)`` offsets into ``nodes``; sketch ``i``
        is ``nodes[indptr[i]:indptr[i + 1]]``.
    nodes:
        All sketch members flattened, grouped per sketch in reverse
        activation order (the sampled root first).
    """

    def __init__(self, num_nodes: int, indptr: np.ndarray, nodes: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if indptr.ndim != 1 or indptr.shape[0] < 1 or indptr[0] != 0:
            raise SketchError(
                f"indptr must be 1-D starting at 0, got shape {indptr.shape}"
            )
        if np.any(np.diff(indptr) < 0) or int(indptr[-1]) != nodes.shape[0]:
            raise SketchError(
                f"indptr (last={int(indptr[-1])}) disagrees with "
                f"{nodes.shape[0]} flattened nodes"
            )
        if nodes.size and (nodes.min() < 0 or nodes.max() >= num_nodes):
            raise SketchError(
                f"sketch members must lie in [0, {num_nodes}), found range "
                f"[{nodes.min()}, {nodes.max()}]"
            )
        self.num_nodes = int(num_nodes)
        self.indptr = indptr
        self.nodes = nodes
        self._node_indptr: np.ndarray | None = None
        self._node_sketches: np.ndarray | None = None

    @property
    def num_sketches(self) -> int:
        """Number of RR sets in the pool."""
        return int(self.indptr.shape[0] - 1)

    def sizes(self) -> np.ndarray:
        """Size of every RR set as an int64 array."""
        return np.diff(self.indptr)

    def sketch(self, i: int) -> np.ndarray:
        """Members of sketch ``i`` (read-only view)."""
        i = int(i)
        if not 0 <= i < self.num_sketches:
            raise SketchError(f"sketch {i} outside [0, {self.num_sketches})")
        return self.nodes[self.indptr[i] : self.indptr[i + 1]]

    def coverage_counts(self) -> np.ndarray:
        """Per-node count of RR sets containing the node.

        ``coverage_counts()[u] * num_nodes / num_sketches`` is the
        unbiased RIS estimate of ``sigma({u})``.
        """
        return np.bincount(self.nodes, minlength=self.num_nodes)

    def _inverted(self) -> tuple[np.ndarray, np.ndarray]:
        """The node→sketches CSR, built lazily and cached."""
        if self._node_indptr is None:
            sketch_ids = np.repeat(
                np.arange(self.num_sketches, dtype=np.int64), self.sizes()
            )
            order = np.argsort(self.nodes, kind="stable")
            self._node_sketches = sketch_ids[order]
            counts = np.bincount(self.nodes, minlength=self.num_nodes)
            node_indptr = np.empty(self.num_nodes + 1, dtype=np.int64)
            node_indptr[0] = 0
            np.cumsum(counts, out=node_indptr[1:])
            self._node_indptr = node_indptr
        return self._node_indptr, self._node_sketches

    def sketches_containing(self, node: int) -> np.ndarray:
        """IDs of the RR sets containing ``node`` (read-only view)."""
        node = int(node)
        if not 0 <= node < self.num_nodes:
            raise SketchError(f"node {node} outside [0, {self.num_nodes})")
        node_indptr, node_sketches = self._inverted()
        return node_sketches[node_indptr[node] : node_indptr[node + 1]]

    def spread_estimate(self, seeds) -> float:
        """Unbiased RIS estimate of ``sigma(seeds)`` for a *fixed* set.

        Counts the sketches intersecting ``seeds`` through the inverted
        index and scales by ``num_nodes / num_sketches``.  Unbiased for
        any seed set chosen independently of this pool; the coverage of
        a set *selected on* the pool is upward-biased by the selection
        itself (the IMM guarantee bounds that bias by ``epsilon``).
        """
        if self.num_sketches == 0:
            raise SketchError("spread estimate is undefined for an empty pool")
        covering = [self.sketches_containing(int(s)) for s in seeds]
        covered = np.unique(np.concatenate(covering)) if covering else []
        return self.num_nodes * len(covered) / self.num_sketches

    def spread_scale(self) -> float:
        """Sketches-to-spread conversion factor ``num_nodes / num_sketches``.

        Multiply a covered-sketch count by this to get the RIS spread
        estimate in users.
        """
        if self.num_sketches == 0:
            raise SketchError("spread scale is undefined for an empty pool")
        return self.num_nodes / self.num_sketches

    def extended(self, indptr: np.ndarray, nodes: np.ndarray) -> "RRSketchPool":
        """A new pool with additional sketches appended.

        ``indptr``/``nodes`` describe the new sketches alone, in the
        same flattened layout this pool uses; the inverted index is
        rebuilt lazily on the returned pool.
        """
        merged_indptr = np.concatenate(
            [self.indptr, np.asarray(indptr[1:], dtype=np.int64) + self.indptr[-1]]
        )
        merged_nodes = np.concatenate([self.nodes, nodes])
        return RRSketchPool(self.num_nodes, merged_indptr, merged_nodes)

    @classmethod
    def empty(cls, num_nodes: int) -> "RRSketchPool":
        """A pool of zero sketches over ``num_nodes`` nodes."""
        return cls(
            num_nodes, np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)
        )

    def __repr__(self) -> str:
        return (
            f"RRSketchPool(num_nodes={self.num_nodes}, "
            f"num_sketches={self.num_sketches}, "
            f"total_size={self.nodes.shape[0]})"
        )


class RRGenerator:
    """Stateful vectorised sampler of RR sets for one probability table.

    One generator owns one seeded RNG stream, so successive
    :meth:`generate` calls extend the same deterministic sequence —
    exactly what the adaptive schedule needs when it grows the pool in
    phases.

    Parameters
    ----------
    probabilities:
        Forward IC edge probabilities over the social graph.
    seed:
        Seed or :class:`~numpy.random.Generator` for root sampling and
        edge coin flips.
    batch_size:
        Roots simulated per lockstep reverse-cascade batch; bounds the
        reusable visited buffer at ``batch_size × num_nodes`` bools.
    """

    def __init__(
        self,
        probabilities: EdgeProbabilities,
        seed: SeedLike = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.num_nodes = probabilities.graph.num_nodes
        if self.num_nodes == 0:
            raise SketchError("cannot sample RR sets over an empty graph")
        self.batch_size = check_positive_int("batch_size", batch_size)
        self.rng = ensure_rng(seed)
        (
            self._in_indptr,
            self._in_indices,
            self._in_values,
        ) = reverse_edge_probabilities(probabilities)
        # Reusable per-batch visited buffer (allocated on first use).
        self._visited: np.ndarray | None = None

    def generate(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``count`` fresh RR sets with uniformly random roots.

        Returns ``(indptr, nodes)`` in the flattened
        :class:`RRSketchPool` layout, covering only the new sketches.
        """
        count = check_positive_int("count", count)
        with active_run().span("sketch.generate", count=count):
            sizes_parts: list[np.ndarray] = []
            nodes_parts: list[np.ndarray] = []
            for start in range(0, count, self.batch_size):
                roots = self.rng.integers(
                    0,
                    self.num_nodes,
                    size=min(self.batch_size, count - start),
                    dtype=np.int64,
                )
                sizes, nodes = self._reverse_cascade_batch(roots)
                sizes_parts.append(sizes)
                nodes_parts.append(nodes)
            all_sizes = np.concatenate(sizes_parts)
            indptr = np.empty(count + 1, dtype=np.int64)
            indptr[0] = 0
            np.cumsum(all_sizes, out=indptr[1:])
            _record_generation(count, all_sizes)
            return indptr, np.concatenate(nodes_parts)

    def _reverse_cascade_batch(
        self, roots: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lockstep reverse IC cascades for one batch of roots.

        All sketches advance one round per iteration: the in-edges of
        every frontier node across the batch are gathered with one
        fancy-indexing pass, one RNG draw covers every coin, and
        newly reached ``(sketch, node)`` pairs are deduplicated through
        the packed-id trick before becoming the next frontier.
        """
        batch = roots.shape[0]
        n = self.num_nodes
        if self._visited is None or self._visited.shape[0] < batch:
            self._visited = np.zeros((batch, n), dtype=bool)
        visited = self._visited[:batch]
        visited[:] = False
        rows = np.arange(batch, dtype=np.int64)
        visited[rows, roots] = True

        member_sketches = [rows]
        member_nodes = [roots]
        frontier_sketches, frontier_nodes = rows, roots
        while frontier_nodes.size:
            starts = self._in_indptr[frontier_nodes]
            degrees = self._in_indptr[frontier_nodes + 1] - starts
            total = int(degrees.sum())
            if total == 0:
                break
            # Flat indices of every frontier in-edge across the batch.
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(degrees) - degrees, degrees
            )
            flat = np.repeat(starts, degrees) + within
            edge_sketches = np.repeat(frontier_sketches, degrees)
            live = self.rng.random(total) < self._in_values[flat]
            if not live.any():
                break
            hit_sketches = edge_sketches[live]
            hit_sources = self._in_indices[flat[live]]
            fresh = ~visited[hit_sketches, hit_sources]
            if not fresh.any():
                break
            packed = np.unique(hit_sketches[fresh] * n + hit_sources[fresh])
            new_sketches = packed // n
            new_nodes = packed % n
            visited[new_sketches, new_nodes] = True
            member_sketches.append(new_sketches)
            member_nodes.append(new_nodes)
            frontier_sketches, frontier_nodes = new_sketches, new_nodes

        all_sketches = np.concatenate(member_sketches)
        all_nodes = np.concatenate(member_nodes)
        order = np.argsort(all_sketches, kind="stable")
        sizes = np.bincount(all_sketches, minlength=batch)
        return sizes, all_nodes[order]
