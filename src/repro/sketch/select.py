"""Lazy-greedy max-coverage seed selection over an RR-sketch pool.

With a pool of RR sets in hand, influence maximisation reduces to
max-coverage: pick the ``k`` nodes covering the most sketches, because
the covered fraction times ``num_nodes`` is the unbiased spread
estimate.  Coverage is submodular, so the classic CELF lazy-heap
optimisation applies: a node's marginal coverage can only shrink as
seeds accumulate, stale heap entries are re-evaluated only when they
surface, and each re-evaluation is one bool-gather over the node's
inverted-index row — total work near-linear in the flattened pool
size instead of O(k · |V| · pool).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import SketchError
from repro.obs.run import active_metrics, active_run
from repro.sketch.rrsets import RRSketchPool
from repro.utils.validation import check_positive_int

__all__ = ["MaxCoverageResult", "max_coverage_seeds"]


@dataclass(frozen=True)
class MaxCoverageResult:
    """Outcome of greedy max-coverage selection over a sketch pool.

    Attributes
    ----------
    seeds:
        Chosen nodes in selection order.
    marginal_counts:
        Newly covered sketches contributed by each pick.
    covered_sketches:
        Total sketches covered by the final seed set.
    coverage_fraction:
        ``covered_sketches / num_sketches`` (0.0 for an empty pool);
        times ``num_nodes`` this is the RIS spread estimate.
    """

    seeds: tuple[int, ...]
    marginal_counts: tuple[int, ...]
    covered_sketches: int
    coverage_fraction: float


def max_coverage_seeds(
    pool: RRSketchPool,
    num_seeds: int,
    candidates: Sequence[int] | None = None,
) -> MaxCoverageResult:
    """CELF-style lazy greedy max-coverage over ``pool``.

    Parameters
    ----------
    pool:
        The RR-sketch pool to cover.
    num_seeds:
        Size ``k`` of the seed set.
    candidates:
        Optional candidate node pool (defaults to every node) — the
        hook the embedding-pruned variant uses.

    Notes
    -----
    Selection is deterministic: the heap orders by (marginal coverage,
    node id), so equal-coverage ties always resolve to the smallest
    node id regardless of pool construction order.
    """
    num_seeds = check_positive_int("num_seeds", num_seeds)
    if candidates is None:
        pool_nodes = np.arange(pool.num_nodes, dtype=np.int64)
    else:
        pool_nodes = np.unique(np.asarray(candidates, dtype=np.int64))
        if pool_nodes.size and (
            pool_nodes.min() < 0 or pool_nodes.max() >= pool.num_nodes
        ):
            raise SketchError(
                f"candidates must lie in [0, {pool.num_nodes}), found range "
                f"[{pool_nodes.min()}, {pool_nodes.max()}]"
            )
    if pool_nodes.shape[0] < num_seeds:
        raise SketchError(
            f"candidate pool of {pool_nodes.shape[0]} nodes is smaller "
            f"than num_seeds={num_seeds}"
        )

    with active_run().span(
        "sketch.select", num_seeds=num_seeds, num_sketches=pool.num_sketches
    ):
        counts = pool.coverage_counts()
        # Max-heap of (-marginal, node, round_evaluated); node id breaks
        # ties deterministically.
        heap: list[tuple[int, int, int]] = [
            (-int(counts[node]), int(node), 0) for node in pool_nodes
        ]
        heapq.heapify(heap)

        covered = np.zeros(pool.num_sketches, dtype=bool)
        chosen: list[int] = []
        gains: list[int] = []
        lazy_evaluations = 0
        while len(chosen) < num_seeds and heap:
            neg_gain, node, evaluated_round = heapq.heappop(heap)
            if evaluated_round == len(chosen):
                chosen.append(node)
                gains.append(-neg_gain)
                covered[pool.sketches_containing(node)] = True
            else:
                fresh = int(
                    np.count_nonzero(~covered[pool.sketches_containing(node)])
                )
                heapq.heappush(heap, (-fresh, node, len(chosen)))
                lazy_evaluations += 1

        covered_total = int(np.count_nonzero(covered))
        fraction = (
            covered_total / pool.num_sketches if pool.num_sketches else 0.0
        )
        metrics = active_metrics()
        if metrics.enabled:
            metrics.counter(
                "sketch.selections", "max-coverage seed selections run"
            ).inc()
            metrics.counter(
                "sketch.lazy_evaluations",
                "CELF re-evaluations during max-coverage selection",
            ).inc(lazy_evaluations)

    return MaxCoverageResult(
        seeds=tuple(chosen),
        marginal_counts=tuple(gains),
        covered_sketches=covered_total,
        coverage_fraction=fraction,
    )
