"""Benchmark T1 — regenerate Table I (dataset statistics)."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import table1_stats


def test_table1_dataset_stats(benchmark):
    rows = run_once(benchmark, table1_stats.run, BENCH_SCALE, BENCH_SEED)

    print("\nTable I — dataset statistics")
    header = (
        f"{'Dataset':<14}{'#User':>8}{'#Edge':>10}{'#Item':>8}"
        f"{'#Action':>10}{'#Pairs':>10}"
    )
    print(header)
    for row in rows:
        print(
            f"{row.dataset:<14}{row.num_users:>8}{row.num_edges:>10}"
            f"{row.num_items:>8}{row.num_actions:>10}{row.num_influence_pairs:>10}"
        )

    digg, flickr = rows
    # Paper shape: Flickr an order denser in edges, comparable actions.
    assert flickr.num_edges > 1.5 * digg.num_edges
    assert digg.num_actions > 0 and flickr.num_actions > 0
    assert digg.num_influence_pairs > 0
