"""Shared benchmark configuration.

Every benchmark wraps one experiment pipeline from
:mod:`repro.experiments` and runs it exactly once
(``benchmark.pedantic(rounds=1)``) — the pipelines are full
train-and-evaluate jobs, not micro-kernels, so repeated rounds would
multiply minutes of work for no extra information.  The printed tables
are the reproduction artifacts recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentScale

#: Working point for the benchmark suite: large enough for the paper's
#: relative comparisons to hold, small enough for a single-core run.
BENCH_SCALE = ExperimentScale(
    name="bench",
    num_users=400,
    num_items=200,
    dim=16,
    context_length=20,
    alpha=0.2,
    learning_rate=0.015,
    epochs=12,
    num_negatives=5,
    mc_runs=100,
)

#: Fixed seed so benchmark output is reproducible run to run.
BENCH_SEED = 20180416  # ICDE 2018 week, arbitrary but memorable


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    """The shared benchmark working point."""
    return BENCH_SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
