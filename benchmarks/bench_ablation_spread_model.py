"""Ablation — what happens when the world spreads by Linear Threshold.

Section II of the paper: *"we propose a new data-driven algorithm to
directly capture diffusion information from real-life dataset, without
any prior assumption of spread models."*  This bench probes that claim
by regenerating the digg-like dataset with LT cascades.

Measured finding (recorded in EXPERIMENTS.md): under LT, *every*
pair-learning method — IC-likelihood (ST, EM) and representation
(MF, Inf2vec) alike — collapses toward parity, because LT activation
is a *cumulative threshold* event that no per-pair parameter explains,
and DE's ``1/indegree`` structure (Eq. 8 then gives ≈ k/d, the
fraction of active friends) is literally the LT mechanic, so the
naive baseline becomes competitive.  The assertions pin that shape:
no method separates from the pack, Inf2vec does not collapse below
it, and the IC-likelihood methods lose the edge over DE that they
hold on IC data.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.baselines import Inf2vecMethod, MFModel, StaticModel, make_method
from repro.data.synthetic import SyntheticSocialDataset
from repro.eval.activation import evaluate_activation


def _run_lt_comparison():
    data = SyntheticSocialDataset.digg_like(
        num_users=BENCH_SCALE.num_users,
        num_items=BENCH_SCALE.num_items,
        seed=BENCH_SEED,
        spread_model="lt",
    )
    train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=BENCH_SEED)
    rows = {}
    for name, model in (
        ("DE", make_method("DE")),
        ("ST", StaticModel()),
        ("EM", make_method("EM")),
        ("MF", MFModel(dim=BENCH_SCALE.dim, epochs=5, seed=BENCH_SEED)),
        ("Inf2vec", Inf2vecMethod(BENCH_SCALE.inf2vec_config(), seed=BENCH_SEED)),
    ):
        model.fit(data.graph, train)
        predictor = model.predictor(num_runs=BENCH_SCALE.mc_runs, seed=1)
        rows[name] = evaluate_activation(predictor, data.graph, test)
    return rows


def test_ablation_lt_spread_model(benchmark):
    rows = run_once(benchmark, _run_lt_comparison)

    print("\nAblation — activation prediction on LT-generated cascades")
    for name, result in rows.items():
        print(f"  {name:<8} {result}")

    aucs = {name: r.auc for name, r in rows.items()}
    best = max(aucs.values())
    # The field compresses: nobody separates the way Table II separates.
    assert best - min(aucs.values()) < 0.1, aucs
    # Inf2vec stays with the pack (no catastrophic model mismatch).
    assert aucs["Inf2vec"] > best - 0.05, aucs
    # The IC-likelihood estimators lose their IC-data edge over DE.
    assert aucs["ST"] < aucs["DE"] + 0.02, aucs
    assert aucs["EM"] < aucs["DE"] + 0.02, aucs