"""Ablations — design choices DESIGN.md §5 calls out.

* bias terms on/off (the paper's b_u / b~_v addition),
* negative-sampling distribution (uniform vs word2vec unigram^0.75),
* random-walk restart probability (0.5 paper default vs 0.0).

Each variant trains on the same split and is scored on the activation
task; printed side by side for the record.  Assertions are
deliberately loose (variants are within-family), only guarding against
a variant collapsing.
"""

from dataclasses import replace

import pytest
from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.baselines import Inf2vecMethod
from repro.eval.activation import evaluate_activation
from repro.experiments.common import make_dataset


def _run_variants():
    data = make_dataset("digg", BENCH_SCALE, BENCH_SEED)
    train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=BENCH_SEED)
    base = BENCH_SCALE.inf2vec_config()
    variants = {
        "default": base,
        "no-biases": replace(base, use_biases=False),
        "unigram-negatives": replace(base, negative_distribution="unigram"),
        "no-restart": replace(
            base, context=replace(base.context, restart_prob=0.0)
        ),
    }
    rows = {}
    for name, config in variants.items():
        method = Inf2vecMethod(config, seed=BENCH_SEED).fit(data.graph, train)
        rows[name] = evaluate_activation(method.predictor(), data.graph, test)
    return rows


def test_ablation_design_choices(benchmark):
    rows = run_once(benchmark, _run_variants)

    print("\nAblation — design choices (activation task, digg-like)")
    for name, result in rows.items():
        print(f"  {name:<20} {result}")

    default_auc = rows["default"].auc
    for name, result in rows.items():
        assert result.auc == pytest.approx(default_auc, abs=0.15), (
            f"variant {name} collapsed: AUC {result.auc:.4f} vs "
            f"default {default_auc:.4f}"
        )
    # The uniform default should not trail the unigram alternative by
    # a wide margin (it was selected for being the stronger choice).
    assert default_auc >= rows["unigram-negatives"].auc - 0.05
