"""Benchmark T5 — regenerate Table V (aggregation functions).

Paper: Ave is the best aggregator overall (default); Sum is clearly
worst on MAP/P@N because it confounds influence strength with friend
count.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import table5_aggregation


def test_table5_aggregation(benchmark):
    results = run_once(benchmark, table5_aggregation.run, BENCH_SCALE, BENCH_SEED)

    for result in results:
        print(f"\nTable V — aggregation functions on {result.dataset}")
        print(result.table())

    for result in results:
        rows = {name: r.as_row() for name, r in result.rows.items()}
        # Paper shape: Sum is the loser — it confounds influence
        # strength with friend count.  At bench scale the effect is
        # strongest on AUC (the paper's giant candidate pools also
        # crater Sum's MAP; our pools are thousands of candidates, not
        # millions, so MAP differences are noisier).
        assert rows["sum"]["AUC"] < rows["ave"]["AUC"], (
            f"{result.dataset}: Sum unexpectedly strong on AUC"
        )
        # Ave is the best (or within noise of the best) aggregator.
        best = max(r["MAP"] for r in rows.values())
        assert rows["ave"]["MAP"] >= best - 0.03, (
            f"{result.dataset}: Ave MAP {rows['ave']['MAP']:.4f} "
            f"far from best {best:.4f}"
        )
