"""Benchmark — read-optimized serving layer latency and throughput.

Measures the blocked exact top-k engine behind
:class:`repro.serve.InfluenceService` at the ``digg_like`` working
point (2000 users): single-query and batched top-k, on both the block
scan path and the precomputed index path, plus the scan path under
concurrent load from a thread pool.  Query latency depends only on the
embedding *shapes*, never the trained values, so the store is built
from the paper initialisation instead of a multi-minute training run.

Reports p50/p99 latency and sustained QPS per workload into
``BENCH_serving.json`` at the repository root; service telemetry
(query counters, latency histograms, precompute spans) is routed
through :mod:`repro.obs` and persisted to
``BENCH_serving_manifest.json`` alongside it.  Every per-operation
latency is also fed into a live ``bench.workload.latency`` streaming
summary, whose quantiles are reported as ``live_p50_ms``/``live_p99_ms``
per workload and cross-checked against the exact post-hoc percentiles
(they must agree within :data:`LIVE_QUANTILE_TOLERANCE`); the final
registry state is rendered to Prometheus text format at
``BENCH_serving_exposition.prom``.

Run standalone with ``python benchmarks/bench_serving.py`` (add
``--smoke`` for the fast CI working point) or under pytest-benchmark
with ``pytest benchmarks/bench_serving.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.ckpt.atomic import atomic_write_text
from repro.core.embeddings import InfluenceEmbedding
from repro.obs import RunRecorder, active_metrics, recording, render_prometheus
from repro.serve import DEFAULT_BLOCK_SIZE, EmbeddingStore, InfluenceService
from repro.serve.service import SERVE_LATENCY_BUCKETS

#: Acceptance working point: the digg_like preset at 2000 users.
PRESET = dict(num_users=2000, dim=32)
#: CI working point: same code paths, seconds instead of minutes.
SMOKE_PRESET = dict(num_users=300, dim=16)
BENCH_SEED = 20180416  # ICDE 2018 week, arbitrary but memorable
TOP_K = 10
BATCH_SIZE = 64
CONCURRENCY = 8

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
MANIFEST_PATH = REPORT_PATH.with_name("BENCH_serving_manifest.json")
EXPOSITION_PATH = REPORT_PATH.with_name("BENCH_serving_exposition.prom")

#: Live streaming quantiles vs exact post-hoc percentiles: the default
#: reservoir is exact below capacity, so per-workload counts here leave
#: only float noise — 10% is the acceptance bound, not the expectation.
LIVE_QUANTILE_TOLERANCE = 0.10


def _percentile(latencies: list[float], q: float) -> float:
    """Linear-interpolated percentile of per-operation latencies."""
    return float(np.percentile(np.asarray(latencies), q))


def _summarize(latencies: list[float], wall: float, queries_per_op: int) -> dict:
    """p50/p99 per-operation latency plus sustained queries-per-second."""
    return {
        "operations": len(latencies),
        "queries": len(latencies) * queries_per_op,
        "p50_ms": _percentile(latencies, 50) * 1e3,
        "p99_ms": _percentile(latencies, 99) * 1e3,
        "qps": len(latencies) * queries_per_op / wall,
    }


def _record_workload(workload: str, latencies: list[float]) -> dict:
    """Stream the measured latencies into the live instruments.

    Feeds the exact per-operation latencies into the
    ``bench.workload.latency`` summary and ``bench.workload.seconds``
    histogram (labelled by workload), then reads the *live* p50/p99
    back out of the summary — the values the exposition snapshot will
    carry, to be cross-checked against the post-hoc percentiles.
    """
    metrics = active_metrics()
    summary = metrics.summary(
        "bench.workload.latency",
        description="per-operation benchmark latency quantiles (seconds)",
    )
    summary.observe_many(latencies, workload=workload)
    metrics.histogram(
        "bench.workload.seconds",
        SERVE_LATENCY_BUCKETS,
        "per-operation benchmark latency",
    ).observe_many(latencies, workload=workload)
    return {
        "live_p50_ms": summary.quantile(0.5, workload=workload) * 1e3,
        "live_p99_ms": summary.quantile(0.99, workload=workload) * 1e3,
    }


def _time_loop(op, operands) -> tuple[list[float], float]:
    """Run ``op`` once per operand, returning latencies and wall time."""
    latencies = []
    start = time.perf_counter()
    for operand in operands:
        began = time.perf_counter()
        op(operand)
        latencies.append(time.perf_counter() - began)
    return latencies, time.perf_counter() - start


def _time_concurrent(op, operands, workers: int) -> tuple[list[float], float]:
    """Issue one ``op`` per operand from a pool of ``workers`` threads."""

    def timed_op(operand) -> float:
        began = time.perf_counter()
        op(operand)
        return time.perf_counter() - began

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        latencies = list(pool.map(timed_op, operands))
    return latencies, time.perf_counter() - start


def run_serving(
    num_users: int = PRESET["num_users"],
    dim: int = PRESET["dim"],
    seed: int = BENCH_SEED,
    num_queries: int = 400,
    num_batches: int = 30,
    top_k: int = TOP_K,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> dict:
    """Measure serving latency/QPS across the query paths."""
    rng = np.random.default_rng(seed)
    embedding = InfluenceEmbedding.initialize(num_users, dim, seed=seed)

    run = RunRecorder(name="bench.serving")
    run.set_config(
        {
            "num_users": num_users,
            "dim": dim,
            "top_k": top_k,
            "block_size": block_size,
            "batch_size": BATCH_SIZE,
            "concurrency": CONCURRENCY,
        }
    )
    run.set_dataset(preset="digg_like", num_users=num_users)
    run.annotate(seed=seed)

    users = rng.integers(0, num_users, size=num_queries)
    batches = [
        rng.integers(0, num_users, size=BATCH_SIZE) for _ in range(num_batches)
    ]

    workloads: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench_serving_") as tmp:
        store_dir = Path(tmp) / "store"
        with recording(run):
            began = time.perf_counter()
            EmbeddingStore.save(embedding, store_dir)
            store_build_seconds = time.perf_counter() - began
            service = InfluenceService.open(store_dir, block_size=block_size)

            def single(user) -> None:
                service.top_influenced(int(user), top_k)

            def batched(batch) -> None:
                service.top_influenced_batch([int(u) for u in batch], top_k)

            # Warm the page cache and the BLAS-free kernel before timing.
            single(users[0])
            batched(batches[0])

            def measure(workload, timed, queries_per_op) -> None:
                latencies, wall = timed
                workloads[workload] = _summarize(
                    latencies, wall, queries_per_op=queries_per_op
                )
                workloads[workload].update(
                    _record_workload(workload, latencies)
                )

            measure("single_scan", _time_loop(single, users), 1)
            measure("batched_scan", _time_loop(batched, batches), BATCH_SIZE)
            measure(
                "single_scan_concurrent",
                _time_concurrent(single, users, CONCURRENCY),
                1,
            )

            began = time.perf_counter()
            service.precompute(k=top_k, directions=("influenced",))
            precompute_seconds = time.perf_counter() - began

            measure("single_index", _time_loop(single, users), 1)
            measure("batched_index", _time_loop(batched, batches), BATCH_SIZE)
    write_manifest(run)
    write_exposition(run)

    return {
        "preset": "digg_like",
        "num_users": num_users,
        "dim": dim,
        "seed": seed,
        "top_k": top_k,
        "block_size": block_size,
        "batch_size": BATCH_SIZE,
        "concurrency": CONCURRENCY,
        "store_build_seconds": store_build_seconds,
        "precompute_seconds": precompute_seconds,
        "workloads": workloads,
        "telemetry": {
            "manifest": MANIFEST_PATH.name,
            "exposition": EXPOSITION_PATH.name,
        },
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> None:
    """Persist the latency/QPS measurements next to the repository root."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def write_manifest(run: RunRecorder, path: Path = MANIFEST_PATH) -> None:
    """Persist the telemetry run manifest beside the latency report."""
    run.write(path)


def write_exposition(run: RunRecorder, path: Path = EXPOSITION_PATH) -> None:
    """Render the final registry state as Prometheus text format."""
    atomic_write_text(path, render_prometheus(run.metrics.snapshot()))


def print_report(results: dict) -> None:
    """Human-readable summary of one measurement."""
    print(
        f"\nServing latency — digg_like(num_users={results['num_users']}),"
        f" K={results['dim']}, top-{results['top_k']}"
    )
    print(f"{'workload':<24}{'p50':>10}{'p99':>10}{'qps':>12}")
    for name, row in results["workloads"].items():
        print(
            f"{name:<24}{row['p50_ms']:>8.3f}ms{row['p99_ms']:>8.3f}ms"
            f"{row['qps']:>12,.0f}"
        )


def test_serving_latency(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_serving)
    print_report(results)
    write_report(results)
    # Regression guards: the scan path must stay well under the old
    # dense (N, N) materialisation cost, and the precomputed index must
    # not be slower than scanning.
    assert results["workloads"]["single_scan"]["p99_ms"] < 250.0, results
    assert (
        results["workloads"]["single_index"]["p50_ms"]
        <= results["workloads"]["single_scan"]["p50_ms"]
    ), results
    manifest = json.loads(MANIFEST_PATH.read_text())
    assert "serve.queries" in manifest["metrics"], manifest["metrics"].keys()
    assert "bench.workload.latency" in manifest["metrics"]
    assert any(
        s["name"] == "serve.precompute.influenced" for s in manifest["spans"]
    )
    # Acceptance: the live streaming quantiles in the exposition agree
    # with the exact post-hoc percentiles for every workload.
    for name, row in results["workloads"].items():
        for live_key, exact_key in (
            ("live_p50_ms", "p50_ms"),
            ("live_p99_ms", "p99_ms"),
        ):
            live, exact = row[live_key], row[exact_key]
            assert abs(live - exact) <= LIVE_QUANTILE_TOLERANCE * exact, (
                name,
                live_key,
                live,
                exact,
            )
    assert EXPOSITION_PATH.is_file()
    assert "bench_workload_latency" in EXPOSITION_PATH.read_text()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI working point (small store, few queries)",
    )
    args = parser.parse_args()
    if args.smoke:
        results = run_serving(
            num_users=SMOKE_PRESET["num_users"],
            dim=SMOKE_PRESET["dim"],
            num_queries=50,
            num_batches=5,
        )
    else:
        results = run_serving()
    print_report(results)
    write_report(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
