"""Benchmark T4 — regenerate Table IV (Inf2vec-L ablation).

Paper: Inf2vec-L (local context only, alpha=1) consistently trails full
Inf2vec on both tasks and both datasets, demonstrating the value of the
global user-similarity context.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import table4_ablation


def test_table4_inf2vec_l(benchmark):
    results = run_once(benchmark, table4_ablation.run, BENCH_SCALE, BENCH_SEED)

    for result in results:
        print(f"\nTable IV — {result.task} on {result.dataset}")
        print(result.table())

    wins = 0
    for result in results:
        if result.global_context_helps("AUC"):
            wins += 1
    # Paper shape: the global context helps everywhere; allow one noisy
    # exception across the 4 (dataset, task) cells at bench scale.
    assert wins >= len(results) - 1, (
        f"global context helped in only {wins}/{len(results)} cells"
    )
