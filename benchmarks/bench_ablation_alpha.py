"""Ablation — component weight alpha sweep (DESIGN.md §5.1).

Extends Table IV: alpha=0 is the pure global-similarity (MF-like)
model, alpha=1 is Inf2vec-L, the tuned default sits in between.
Expectation: the blended setting is never worse than both extremes.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import table4_ablation

ALPHAS = (0.0, 0.2, 1.0)


def test_ablation_alpha(benchmark):
    results = run_once(
        benchmark,
        table4_ablation.run_alpha_sweep,
        ALPHAS,
        BENCH_SCALE,
        BENCH_SEED,
        profile="digg",
    )

    print("\nAblation — activation AUC/MAP vs component weight alpha")
    for alpha in ALPHAS:
        row = results[alpha].as_row()
        print(f"  alpha={alpha:<5} AUC={row['AUC']:.4f} MAP={row['MAP']:.4f}")

    blended = results[0.2].as_row()["AUC"]
    global_only = results[0.0].as_row()["AUC"]
    local_only = results[1.0].as_row()["AUC"]
    assert blended >= min(global_only, local_only), (
        f"blended {blended:.4f} below both extremes "
        f"({global_only:.4f}, {local_only:.4f})"
    )
    # The pure-local ablation is the weak end on this data (Table IV).
    assert blended > local_only - 0.01
