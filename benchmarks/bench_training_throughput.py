"""Benchmark — batched training engine vs the sequential seed path.

Times the two stages of Algorithm 2 separately on the ``digg_like``
synthetic preset, once with the original one-node/one-context-at-a-time
implementation (``ContextGenerator(batched=False)`` +
``train_epoch_sequential``) and once with the vectorised engine
(CSR-batched walks + fused micro-batched SGD).  The measured speedups
are persisted to ``BENCH_training.json`` at the repository root.

A second section measures the hogwild engine's scaling: the same
preset trained at each ``--workers`` count, with per-count epoch
throughput, speedup over one worker, and scaling efficiency
(speedup / workers) recorded under ``parallel.workers``.  Scaling
beyond 1.0x needs real cores, so the *default* worker counts are
clipped to ``os.cpu_count()`` — measuring 4 workers on a 1-core host
says nothing about the engine, only about the scheduler.  Counts
requested explicitly via ``--workers`` are still honoured beyond the
core count, but their rows carry ``oversubscribed: true`` so readers
(and the regression gate's baselines) can tell contention artifacts
from real scaling; ``parallel.cpu_count`` records the host.

Run standalone with ``python benchmarks/bench_training_throughput.py``
(add ``--smoke`` for the fast CI working point) or under
pytest-benchmark with
``pytest benchmarks/bench_training_throughput.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
from pathlib import Path

from repro.core.context import ContextConfig, ContextGenerator
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.synthetic import SyntheticSocialDataset
from repro.obs import RunRecorder, recording
from repro.parallel import HogwildTrainer
from repro.utils.timer import timed

#: Acceptance working point: the digg_like preset at 2000 users.
PRESET = dict(num_users=2000, num_items=300)
#: CI working point: same code paths, seconds instead of minutes.
SMOKE_PRESET = dict(num_users=400, num_items=60)
BENCH_SEED = 20180416  # ICDE 2018 week, arbitrary but memorable
DIM = 32

#: Worker counts for the hogwild scaling section (clipped to the
#: host's core count by :func:`default_worker_counts`).
SCALING_WORKERS = (1, 2, 4)
SMOKE_SCALING_WORKERS = (1, 2)
#: Epochs per scaling run; the first epoch absorbs process start-up and
#: corpus generation, so throughput is read from the later epochs.
SCALING_EPOCHS = 3

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_training.json"
MANIFEST_PATH = REPORT_PATH.with_name("BENCH_training_manifest.json")

#: Telemetry-off overhead budget for ``train_epoch`` (fraction of the
#: disabled baseline).  The null-registry contract says the disabled
#: path costs one attribute check per batch, so the delta should drown
#: in run-to-run noise; the assertion uses a noise-tolerant bound.
MAX_DISABLED_OVERHEAD = 0.25
#: Interleaved timed epochs per path for the overhead measurement.  An
#: earlier single-shot version timed the disabled path on a model's
#: *first* epoch and the enabled path on a warm one, reporting a
#: nonsensical -24% "overhead"; both paths are now warmed once and the
#: repeats interleaved so drift hits them symmetrically, with the
#: reported fraction taken from per-path medians.  Epoch-to-epoch noise
#: on a busy host is ~±10%, so the median needs a handful of samples to
#: settle near the true (per-batch attribute check) delta.
TELEMETRY_REPEATS = 5


def run_throughput(
    num_users: int = PRESET["num_users"],
    num_items: int = PRESET["num_items"],
    dim: int = DIM,
    seed: int = BENCH_SEED,
) -> dict:
    """Measure sequential vs batched context generation and train epoch."""
    data = SyntheticSocialDataset.digg_like(
        num_users=num_users, num_items=num_items, seed=seed
    )
    config = Inf2vecConfig(
        dim=dim, context=ContextConfig(length=50, alpha=0.1), epochs=1
    )

    sequential_corpus, seq_context_seconds = timed(
        lambda: ContextGenerator(
            data.graph, config.context, seed=seed, batched=False
        ).generate(data.log)
    )
    batched_corpus, bat_context_seconds = timed(
        lambda: ContextGenerator(
            data.graph, config.context, seed=seed, batched=True
        ).generate(data.log)
    )

    corpus = batched_corpus

    sequential_model = Inf2vecModel(config, seed=seed)
    sequential_model.fit_contexts(corpus[:1], num_users=data.graph.num_nodes)
    _, seq_train_seconds = timed(
        lambda: sequential_model.train_epoch_sequential(corpus)
    )

    batched_model = Inf2vecModel(config, seed=seed)
    batched_model.fit_contexts(corpus[:1], num_users=data.graph.num_nodes)
    _, bat_train_seconds = timed(lambda: batched_model.train_epoch(corpus))

    # Telemetry tax: the same epoch with the registry disabled vs live.
    # Both models are warmed with one untimed epoch first, then the
    # timed repeats are interleaved disabled/enabled so allocator and
    # frequency drift hit the two paths symmetrically; the reported
    # overhead is the ratio of per-path medians.
    run = RunRecorder(name="bench.training_throughput")
    run.set_config(config)
    run.set_dataset(
        preset="digg_like", num_users=num_users, num_items=num_items
    )
    run.annotate(seed=seed, num_contexts=len(corpus))
    disabled_model = Inf2vecModel(config, seed=seed)
    disabled_model.fit_contexts(corpus[:1], num_users=data.graph.num_nodes)
    telemetry_model = Inf2vecModel(config, seed=seed)
    telemetry_model.fit_contexts(corpus[:1], num_users=data.graph.num_nodes)
    disabled_model.train_epoch(corpus)  # warm-up, untimed
    with recording(run):
        telemetry_model.train_epoch(corpus)  # warm-up, untimed
    disabled_times: list[float] = []
    enabled_times: list[float] = []
    for repeat in range(TELEMETRY_REPEATS):
        _, seconds = timed(lambda: disabled_model.train_epoch(corpus))
        disabled_times.append(seconds)
        with recording(run):
            with run.span("train_epoch", engine="batched", repeat=repeat):
                _, seconds = timed(lambda: telemetry_model.train_epoch(corpus))
        enabled_times.append(seconds)
    disabled_median = statistics.median(disabled_times)
    enabled_median = statistics.median(enabled_times)
    write_manifest(run)

    return {
        "preset": "digg_like",
        "num_users": num_users,
        "num_items": num_items,
        "dim": dim,
        "seed": seed,
        "num_contexts": {
            "sequential": len(sequential_corpus),
            "batched": len(batched_corpus),
        },
        "context_generation": {
            "sequential_seconds": seq_context_seconds,
            "batched_seconds": bat_context_seconds,
            "speedup": seq_context_seconds / bat_context_seconds,
        },
        "train_epoch": {
            "sequential_seconds": seq_train_seconds,
            "batched_seconds": bat_train_seconds,
            "speedup": seq_train_seconds / bat_train_seconds,
        },
        "telemetry": {
            "repeats": TELEMETRY_REPEATS,
            "disabled_seconds": disabled_median,
            "enabled_seconds": enabled_median,
            "overhead_fraction": enabled_median / disabled_median - 1.0,
            "manifest": MANIFEST_PATH.name,
        },
    }


def default_worker_counts(smoke: bool = False) -> tuple[int, ...]:
    """The scaling section's default counts, clipped to real cores.

    Keeps at least the 1-worker baseline even on a 1-core host so the
    absolute-throughput row (which the regression gate tracks) always
    exists.
    """
    counts = SMOKE_SCALING_WORKERS if smoke else SCALING_WORKERS
    cpu_count = os.cpu_count() or 1
    return tuple(w for w in counts if w <= cpu_count) or (1,)


def run_scaling(
    num_users: int = PRESET["num_users"],
    num_items: int = PRESET["num_items"],
    dim: int = DIM,
    seed: int = BENCH_SEED,
    worker_counts: tuple[int, ...] = SCALING_WORKERS,
) -> dict:
    """Hogwild epoch throughput at each worker count on the preset.

    One trainer per count, same data and config; per-count throughput
    is positives/second over the post-warm-up epochs, and the derived
    columns are ``speedup_vs_1`` and ``scaling_efficiency``
    (speedup / workers).
    """
    data = SyntheticSocialDataset.digg_like(
        num_users=num_users, num_items=num_items, seed=seed
    )
    config = Inf2vecConfig(
        dim=dim,
        context=ContextConfig(length=50, alpha=0.1),
        epochs=SCALING_EPOCHS,
        convergence_tol=0.0,
    )
    positives = sum(
        len(context)
        for context in ContextGenerator(
            data.graph, config.context, seed=seed, batched=True
        ).generate(data.log)
    )

    cpu_count = os.cpu_count() or 1
    columns: dict[str, dict] = {}
    baseline_rate = None
    for workers in worker_counts:
        trainer = HogwildTrainer(config, workers=workers, seed=seed)
        trainer.fit(data.graph, data.log)
        # Skip the first epoch: it overlaps worker start-up noise.
        steady = trainer.epoch_seconds[1:] or trainer.epoch_seconds
        epoch_seconds = sum(steady) / len(steady)
        rate = positives / epoch_seconds if epoch_seconds > 0 else 0.0
        if baseline_rate is None:
            baseline_rate = rate
        speedup = rate / baseline_rate if baseline_rate else 0.0
        columns[str(workers)] = {
            "epoch_seconds": epoch_seconds,
            "examples_per_sec": rate,
            "speedup_vs_1": speedup,
            "scaling_efficiency": speedup / workers,
            # More workers than cores measures the scheduler, not the
            # engine; flagged so readers discount those rows (booleans
            # are invisible to the regression gate's numeric flatten).
            "oversubscribed": workers > cpu_count,
        }
    return {
        "preset": "digg_like",
        "num_users": num_users,
        "num_items": num_items,
        "dim": dim,
        "seed": seed,
        "epochs_timed": SCALING_EPOCHS,
        "positives_per_epoch": positives,
        "cpu_count": cpu_count,
        "workers": columns,
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> None:
    """Persist the measured speedups next to the repository root."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def write_manifest(run: RunRecorder, path: Path = MANIFEST_PATH) -> None:
    """Persist the telemetry run manifest beside the speedup report."""
    run.write(path)


def print_report(results: dict) -> None:
    """Human-readable summary of one measurement."""
    print(
        f"\nTraining throughput — digg_like("
        f"num_users={results['num_users']}), K={results['dim']}"
    )
    print(f"{'stage':<20}{'sequential':>12}{'batched':>12}{'speedup':>9}")
    for stage in ("context_generation", "train_epoch"):
        row = results[stage]
        print(
            f"{stage:<20}{row['sequential_seconds']:>11.2f}s"
            f"{row['batched_seconds']:>11.2f}s{row['speedup']:>8.1f}x"
        )
    telemetry = results["telemetry"]
    print(
        f"telemetry overhead  {telemetry['disabled_seconds']:>11.2f}s"
        f"{telemetry['enabled_seconds']:>11.2f}s"
        f"{telemetry['overhead_fraction']:>+8.1%}"
    )
    parallel = results.get("parallel")
    if parallel:
        print(
            f"\nHogwild scaling — {parallel['positives_per_epoch']} "
            f"positives/epoch, host cpu_count={parallel['cpu_count']}"
        )
        print(
            f"{'workers':<10}{'epoch':>10}{'examples/s':>13}"
            f"{'speedup':>9}{'efficiency':>12}"
        )
        for workers, row in parallel["workers"].items():
            flag = "  (oversubscribed)" if row.get("oversubscribed") else ""
            print(
                f"{workers:<10}{row['epoch_seconds']:>9.2f}s"
                f"{row['examples_per_sec']:>13.0f}"
                f"{row['speedup_vs_1']:>8.2f}x"
                f"{row['scaling_efficiency']:>12.2f}{flag}"
            )


def test_training_throughput(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_throughput)
    results["parallel"] = run_scaling(
        num_users=results["num_users"],
        num_items=results["num_items"],
        worker_counts=default_worker_counts(),
    )
    print_report(results)
    write_report(results)
    # Regression guard: the batched engine must stay clearly ahead of
    # the sequential reference on both stages (the committed report
    # records the actual margins, >= 3x on this preset).
    assert results["context_generation"]["speedup"] > 1.5, results
    assert results["train_epoch"]["speedup"] > 1.5, results
    # Observability guard: recording telemetry may not blow up the
    # epoch, and the manifest must capture what the epoch did.
    assert results["telemetry"]["overhead_fraction"] < MAX_DISABLED_OVERHEAD, results
    manifest = json.loads(MANIFEST_PATH.read_text())
    assert manifest["metrics"], manifest.keys()
    assert any(s["name"] == "train_epoch" for s in manifest["spans"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI working point (small dataset, same code paths)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        action="append",
        metavar="N",
        help="hogwild worker count to measure (repeatable; default: "
        f"{SCALING_WORKERS}, or {SMOKE_SCALING_WORKERS} with --smoke, "
        "clipped to os.cpu_count(); explicit counts beyond the core "
        "count are honoured but flagged oversubscribed)",
    )
    args = parser.parse_args()
    preset = SMOKE_PRESET if args.smoke else PRESET
    if args.workers:
        worker_counts = tuple(args.workers)
        if 1 not in worker_counts:
            worker_counts = (1,) + worker_counts  # speedup needs the baseline
        worker_counts = tuple(sorted(set(worker_counts)))
    else:
        worker_counts = default_worker_counts(smoke=args.smoke)
    results = run_throughput(
        num_users=preset["num_users"], num_items=preset["num_items"]
    )
    results["parallel"] = run_scaling(
        num_users=preset["num_users"],
        num_items=preset["num_items"],
        worker_counts=worker_counts,
    )
    print_report(results)
    write_report(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
