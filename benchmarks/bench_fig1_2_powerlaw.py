"""Benchmark F1/F2 — regenerate Figures 1–2 (power-law frequencies)."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import fig1_2_powerlaw


def test_fig1_2_powerlaw(benchmark):
    rows = run_once(benchmark, fig1_2_powerlaw.run, BENCH_SCALE, BENCH_SEED)

    print("\nFigures 1-2 — influence-pair frequency distributions")
    print(f"{'Dataset':<14}{'Role':<8}{'users':>7}{'max f':>7}{'alpha':>8}{'R^2':>8}")
    for row in rows:
        print(
            f"{row.dataset:<14}{row.role:<8}{row.num_active:>7}"
            f"{row.max_frequency:>7}{row.fit.exponent:>8.2f}"
            f"{row.fit.r_squared:>8.3f}"
        )

    assert len(rows) == 4
    for row in rows:
        # Paper shape: heavy-tailed, straight in log-log space.
        assert row.fit.exponent > 1.0, f"{row.dataset}/{row.role} not heavy tailed"
        assert row.fit.r_squared > 0.7, (
            f"{row.dataset}/{row.role} log-log fit too poor: {row.fit.r_squared}"
        )
        # A genuinely heavy tail: the most extreme user is far above typical.
        assert row.max_frequency >= 10
