"""Benchmark T3 — regenerate Table III (diffusion prediction).

Paper reference (Digg): Inf2vec AUC 0.8904 / MAP 0.1793; MF 0.8677 /
0.1347; EM 0.7095 / 0.1241; ST 0.6874 / 0.1064; Emb-IC 0.6649 /
0.1047; Node2vec 0.6606 / 0.0219; DE 0.6183 / 0.0173.

Shape assertions: representation models (Inf2vec, MF) dominate the
IC-based methods on AUC for the high-order task; Inf2vec at least
matches MF; DE and Node2vec trail on MAP.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import table3_diffusion


def test_table3_diffusion(benchmark):
    results = run_once(benchmark, table3_diffusion.run, BENCH_SCALE, BENCH_SEED)

    for result in results:
        print(f"\nTable III — diffusion prediction on {result.dataset}")
        print(result.table())

    for result in results:
        rows = {name: r.as_row() for name, r in result.rows.items()}
        inf2vec = rows["Inf2vec"]
        for baseline in ("DE", "ST", "EM", "Emb-IC", "Node2vec"):
            assert inf2vec["AUC"] > rows[baseline]["AUC"], (
                f"{result.dataset}: Inf2vec AUC {inf2vec['AUC']:.4f} "
                f"not above {baseline} {rows[baseline]['AUC']:.4f}"
            )
        assert inf2vec["AUC"] > rows["MF"]["AUC"] - 0.02
        # Representation models dominate IC methods on this task (paper's
        # headline for Table III).
        assert max(inf2vec["AUC"], rows["MF"]["AUC"]) > max(
            rows["ST"]["AUC"], rows["EM"]["AUC"], rows["Emb-IC"]["AUC"]
        )
        assert rows["DE"]["MAP"] < inf2vec["MAP"]
