"""Benchmark F6 — regenerate Figure 6 (t-SNE pair proximity).

Paper: in the t-SNE projection of the nodes of the most frequent
influence pairs, only Inf2vec places both members of each highlighted
pair close together.  Quantified as the mean distance percentile of
the highlighted pairs (lower = closer).
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import fig6_visualization


def test_fig6_visualization(benchmark):
    result = run_once(
        benchmark,
        fig6_visualization.run,
        BENCH_SCALE,
        BENCH_SEED,
        num_top_pairs=150,
        highlight=5,
    )

    print(f"\nFigure 6 — top-pair distance percentile ({result.dataset})")
    for name, pct in sorted(result.mean_percentiles().items(), key=lambda kv: kv[1]):
        print(f"  {name:<10} {pct:.3f}")

    percentiles = result.mean_percentiles()
    # Paper shape: Inf2vec's highlighted pairs are close — at or near
    # the best of the four models, and in the closest decile overall.
    assert percentiles["Inf2vec"] < 0.25, percentiles
    others_best = min(
        percentiles[name] for name in ("Emb-IC", "MF", "Node2vec")
    )
    assert percentiles["Inf2vec"] <= others_best + 0.05, percentiles
