"""Bench S — the multi-run mean ± σ protocol of Tables II–III.

The paper reports latent models as the mean of 10 runs, quotes
Inf2vec's σ (tiny: 0.0003–0.003 on AUC), and claims p < 0.05 over the
baselines.  At bench scale 3 runs keep the wall-clock sane; the shape
assertions are that the run-to-run σ is small relative to the means
and that the paired comparison machinery produces valid p-values.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import significance
from repro.experiments.common import ExperimentScale

#: A lighter working point: this bench retrains 2 models x N runs.
SIG_SCALE = ExperimentScale(
    name="sig-bench",
    num_users=300,
    num_items=150,
    dim=16,
    context_length=20,
    alpha=0.2,
    learning_rate=0.015,
    epochs=10,
    num_negatives=5,
    mc_runs=50,
)


def test_multi_run_significance(benchmark):
    result = run_once(
        benchmark, significance.run, SIG_SCALE, BENCH_SEED, num_runs=3
    )

    print(f"\nMulti-run protocol on {result.dataset} (activation)")
    for line in result.summary_lines():
        print(f"  {line}")

    # Run-to-run σ must be small relative to the mean (the paper's σ
    # is 0.1-1% of the mean; allow up to 10% at this tiny scale).
    auc_mean = result.inf2vec.mean("AUC")
    auc_std = result.inf2vec.std("AUC")
    assert auc_std < 0.1 * auc_mean, (auc_mean, auc_std)
    # The paired test machinery produces a valid p-value.
    assert 0.0 <= result.tests["AUC"].p_value <= 1.0
