"""Benchmark F8 — regenerate Figure 8 (MAP vs context length L).

Paper: MAP rises with L (more training instances) and flattens; the
largest L gains little over the mid-range, which is why L=50 is the
chosen trade-off.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import fig8_context_length

LENGTHS = (5, 10, 20, 40)


def test_fig8_context_length(benchmark):
    sweeps = run_once(
        benchmark,
        fig8_context_length.run,
        BENCH_SCALE,
        BENCH_SEED,
        lengths=LENGTHS,
        profiles=("digg", "flickr"),
    )

    for sweep in sweeps:
        print(f"\nFigure 8 — MAP vs L on {sweep.dataset}")
        for length, value in sweep.series("MAP").items():
            print(f"  L={length:<4} MAP={value:.4f}")

    for sweep in sweeps:
        series = sweep.series("MAP")
        values = [series[length] for length in LENGTHS]
        # Paper shape: longer contexts beat the shortest; the curve is
        # rising-then-flat rather than peaked at the start.
        assert max(values[1:]) > values[0], series
        assert sweep.best_length("MAP") != LENGTHS[0], series
