"""Benchmark T2 — regenerate Table II (activation prediction).

Paper reference (Digg): Inf2vec AUC 0.8893 / MAP 0.2744; ST 0.8619 /
0.1790; EM 0.8623 / 0.2071; Emb-IC 0.8072 / 0.1503; MF 0.8568 /
0.1691; Node2vec 0.6437 / 0.0322; DE 0.4144 / 0.0170.

Shape assertions (synthetic substitution): Inf2vec ahead of the
IC-based and structural baselines; DE and Node2vec trail; MF
competitive.  Absolute values are not compared.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import table2_activation


def test_table2_activation(benchmark):
    results = run_once(benchmark, table2_activation.run, BENCH_SCALE, BENCH_SEED)

    for result in results:
        print(f"\nTable II — activation prediction on {result.dataset}")
        print(result.table())

    for result in results:
        rows = {name: r.as_row() for name, r in result.rows.items()}
        inf2vec = rows["Inf2vec"]
        # Inf2vec beats the IC-based methods and the structural baseline.
        for baseline in ("DE", "ST", "EM", "Emb-IC", "Node2vec"):
            assert inf2vec["AUC"] > rows[baseline]["AUC"], (
                f"{result.dataset}: Inf2vec AUC {inf2vec['AUC']:.4f} "
                f"not above {baseline} {rows[baseline]['AUC']:.4f}"
            )
        # Inf2vec at least matches MF (interest-only) on AUC.
        assert inf2vec["AUC"] > rows["MF"]["AUC"] - 0.02
        # DE is the weakest learner; Node2vec well below count methods.
        assert rows["DE"]["AUC"] < rows["ST"]["AUC"]
        assert rows["Node2vec"]["MAP"] < rows["Inf2vec"]["MAP"]
