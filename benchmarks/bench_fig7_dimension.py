"""Benchmark F7 — regenerate Figure 7 (MAP vs dimension K).

Paper: MAP rises with K, peaks around K = 50-100, then dips — capacity
helps until the parameter count outgrows the sparse observations.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import fig7_dimension

DIMENSIONS = (4, 8, 16, 32)


def test_fig7_dimension(benchmark):
    sweeps = run_once(
        benchmark,
        fig7_dimension.run,
        BENCH_SCALE,
        BENCH_SEED,
        dimensions=DIMENSIONS,
        profiles=("digg", "flickr"),
    )

    for sweep in sweeps:
        print(f"\nFigure 7 — MAP vs K on {sweep.dataset}")
        for dim, value in sweep.series("MAP").items():
            print(f"  K={dim:<4} MAP={value:.4f}")

    for sweep in sweeps:
        series = sweep.series("MAP")
        values = [series[k] for k in DIMENSIONS]
        # Paper shape: the smallest K is never the best choice, and the
        # curve's peak clearly beats the K=4 starting point.
        assert sweep.best_dimension("MAP") != DIMENSIONS[0], series
        assert max(values) > values[0], series
