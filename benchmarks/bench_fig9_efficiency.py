"""Benchmark F9 — regenerate Figure 9 (per-iteration time vs K).

Paper: per-iteration time grows (near-)linearly in K for both Inf2vec
and Emb-IC, and Inf2vec's iteration is several times cheaper (6x on
Digg / 12x on Flickr at K=50) because flat SGD over pre-generated
contexts avoids Emb-IC's per-cascade EM machinery.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import fig9_efficiency

DIMENSIONS = (8, 16, 32)


def test_fig9_efficiency(benchmark):
    results = run_once(
        benchmark,
        fig9_efficiency.run,
        BENCH_SCALE,
        BENCH_SEED,
        dimensions=DIMENSIONS,
        profiles=("digg", "flickr"),
    )

    for result in results:
        print(f"\nFigure 9 — per-iteration seconds on {result.dataset}")
        print(f"{'K':>5}{'Inf2vec':>10}{'Emb-IC':>10}{'speedup':>9}")
        for dim, point in sorted(result.points.items()):
            print(
                f"{dim:>5}{point.inf2vec_seconds:>10.3f}"
                f"{point.emb_ic_seconds:>10.3f}{point.speedup:>9.1f}"
            )

    for result in results:
        # Emb-IC's cost grows visibly with K.  (Inf2vec's K-dependence
        # is real but hidden at bench scale: its per-context Python
        # overhead dominates the K-proportional numpy work, so its
        # curve is flat-with-noise here and is not asserted.)
        series_emb = result.series("emb_ic")
        assert series_emb[DIMENSIONS[-1]] > series_emb[DIMENSIONS[0]], series_emb
        # Inf2vec's iteration is several times cheaper at every K —
        # the paper's headline (6x on Digg / 12x on Flickr at K=50).
        for dim, point in result.points.items():
            assert point.speedup > 1.5, (
                f"{result.dataset} K={dim}: Inf2vec not clearly faster "
                f"(speedup {point.speedup:.2f})"
            )
