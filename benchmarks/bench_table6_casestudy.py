"""Benchmark T6 — regenerate Table VI (citation case study).

Paper: average top-10 precision 0.1863 (embedding) vs 0.0616
(conventional ST + Monte-Carlo) on the DBLP data-engineering subset —
a ~3x gap driven by pair-level sparsity.  Shape assertion: the
embedding model is clearly ahead on the synthetic citation corpus.
"""

from conftest import BENCH_SEED, run_once

from repro.experiments import table6_casestudy


def test_table6_casestudy(benchmark):
    result = run_once(
        benchmark, table6_casestudy.run, "medium", BENCH_SEED, mc_runs=150
    )

    print("\nTable VI — citation case study")
    print(f"embedding    precision@10: {result.embedding_precision:.4f}")
    print(f"conventional precision@10: {result.conventional_precision:.4f}")
    print(f"ratio: {result.precision_ratio:.2f}x (paper ~3x)")
    for row in result.showcase:
        print(
            f"  author {row.author:>4}: embedding {row.embedding_hits}/10, "
            f"conventional {row.conventional_hits}/10"
        )

    assert result.embedding_precision > result.conventional_precision, (
        f"embedding {result.embedding_precision:.4f} vs "
        f"conventional {result.conventional_precision:.4f}"
    )
    assert result.num_test_authors >= 50
