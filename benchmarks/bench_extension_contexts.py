"""Extension bench — alternative context-generation strategies.

The paper's conclusion proposes exploring context generators beyond
Algorithm 1's uniform random walk.  This bench compares, on the same
split:

* standard Algorithm 1 contexts (the paper),
* time-aware contexts (`repro.extensions.temporal_context`) whose
  walks and global samples prefer temporally close adoptions,
* the topic-aware routing model (`repro.extensions.topic_inf2vec`).

Assertions are loose: extensions must be competitive (no collapse),
not necessarily better — they are research directions, not claims.
"""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.baselines import Inf2vecMethod
from repro.core.context import ContextConfig
from repro.core.inf2vec import Inf2vecModel
from repro.core.prediction import EmbeddingPredictor
from repro.eval.activation import evaluate_activation
from repro.experiments.common import make_dataset
from repro.extensions.temporal_context import (
    TemporalContextConfig,
    TemporalContextGenerator,
)
from repro.extensions.topic_inf2vec import TopicConfig, TopicInf2vec


def _run_variants():
    data = make_dataset("digg", BENCH_SCALE, BENCH_SEED)
    train, _tune, test = data.log.split((0.8, 0.1, 0.1), seed=BENCH_SEED)
    config = BENCH_SCALE.inf2vec_config()
    rows = {}

    standard = Inf2vecMethod(config, seed=BENCH_SEED).fit(data.graph, train)
    rows["standard"] = evaluate_activation(standard.predictor(), data.graph, test)

    temporal_corpus = TemporalContextGenerator(
        data.graph,
        TemporalContextConfig(
            base=ContextConfig(
                length=BENCH_SCALE.context_length, alpha=BENCH_SCALE.alpha
            ),
            decay=10.0,
        ),
        seed=BENCH_SEED,
    ).generate(train)
    temporal_model = Inf2vecModel(config, seed=BENCH_SEED)
    temporal_model.fit_contexts(temporal_corpus, num_users=data.graph.num_nodes)
    rows["temporal"] = evaluate_activation(
        EmbeddingPredictor(temporal_model.embedding), data.graph, test
    )

    topic_model = TopicInf2vec(
        config, TopicConfig(num_topics=3), seed=BENCH_SEED
    ).fit(data.graph, train)
    rows["topic-aware"] = topic_model.evaluate_activation(data.graph, test)
    return rows


def test_extension_context_strategies(benchmark):
    rows = run_once(benchmark, _run_variants)

    print("\nExtensions — context-generation strategies (activation, digg-like)")
    for name, result in rows.items():
        print(f"  {name:<12} {result}")

    standard_auc = rows["standard"].auc
    for name, result in rows.items():
        assert result.auc > 0.5, f"{name} collapsed to random"
        assert result.auc > standard_auc - 0.12, (
            f"{name} far below standard: {result.auc:.4f} vs {standard_auc:.4f}"
        )
