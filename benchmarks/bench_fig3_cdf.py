"""Benchmark F3 — regenerate Figure 3 (active-friend CDF)."""

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.experiments import fig3_cdf


def test_fig3_cdf(benchmark):
    rows = run_once(benchmark, fig3_cdf.run, BENCH_SCALE, BENCH_SEED)

    print("\nFigure 3 — CDF of active friends at adoption")
    xs = sorted(rows[0].cdf)
    print(f"{'x':>4}" + "".join(f"{row.dataset:>14}" for row in rows))
    for x in xs:
        print(f"{x:>4}" + "".join(f"{row.cdf[x]:>14.3f}" for row in rows))

    digg, flickr = rows
    # Paper: CDF(0) = 0.7 on Digg, 0.5 on Flickr.
    assert abs(digg.cdf0 - digg.paper_cdf0) < 0.12, digg.cdf0
    assert abs(flickr.cdf0 - flickr.paper_cdf0) < 0.12, flickr.cdf0
    assert digg.cdf0 > flickr.cdf0
    # CDFs are monotone and reach (nearly) 1.
    for row in rows:
        values = [row.cdf[x] for x in xs]
        assert values == sorted(values)
        assert values[-1] > 0.9
