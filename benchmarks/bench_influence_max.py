"""Benchmark — sketch-based (RIS/IMM) vs Monte-Carlo seed selection.

Selects ``k = 10`` viral-marketing seeds on the planted ground-truth
probabilities of both synthetic presets (``digg_like`` and
``flickr_like`` at 2000 users) with three engines:

* ``mc_greedy`` — CELF lazy greedy over Monte-Carlo spread estimates.
  At the full working point it scans *all* nodes — the textbook
  baseline RIS replaces; the smoke point restricts it to the
  highest-out-degree candidates (``mc_candidates``) to keep CI fast,
  at a visible cost in selected-set quality;
* ``ris`` — :func:`repro.apps.ris_influence_maximization`: an
  adaptively sized reverse-reachable sketch pool (IMM schedule) plus
  max-coverage selection, over *all* nodes;
* ``ris_pruned`` — RIS over an embedding-pruned candidate pool from
  the serving layer's aggregate-influence ranking (the embedding is
  trained once here and its cost reported separately, matching the
  deployment premise that the serving store already exists).

Every method's final seed set is re-evaluated with a *common* seeded
Monte-Carlo estimator (spread ± standard error), so the quality
comparison is apples-to-apples and independent of each method's
internal estimates — the RIS coverage estimate of its own selection is
upward-biased by the selection step.  Per-method prefix spreads
(``k = 1..10`` of the selection order) give the spread-vs-wall-clock
curve; selection wall time, MC-evaluated spread, and the RIS-vs-MC
speedup land in ``BENCH_influence_max.json`` for the
:mod:`repro.obs.regress` gate.  Sketch telemetry (RR-set counters,
schedule spans) is persisted to ``BENCH_influence_max_manifest.json``.

Run standalone with ``python benchmarks/bench_influence_max.py`` (add
``--smoke`` for the fast CI working point) or under pytest-benchmark
with ``pytest benchmarks/bench_influence_max.py --benchmark-only``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.apps.influence_max import (
    greedy_influence_maximization,
    ris_influence_maximization,
    ris_pruned_influence_maximization,
)
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.data.synthetic import SyntheticSocialDataset
from repro.diffusion.montecarlo import expected_spread, spread_with_standard_error
from repro.obs import RunRecorder, recording

#: Acceptance working point: both presets at 2000 users.
#: ``mc_candidates=0`` means unrestricted: MC greedy scans every node.
PRESET = dict(num_users=2000, num_seeds=10, mc_runs=200, mc_candidates=0,
              eval_runs=1000, curve_runs=300, train_epochs=5, dim=16,
              epsilon=0.2)
#: CI working point: same code paths, seconds instead of minutes.  The
#: looser epsilon keeps the sketch pool proportionate to the tiny MC
#: working point — at 300 users the IMM schedule's fixed lambda' term
#: dominates and a 0.2-epsilon pool would dwarf the graph.
SMOKE_PRESET = dict(num_users=300, num_seeds=5, mc_runs=20, mc_candidates=40,
                    eval_runs=200, curve_runs=100, train_epochs=2, dim=8,
                    epsilon=0.3)
BENCH_SEED = 20180416  # ICDE 2018 week, arbitrary but memorable

DATASETS = ("digg_like", "flickr_like")

REPORT_PATH = Path(__file__).resolve().parents[1] / "BENCH_influence_max.json"
MANIFEST_PATH = REPORT_PATH.with_name("BENCH_influence_max_manifest.json")


def _top_out_degree(graph, count: int):
    """The ``count`` highest-out-degree nodes, as a sorted id array."""
    out_degrees = np.diff(graph.out_csr()[0])
    return np.sort(np.argsort(-out_degrees)[: min(count, graph.num_nodes)])


def _counter_value(run: RunRecorder, name: str) -> float:
    """Total of one unlabelled counter in the run's registry, or 0."""
    samples = run.metrics.snapshot().get(name, {}).get("samples", {})
    return float(sum(samples.values()))


def _evaluate(probabilities, seeds, eval_runs, curve_runs, seed) -> dict:
    """Common MC evaluation: final spread ± SE plus the prefix curve."""
    spread, stderr = spread_with_standard_error(
        probabilities, seeds, num_runs=eval_runs, seed=seed
    )
    curve = [
        {
            "k": k,
            "spread": expected_spread(
                probabilities, seeds[:k], num_runs=curve_runs, seed=seed + k
            ),
        }
        for k in range(1, len(seeds) + 1)
    ]
    return {"spread": spread, "spread_se": stderr, "curve": curve}


def run_influence_max(
    num_users: int = PRESET["num_users"],
    num_seeds: int = PRESET["num_seeds"],
    mc_runs: int = PRESET["mc_runs"],
    mc_candidates: int = PRESET["mc_candidates"],
    eval_runs: int = PRESET["eval_runs"],
    curve_runs: int = PRESET["curve_runs"],
    train_epochs: int = PRESET["train_epochs"],
    dim: int = PRESET["dim"],
    epsilon: float = PRESET["epsilon"],
    seed: int = BENCH_SEED,
) -> dict:
    """Time and evaluate all three selection engines on both presets."""
    run = RunRecorder(name="bench.influence_max")
    run.set_config(
        {
            "num_users": num_users,
            "num_seeds": num_seeds,
            "mc_runs": mc_runs,
            "mc_candidates": mc_candidates,
            "eval_runs": eval_runs,
        }
    )
    run.annotate(seed=seed)

    presets: dict[str, dict] = {}
    with recording(run):
        for name in DATASETS:
            maker = getattr(SyntheticSocialDataset, name)
            dataset = maker(num_users=num_users, seed=seed)
            probabilities = dataset.planted.edge_probabilities
            graph = dataset.graph
            eval_seed = seed + 1
            methods: dict[str, dict] = {}

            with run.span("bench.mc_greedy", preset=name):
                candidates = (
                    _top_out_degree(graph, mc_candidates)
                    if mc_candidates
                    else None
                )
                began = time.perf_counter()
                mc_sel = greedy_influence_maximization(
                    probabilities,
                    num_seeds,
                    num_runs=mc_runs,
                    seed=seed,
                    candidates=candidates,
                )
                mc_seconds = time.perf_counter() - began
            methods["mc_greedy"] = {
                "selection_seconds": mc_seconds,
                "internal_estimate": mc_sel.expected_spread,
                "num_candidates": (
                    int(candidates.shape[0])
                    if candidates is not None
                    else graph.num_nodes
                ),
                "seeds": [int(s) for s in mc_sel.seeds],
                **_evaluate(
                    probabilities, mc_sel.seeds, eval_runs, curve_runs, eval_seed
                ),
            }

            rr_before = _counter_value(run, "sketch.rr_sets")
            with run.span("bench.ris", preset=name):
                began = time.perf_counter()
                ris_sel = ris_influence_maximization(
                    probabilities, num_seeds, epsilon=epsilon, seed=seed
                )
                ris_seconds = time.perf_counter() - began
            repeat = ris_influence_maximization(
                probabilities, num_seeds, epsilon=epsilon, seed=seed
            )
            if repeat.seeds != ris_sel.seeds:
                raise AssertionError(
                    f"RIS selection not deterministic on {name}: "
                    f"{ris_sel.seeds} vs {repeat.seeds}"
                )
            methods["ris"] = {
                "selection_seconds": ris_seconds,
                "internal_estimate": ris_sel.expected_spread,
                "rr_sets": _counter_value(run, "sketch.rr_sets") - rr_before,
                "seeds": [int(s) for s in ris_sel.seeds],
                **_evaluate(
                    probabilities, ris_sel.seeds, eval_runs, curve_runs, eval_seed
                ),
            }

            with run.span("bench.train_embedding", preset=name):
                began = time.perf_counter()
                model = Inf2vecModel(
                    Inf2vecConfig(dim=dim, epochs=train_epochs), seed=seed
                )
                model.fit(dataset.graph, dataset.log)
                train_seconds = time.perf_counter() - began
            with run.span("bench.ris_pruned", preset=name):
                began = time.perf_counter()
                pruned_sel = ris_pruned_influence_maximization(
                    probabilities,
                    model.embedding,
                    num_seeds,
                    epsilon=epsilon,
                    seed=seed,
                )
                pruned_seconds = time.perf_counter() - began
            methods["ris_pruned"] = {
                "selection_seconds": pruned_seconds,
                "train_seconds": train_seconds,
                "internal_estimate": pruned_sel.expected_spread,
                "seeds": [int(s) for s in pruned_sel.seeds],
                **_evaluate(
                    probabilities, pruned_sel.seeds, eval_runs, curve_runs, eval_seed
                ),
            }

            gap_se = (
                (methods["mc_greedy"]["spread"] - methods["ris"]["spread"])
                / methods["ris"]["spread_se"]
                if methods["ris"]["spread_se"] > 0
                else 0.0
            )
            presets[name] = {
                "num_users": graph.num_nodes,
                "num_edges": graph.num_edges,
                "methods": methods,
                "speedup_ris_vs_mc": mc_seconds / ris_seconds,
                "spread_gap_standard_errors": gap_se,
            }
    run.write(MANIFEST_PATH)

    return {
        "num_seeds": num_seeds,
        "seed": seed,
        "mc_runs": mc_runs,
        "mc_candidates": mc_candidates,
        "eval_runs": eval_runs,
        "curve_runs": curve_runs,
        "train_epochs": train_epochs,
        "dim": dim,
        "epsilon": epsilon,
        "presets": presets,
        "telemetry": {"manifest": MANIFEST_PATH.name},
    }


def write_report(results: dict, path: Path = REPORT_PATH) -> None:
    """Persist the selection measurements next to the repository root."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def print_report(results: dict) -> None:
    """Human-readable summary of one measurement."""
    for name, preset in results["presets"].items():
        print(
            f"\nInfluence maximisation — {name}"
            f"({preset['num_users']} users, {preset['num_edges']} edges),"
            f" k={results['num_seeds']}"
        )
        print(f"{'method':<12}{'select':>10}{'spread':>16}{'estimate':>10}")
        for method, row in preset["methods"].items():
            print(
                f"{method:<12}{row['selection_seconds']:>9.3f}s"
                f"{row['spread']:>10.2f} ± {row['spread_se']:4.2f}"
                f"{row['internal_estimate']:>10.2f}"
            )
        print(
            f"RIS vs MC greedy: {preset['speedup_ris_vs_mc']:.1f}x faster, "
            f"spread gap {preset['spread_gap_standard_errors']:+.2f} SE"
        )


def test_influence_max(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_influence_max, **SMOKE_PRESET)
    print_report(results)
    write_report(results)
    for name, preset in results["presets"].items():
        # The 10x acceptance speedup only materialises at the full
        # working point (MC cost grows with graph size and run count
        # much faster than the sketch pool); at the smoke point the
        # assertion is a sanity floor against RIS becoming pathological.
        # Quality bar: no worse than 3 standard errors below the MC
        # selection's commonly-evaluated spread.
        assert preset["speedup_ris_vs_mc"] > 0.5, (name, preset)
        assert preset["spread_gap_standard_errors"] < 3.0, (name, preset)
        assert preset["methods"]["ris"]["rr_sets"] > 0, (name, preset)
    manifest = json.loads(MANIFEST_PATH.read_text())
    assert "sketch.rr_sets" in manifest["metrics"], manifest["metrics"].keys()
    assert any(s["name"] == "sketch.schedule" for s in manifest["spans"])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast CI working point (small graphs, few MC runs)",
    )
    args = parser.parse_args()
    results = run_influence_max(**(SMOKE_PRESET if args.smoke else PRESET))
    print_report(results)
    write_report(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
