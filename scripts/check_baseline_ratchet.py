#!/usr/bin/env python
"""Fail if the analysis baseline grew relative to the merge base.

The checked-in ``.analysis-baseline.json`` is a ratchet: entries may
be removed as grandfathered findings get fixed, but a change may never
*add* entries — new code must satisfy every invariant outright rather
than grandfathering fresh violations.  CI runs this against the merge
base of the target branch::

    python scripts/check_baseline_ratchet.py --base origin/main

Exit codes: 0 — baseline shrank or is unchanged; 1 — new entries were
added; 2 — git could not produce a merge base (usage error).

The file format is owned by ``repro.analysis.baseline``; this script
reads the raw JSON so it runs without an installed package.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

BASELINE = ".analysis-baseline.json"


def _entries(raw: str, origin: str) -> set[str]:
    try:
        payload = json.loads(raw)
        entries = payload["entries"]
    except (json.JSONDecodeError, KeyError, TypeError) as exc:
        sys.stderr.write(f"unreadable baseline from {origin}: {exc}\n")
        raise SystemExit(2)
    return set(entries)


def _git(*argv: str) -> str:
    result = subprocess.run(
        ["git", *argv], capture_output=True, text=True, check=False
    )
    if result.returncode != 0:
        sys.stderr.write(result.stderr)
        raise SystemExit(2)
    return result.stdout


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base",
        default="origin/main",
        metavar="REF",
        help="ref to ratchet against via merge-base (default: origin/main)",
    )
    args = parser.parse_args(argv)

    merge_base = _git("merge-base", "HEAD", args.base).strip()
    base_raw = subprocess.run(
        ["git", "show", f"{merge_base}:{BASELINE}"],
        capture_output=True,
        text=True,
        check=False,
    )
    # No baseline at the merge base: everything current counts as growth.
    base = (
        _entries(base_raw.stdout, merge_base)
        if base_raw.returncode == 0
        else set()
    )

    current_path = Path(BASELINE)
    current = (
        _entries(current_path.read_text(), BASELINE)
        if current_path.is_file()
        else set()
    )

    added = sorted(current - base)
    removed = sorted(base - current)
    if removed:
        print(f"baseline shrank by {len(removed)} entr(y/ies) — good.")
    if added:
        print(
            f"baseline grew by {len(added)} entr(y/ies) vs {merge_base[:12]}:"
        )
        for entry in added:
            print(f"  + {entry}")
        print(
            "fix the findings (or suppress a justified one in place with "
            "`# lint: disable=<rule>`) instead of grandfathering them."
        )
        return 1
    print(f"baseline ok: {len(current)} entr(y/ies), none added.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
