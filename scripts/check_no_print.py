#!/usr/bin/env python
"""Lint: no bare ``print()`` calls inside the library.

Library code must report through ``repro.utils.logging`` (or the
``repro.obs`` telemetry) so applications control the output channel;
``print`` is reserved for the designated rendering surfaces:

* ``repro/cli.py`` — the command-line front end;
* ``repro/viz/ascii.py`` — the ASCII chart renderer;
* functions named ``main`` or ``print_*`` in ``repro/experiments/``
  — each experiment's documented "print the table/figure" contract.

The check is AST-based, so docstrings, comments, and identifiers that
merely contain the substring (``config_fingerprint(...)``) never
trigger it.

Run standalone (``python scripts/check_no_print.py``; exit code 1 on
violations) or via the ``tests/test_no_print.py`` guard.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Files where print() is the module's purpose.
ALLOWED_FILES = frozenset({"cli.py", "viz/ascii.py"})

#: Function-name patterns allowed to print inside experiments modules.
EXPERIMENT_RENDERERS = ("main", "print_")


def _allowed_in_experiments(func_stack: list[str]) -> bool:
    return any(
        name == "main" or name.startswith("print_")
        for name in func_stack
    )


class _PrintFinder(ast.NodeVisitor):
    """Collect bare ``print(...)`` calls with their enclosing functions."""

    def __init__(self) -> None:
        self.calls: list[tuple[int, list[str]]] = []
        self._stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self.calls.append((node.lineno, list(self._stack)))
        self.generic_visit(node)


def find_violations(root: Path = SRC_ROOT) -> list[str]:
    """``"path:line"`` for every disallowed print call under ``root``."""
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        relative = path.relative_to(root).as_posix()
        if relative in ALLOWED_FILES:
            continue
        finder = _PrintFinder()
        finder.visit(ast.parse(path.read_text(), filename=str(path)))
        in_experiments = relative.startswith("experiments/")
        for lineno, stack in finder.calls:
            if in_experiments and _allowed_in_experiments(stack):
                continue
            violations.append(f"src/repro/{relative}:{lineno}")
    return violations


def main() -> int:
    violations = find_violations()
    for violation in violations:
        print(f"bare print() call: {violation}", file=sys.stderr)
    if violations:
        print(
            f"{len(violations)} bare print() call(s); use "
            "repro.utils.logging or repro.obs instead",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
