#!/usr/bin/env python
"""Lint: no bare ``print()`` calls inside the library (compat shim).

The check now lives in the :mod:`repro.analysis` static-analysis
framework as the ``no-print`` rule; this script remains so documented
commands keep working, but it is a thin shim that invokes the
framework.  Prefer running the full suite::

    PYTHONPATH=src python -m repro.analysis

Run standalone (``python scripts/check_no_print.py``; exit code 1 on
violations) or via the ``tests/test_analysis_guard.py`` guard.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src" / "repro"


def _import_analysis():
    try:
        import repro.analysis as analysis
    except ImportError:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        import repro.analysis as analysis
    return analysis


def find_violations(root: Path = SRC_ROOT) -> list[str]:
    """``"path:line"`` for every disallowed print call under ``root``.

    Kept for backward compatibility with the original standalone
    checker's API; delegates to the ``no-print`` rule.
    """
    analysis = _import_analysis()
    findings = analysis.run_analysis(root, [analysis.get_rule("no-print")])
    prefix = "src/repro" if root == SRC_ROOT else root.as_posix()
    return [f"{prefix}/{finding.path}:{finding.line}" for finding in findings]


def main() -> int:
    violations = find_violations()
    for violation in violations:
        print(f"bare print() call: {violation}", file=sys.stderr)
    if violations:
        print(
            f"{len(violations)} bare print() call(s); use "
            "repro.utils.logging or repro.obs instead",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
