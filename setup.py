"""Setuptools shim.

Kept alongside ``pyproject.toml`` so the package can be installed in
fully offline environments that lack the ``wheel`` package
(``python setup.py develop`` / ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
