"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.aggregation import ave, latest, maximum, total
from repro.core.context import ContextConfig
from repro.core.embeddings import InfluenceEmbedding
from repro.core.negative import NegativeSampler
from repro.core.pairs import extract_episode_pairs
from repro.core.propagation import PropagationNetwork
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.diffusion.ic import activation_probability, simulate_ic
from repro.diffusion.probabilities import EdgeProbabilities
from repro.eval.metrics import average_precision, precision_at_n, ranking_auc
from repro.utils.rng import ensure_rng

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

NODE_COUNT = 8


@st.composite
def graphs(draw) -> SocialGraph:
    """Small directed graphs without self-loops."""
    possible = [
        (u, v) for u in range(NODE_COUNT) for v in range(NODE_COUNT) if u != v
    ]
    edges = draw(st.lists(st.sampled_from(possible), max_size=20))
    return SocialGraph(NODE_COUNT, edges)


@st.composite
def episodes(draw) -> DiffusionEpisode:
    """Episodes over the same node universe with distinct users."""
    users = draw(
        st.lists(
            st.integers(0, NODE_COUNT - 1), unique=True, min_size=0, max_size=NODE_COUNT
        )
    )
    times = draw(
        st.lists(
            st.floats(0, 100, allow_nan=False),
            min_size=len(users),
            max_size=len(users),
        )
    )
    return DiffusionEpisode(0, list(zip(users, times)))


score_lists = st.lists(
    st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)


# ----------------------------------------------------------------------
# Graph properties
# ----------------------------------------------------------------------


class TestGraphProperties:
    @given(graphs())
    def test_degree_sums_equal_edge_count(self, graph):
        assert graph.out_degrees().sum() == graph.num_edges
        assert graph.in_degrees().sum() == graph.num_edges

    @given(graphs())
    def test_adjacency_consistency(self, graph):
        """u lists v as out-neighbour iff v lists u as in-neighbour."""
        for u in graph.nodes():
            for v in graph.out_neighbors(u):
                assert u in graph.in_neighbors(int(v))
        for v in graph.nodes():
            for u in graph.in_neighbors(v):
                assert v in graph.out_neighbors(int(u))

    @given(graphs())
    def test_reverse_involution(self, graph):
        assert graph.reverse().reverse() == graph

    @given(graphs())
    def test_edge_array_roundtrip(self, graph):
        rebuilt = SocialGraph(graph.num_nodes, graph.edge_array())
        assert rebuilt == graph


# ----------------------------------------------------------------------
# Episode / pair properties
# ----------------------------------------------------------------------


class TestEpisodeProperties:
    @given(episodes())
    def test_times_sorted(self, episode):
        assert np.all(np.diff(episode.times) >= 0)

    @given(episodes())
    def test_users_unique(self, episode):
        assert len(set(episode.users.tolist())) == len(episode)

    @given(graphs(), episodes())
    def test_pairs_satisfy_definition_one(self, graph, episode):
        """Every extracted pair is an edge with strict time order."""
        for source, target in extract_episode_pairs(graph, episode):
            assert graph.has_edge(int(source), int(target))
            assert episode.time_of(int(source)) < episode.time_of(int(target))

    @given(graphs(), episodes())
    def test_propagation_network_is_dag(self, graph, episode):
        network = PropagationNetwork.from_episode(graph, episode)
        assert network.is_acyclic()

    @given(graphs(), episodes())
    def test_propagation_nodes_are_adopters(self, graph, episode):
        network = PropagationNetwork.from_episode(graph, episode)
        assert set(network.nodes.tolist()) == set(episode.users.tolist())


# ----------------------------------------------------------------------
# Action-log split properties
# ----------------------------------------------------------------------


class TestSplitProperties:
    @given(
        st.integers(1, 30),
        st.integers(0, 2**31 - 1),
    )
    def test_split_partitions(self, num_episodes, seed):
        episodes_list = [
            DiffusionEpisode(i, [(i % NODE_COUNT, 0.0)]) for i in range(num_episodes)
        ]
        log = ActionLog(episodes_list, num_users=NODE_COUNT)
        parts = log.split((0.5, 0.3, 0.2), seed=seed)
        items = sorted(item for part in parts for item in part.items())
        assert items == sorted(log.items())


# ----------------------------------------------------------------------
# Metric properties
# ----------------------------------------------------------------------


class TestMetricProperties:
    @given(score_lists, st.data())
    def test_auc_in_unit_interval(self, scores, data):
        labels = data.draw(
            st.lists(
                st.integers(0, 1), min_size=len(scores), max_size=len(scores)
            )
        )
        auc = ranking_auc(scores, labels)
        if not np.isnan(auc):
            assert 0.0 <= auc <= 1.0

    @given(score_lists, st.data())
    def test_auc_antisymmetric_under_label_flip(self, scores, data):
        labels = data.draw(
            st.lists(
                st.integers(0, 1), min_size=len(scores), max_size=len(scores)
            )
        )
        auc = ranking_auc(scores, labels)
        flipped = ranking_auc(scores, [1 - l for l in labels])
        if not np.isnan(auc) and not np.isnan(flipped):
            assert auc + flipped == pytest.approx(1.0)

    @given(score_lists, st.data())
    def test_ap_in_unit_interval(self, scores, data):
        labels = data.draw(
            st.lists(
                st.integers(0, 1), min_size=len(scores), max_size=len(scores)
            )
        )
        ap = average_precision(scores, labels)
        if not np.isnan(ap):
            assert 0.0 < ap <= 1.0

    @given(score_lists, st.data(), st.integers(1, 40))
    def test_precision_bounded_by_positive_count(self, scores, data, n):
        labels = data.draw(
            st.lists(
                st.integers(0, 1), min_size=len(scores), max_size=len(scores)
            )
        )
        precision = precision_at_n(scores, labels, n)
        assert 0.0 <= precision <= 1.0
        assert precision * n <= sum(labels) + 1e-9

    @given(score_lists)
    def test_aggregator_order_relations(self, scores):
        arr = np.asarray(scores)
        # np.mean's summation can round a hair above the true mean (and
        # hence above the max when all entries are equal); allow ulp-level
        # slack scaled to the data.
        slack = np.finfo(np.float64).eps * np.abs(arr).max() * arr.shape[0]
        assert maximum(arr) >= ave(arr) - slack
        assert maximum(arr) >= latest(arr)
        assert total(arr) == pytest.approx(ave(arr) * arr.shape[0], rel=1e-9, abs=1e-9)


# ----------------------------------------------------------------------
# Sampler / probability properties
# ----------------------------------------------------------------------


class TestSamplerProperties:
    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20).filter(
            lambda w: sum(w) > 0
        ),
        st.integers(0, 2**31 - 1),
    )
    def test_samples_within_support(self, weights, seed):
        sampler = NegativeSampler(np.asarray(weights))
        draws = sampler.sample(100, ensure_rng(seed))
        assert draws.min() >= 0
        assert draws.max() < len(weights)
        # Zero-weight users are never drawn.
        for user in np.unique(draws):
            assert weights[int(user)] > 0

    @given(st.lists(st.floats(0.0, 1.0), min_size=0, max_size=10))
    def test_eq8_bounds_and_monotonicity(self, probs):
        combined = activation_probability(probs)
        assert 0.0 <= combined <= 1.0
        if probs:
            assert combined >= max(probs) - 1e-12
        extended = activation_probability(probs + [0.5])
        assert extended >= combined - 1e-12


# ----------------------------------------------------------------------
# Simulation properties
# ----------------------------------------------------------------------


class TestSimulationProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(graphs(), st.integers(0, 2**31 - 1), st.data())
    def test_cascade_contains_seeds_and_no_duplicates(self, graph, seed, data):
        seeds = data.draw(
            st.lists(
                st.integers(0, NODE_COUNT - 1), min_size=1, max_size=4, unique=True
            )
        )
        probs = EdgeProbabilities.constant(graph, 0.5)
        result = simulate_ic(probs, seeds, seed=seed)
        activated = result.activated.tolist()
        assert len(set(activated)) == len(activated)
        assert set(seeds) <= set(activated)
        assert np.all(np.diff(result.activation_round) >= 0)

    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(graphs(), st.integers(0, 2**31 - 1))
    def test_cascade_respects_reachability(self, graph, seed):
        probs = EdgeProbabilities.constant(graph, 1.0)
        result = simulate_ic(probs, [0], seed=seed)
        # With p=1 the cascade is exactly the set reachable from node 0.
        reachable = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for nxt in graph.out_neighbors(node):
                nxt = int(nxt)
                if nxt not in reachable:
                    reachable.add(nxt)
                    frontier.append(nxt)
        assert result.activated_set() == reachable


# ----------------------------------------------------------------------
# Embedding / context properties
# ----------------------------------------------------------------------


class TestEmbeddingProperties:
    @given(st.integers(1, 20), st.integers(1, 10), st.integers(0, 2**31 - 1))
    def test_initialize_bounds(self, num_users, dim, seed):
        emb = InfluenceEmbedding.initialize(num_users, dim, seed)
        assert np.all(np.abs(emb.source) <= 1.0 / dim + 1e-12)
        assert np.all(np.abs(emb.target) <= 1.0 / dim + 1e-12)

    @given(st.integers(1, 20), st.integers(0, 2**31 - 1))
    def test_save_load_roundtrip(self, num_users, seed):
        import tempfile
        from pathlib import Path

        emb = InfluenceEmbedding.initialize(num_users, 3, seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "e.npz"
            emb.save(path)
            loaded = InfluenceEmbedding.load(path)
        assert np.array_equal(loaded.source, emb.source)
        assert np.array_equal(loaded.target_bias, emb.target_bias)

    @given(st.integers(1, 100), st.floats(0.0, 1.0))
    def test_context_budgets_sum_to_length(self, length, alpha):
        config = ContextConfig(length=length, alpha=alpha)
        assert config.local_budget + config.global_budget == length
        assert config.local_budget >= 0
        assert config.global_budget >= 0
