"""Failure-injection tests: malformed, degenerate, and hostile inputs.

Each test drives a realistic failure mode end to end and asserts the
library either handles it gracefully or fails with a clear
library-specific error — never a numpy broadcast error or a silent
wrong answer.
"""

import numpy as np
import pytest

from repro.ckpt import CheckpointManager, TrainingState
from repro.core.context import ContextConfig, ContextGenerator
from repro.core.inf2vec import Inf2vecConfig, Inf2vecModel
from repro.core.prediction import EmbeddingPredictor
from repro.data.actionlog import ActionLog, DiffusionEpisode
from repro.data.graph import SocialGraph
from repro.errors import (
    ActionLogError,
    CheckpointError,
    EvaluationError,
    ReproError,
)
from repro.eval.activation import evaluate_activation
from repro.eval.diffusion import evaluate_diffusion
from repro.eval.metrics import RankingEvaluator
from repro.viz.tsne import TSNEConfig, tsne


class TestHostileLogs:
    def test_non_chronological_input_is_sorted_not_trusted(self):
        """Timestamps arriving out of order must not create backwards
        influence pairs."""
        graph = SocialGraph(2, [(0, 1)])
        episode = DiffusionEpisode(0, [(1, 5.0), (0, 1.0)])  # reversed input
        from repro.core.pairs import extract_episode_pairs

        pairs = extract_episode_pairs(graph, episode)
        assert [tuple(p) for p in pairs] == [(0, 1)]

    def test_log_user_outside_graph_universe(self):
        graph = SocialGraph(3, [(0, 1)])
        log = ActionLog([DiffusionEpisode(0, [(9, 1.0)])], num_users=10)
        generator = ContextGenerator(graph, ContextConfig(length=4), seed=0)
        with pytest.raises(ReproError):
            generator.generate(log)

    def test_all_simultaneous_adoptions_produce_no_pairs(self):
        graph = SocialGraph(3, [(0, 1), (1, 2)])
        episode = DiffusionEpisode(0, [(0, 1.0), (1, 1.0), (2, 1.0)])
        from repro.core.pairs import extract_episode_pairs

        assert extract_episode_pairs(graph, episode).shape == (0, 2)

    def test_mixed_timestamp_magnitudes(self):
        """Epoch-seconds next to small floats must still order correctly."""
        episode = DiffusionEpisode(0, [(0, 1.7e9), (1, 0.5), (2, 3.0)])
        assert episode.users.tolist() == [1, 2, 0]


class TestDegenerateTraining:
    def test_training_on_single_user_log(self):
        graph = SocialGraph(5, [(0, 1)])
        log = ActionLog(
            [DiffusionEpisode(i, [(3, 1.0)]) for i in range(4)], num_users=5
        )
        model = Inf2vecModel(Inf2vecConfig(dim=4, epochs=2), seed=0)
        model.fit(graph, log)  # must not raise
        assert model.is_fitted

    def test_training_on_empty_graph(self):
        graph = SocialGraph(4, [])
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])], num_users=4
        )
        model = Inf2vecModel(Inf2vecConfig(dim=4, epochs=2), seed=0)
        model.fit(graph, log)
        # No edges -> no local context, only global samples; still fits.
        assert model.is_fitted

    def test_prediction_for_never_seen_user(self, small_dataset, small_splits):
        """Users absent from training still get finite scores."""
        train, _tune, _test = small_splits
        model = Inf2vecModel(
            Inf2vecConfig(dim=4, epochs=1, context=ContextConfig(length=4)),
            seed=0,
        ).fit(small_dataset.graph, train)
        inactive = [
            u
            for u in range(small_dataset.graph.num_nodes)
            if u not in set(train.active_users().tolist())
        ]
        if not inactive:
            pytest.skip("every user active in this split")
        predictor = EmbeddingPredictor(model.embedding)
        score = predictor.activation_score(inactive[0], [0])
        assert np.isfinite(score)


class TestDegenerateEvaluation:
    def test_single_candidate_episode(self):
        graph = SocialGraph(2, [(0, 1)])
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])], num_users=2
        )
        from repro.core.embeddings import InfluenceEmbedding

        emb = InfluenceEmbedding.initialize(2, 2, seed=0)
        result = evaluate_activation(EmbeddingPredictor(emb), graph, log)
        # One positive candidate, zero negatives: AUC undefined (nan),
        # MAP well defined.
        assert np.isnan(result.auc)
        assert result.map == 1.0

    def test_nan_scores_rejected_loudly(self):
        evaluator = RankingEvaluator()
        with pytest.raises(EvaluationError, match="finite"):
            evaluator.add_query([float("nan")], [1])

    def test_diffusion_all_users_adopt(self):
        """Ground truth covering the whole network leaves no negatives."""
        graph = SocialGraph(3, [(0, 1), (1, 2)])
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0), (2, 3.0)])], num_users=3
        )
        from repro.core.embeddings import InfluenceEmbedding

        emb = InfluenceEmbedding.initialize(3, 2, seed=0)
        result = evaluate_diffusion(EmbeddingPredictor(emb), 3, log)
        assert np.isnan(result.auc)  # single-class, honestly reported
        assert result.num_positives == result.num_candidates


class TestCorruptCheckpoints:
    """Every way a checkpoint file can be damaged must surface as a
    clear :class:`CheckpointError`, and discovery must route around it."""

    @pytest.fixture()
    def saved_checkpoint(self, tmp_path):
        graph = SocialGraph(4, [(0, 1), (1, 2), (2, 3)])
        log = ActionLog(
            [DiffusionEpisode(0, [(0, 1.0), (1, 2.0)])], num_users=4
        )
        model = Inf2vecModel(Inf2vecConfig(dim=4, epochs=2), seed=1)
        model.fit(graph, log)
        manager = CheckpointManager(tmp_path, keep=10)
        path = manager.save(model, epoch=1)
        return manager, path

    def test_truncated_checkpoint_rejected(self, saved_checkpoint):
        _manager, path = saved_checkpoint
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointError):
            TrainingState.load(path)

    def test_empty_checkpoint_rejected(self, saved_checkpoint):
        _manager, path = saved_checkpoint
        path.write_bytes(b"")
        with pytest.raises(CheckpointError):
            TrainingState.load(path)

    def test_wrong_version_rejected(self, saved_checkpoint):
        _manager, path = saved_checkpoint
        state = TrainingState.load(path)
        import io

        buffer = io.BytesIO()
        np.savez(
            buffer,
            checkpoint_version=np.int64(999),
            source=state.source,
            target=state.target,
            source_bias=state.source_bias,
            target_bias=state.target_bias,
            epoch=np.int64(state.epoch),
            loss_history=np.asarray(state.loss_history),
            config_fingerprint=np.bytes_(b"x"),
            rng_state=np.bytes_(b"{}"),
            entry_rng_state=np.bytes_(b"{}"),
        )
        path.write_bytes(buffer.getvalue())
        with pytest.raises(CheckpointError, match="version 999"):
            TrainingState.load(path)

    def test_missing_fields_rejected(self, saved_checkpoint):
        _manager, path = saved_checkpoint
        import io

        buffer = io.BytesIO()
        np.savez(buffer, checkpoint_version=np.int64(1))
        path.write_bytes(buffer.getvalue())
        with pytest.raises(CheckpointError, match="missing fields"):
            TrainingState.load(path)

    def test_discovery_falls_back_to_older_valid(self, saved_checkpoint):
        manager, path = saved_checkpoint
        older = manager.directory / "ckpt-00000000.npz"
        older.write_bytes(path.read_bytes())  # valid copy at epoch slot 0
        state = TrainingState.load(older)
        path.write_bytes(b"garbage overwriting the newest checkpoint")
        recovered = manager.latest_state()
        # Note: the copied archive still records epoch=1 internally; the
        # point is that discovery skipped the corrupt newest file.
        assert recovered is not None
        np.testing.assert_array_equal(recovered.source, state.source)

    def test_directory_of_only_garbage_yields_none(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        (tmp_path / "ckpt-00000000.npz").write_bytes(b"junk")
        (tmp_path / "ckpt-00000001.npz").write_bytes(b"")
        assert manager.latest_state() is None


class TestNumericalEdges:
    def test_tsne_with_duplicate_rows(self):
        points = np.zeros((10, 4))
        points[5:] = 1.0
        layout = tsne(points, TSNEConfig(num_iterations=50, perplexity=2), seed=0)
        assert np.all(np.isfinite(layout))

    def test_extreme_scores_do_not_overflow_predictor(self):
        from repro.core.embeddings import InfluenceEmbedding

        emb = InfluenceEmbedding(
            source=np.full((3, 2), 1e8),
            target=np.full((3, 2), 1e8),
            source_bias=np.zeros(3),
            target_bias=np.zeros(3),
        )
        predictor = EmbeddingPredictor(emb)
        assert np.isfinite(predictor.activation_score(0, [1, 2]))

    def test_episode_with_negative_timestamps(self):
        episode = DiffusionEpisode(0, [(0, -5.0), (1, -1.0)])
        assert episode.users.tolist() == [0, 1]

    def test_split_more_parts_than_episodes(self):
        log = ActionLog([DiffusionEpisode(0, [(0, 1.0)])], num_users=2)
        parts = log.split((0.4, 0.3, 0.3), seed=0)
        assert sum(len(p) for p in parts) == 1

    def test_zero_user_log_statistics(self):
        log = ActionLog([], num_users=0)
        assert log.statistics()["num_actions"] == 0
        with pytest.raises(ActionLogError):
            log.split(())
